#!/usr/bin/env python
"""CI smoke test for the serving daemon.

Boots the real ``python -m repro serve`` subprocess, drives mixed traffic
(point resolves, probe queries, edits, deletes, ingests) over HTTP, then
rebuilds the same model in-process and replays the identical mutation
sequence through batch ``VAER.resolve_delta`` drains.  The daemon's final
pair stream must be byte-identical (through JSON serialisation) to the
batch oracle's — the acceptance criterion that serving is a transport, not
a different resolver.

Usage: PYTHONPATH=src python scripts/serve_smoke.py [--domain beer]
"""

from __future__ import annotations

import argparse
import json
import re
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.cli import _harness_config  # noqa: E402
from repro.core import VAER  # noqa: E402
from repro.data.generators import load_domain  # noqa: E402
from repro.data.schema import Record  # noqa: E402
from repro.engine import merge_scored_batches  # noqa: E402
from repro.serve import MatchClient, record_payload  # noqa: E402

SCALE = 0.2
SEED = 7
K = 4
BATCH = 512


def boot_daemon(domain: str, cache_dir: str) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--domain", domain,
         "--scale", str(SCALE), "--seed", str(SEED), "--k", str(K),
         "--batch-size", str(BATCH), "--port", "0", "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    deadline = time.monotonic() + 300
    for line in proc.stdout:
        print(f"  daemon: {line.rstrip()}")
        match = re.search(r"serving on (http://\S+)", line)
        if match:
            return proc, match.group(1)
        if time.monotonic() > deadline:
            break
    proc.kill()
    raise SystemExit("daemon never reported its address")


def drive_traffic(client: MatchClient, task) -> list:
    """Mixed traffic; returns the daemon's final pair stream."""
    left_ids = task.left.record_ids()
    right_ids = task.right.record_ids()
    edited = task.right[right_ids[3]]
    new_values = tuple(f"X-{value}" for value in edited.values)

    assert client.resolve([left_ids[0]])["generation"] == 0
    report = client.mutate(
        edit=[record_payload(edited.record_id, new_values)],
        delete=[right_ids[5]],
    )
    assert report["generation"] == 1, report
    probe = client.query([record_payload("probe-1", edited.values)], k=K)
    assert probe["results"][0]["candidates"], "probe query returned no candidates"
    report = client.mutate(ingest=[record_payload("fresh-1", edited.values)])
    assert report["generation"] == 2, report
    assert client.resolve([left_ids[0]])["generation"] == 2
    assert client.stats()["mutations_applied"] == 2
    return client.resolve()["pairs"]


def batch_oracle(domain_name: str) -> list:
    """The same mutation sequence through batch resolve_delta drains."""
    domain = load_domain(domain_name, scale=SCALE)
    config = _harness_config(SEED).vaer_config(ir_method="lsa")
    model = VAER(config)
    model.fit_representation(domain.task)
    model.fit_matcher(domain.splits.train, domain.splits.validation)

    table = domain.task.right
    right_ids = table.record_ids()
    edited = table[right_ids[3]]
    new_values = tuple(f"X-{value}" for value in edited.values)

    list(model.resolve_delta(k=K, batch_size=BATCH))  # cold drain
    table.replace(Record(edited.record_id, new_values))
    table.remove(right_ids[5])
    list(model.resolve_delta(k=K, batch_size=BATCH))
    table.add(Record("fresh-1", edited.values))
    merged = merge_scored_batches(list(model.resolve_delta(k=K, batch_size=BATCH)))
    return [
        [pair.left_id, pair.right_id, float(probability)]
        for pair, probability in zip(merged.pairs, merged.probabilities)
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domain", default="beer")
    args = parser.parse_args()

    print(f"serve smoke: domain={args.domain} scale={SCALE} k={K}")
    domain = load_domain(args.domain, scale=SCALE)
    with tempfile.TemporaryDirectory() as cache_dir:
        proc, url = boot_daemon(args.domain, cache_dir)
        try:
            client = MatchClient(url)
            health = client.health()
            assert health["status"] == "ok" and health["pairs"] > 0, health
            daemon_pairs = drive_traffic(client, domain.task)
            client.shutdown()
            code = proc.wait(timeout=120)
            assert code == 0, f"daemon exited with {code}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    print(f"  daemon final stream: {len(daemon_pairs)} pairs")
    oracle_pairs = batch_oracle(args.domain)
    print(f"  batch oracle stream: {len(oracle_pairs)} pairs")
    if json.dumps(daemon_pairs) != json.dumps(oracle_pairs):
        for i, (got, want) in enumerate(zip(daemon_pairs, oracle_pairs)):
            if got != want:
                print(f"  first divergence at pair {i}: daemon={got} oracle={want}")
                break
        print("FAIL: daemon stream is not byte-identical to the batch oracle")
        return 1
    print("PASS: daemon stream byte-identical to batch resolve_delta oracle")
    return 0


if __name__ == "__main__":
    sys.exit(main())
