#!/usr/bin/env python
"""CI smoke test for the distributed coordinator/worker runner.

Trains a real model, resolves it serially, then resolves it again through
the file-lease queue with two separate ``python -m repro worker``
subprocesses sharing only the queue directory and the persistent encoding
cache.  One worker is SIGKILLed shortly after the run starts — the
coordinator must recover via lease expiry and re-dispatch — and the
distributed match stream must still be byte-identical to the serial one:
same batch order, same pair keys, same probability bytes.

Usage: PYTHONPATH=src python scripts/distrib_smoke.py [--domain beer]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.cli import _harness_config  # noqa: E402
from repro.core import VAER  # noqa: E402
from repro.data.generators import load_domain  # noqa: E402
from repro.eval.timing import StageTimings  # noqa: E402

SCALE = 0.4
SEED = 7
K = 6
BATCH = 128
WORKERS = 2
LEASE_TIMEOUT = 2.0


def build_model(domain_name: str, cache_dir: str) -> VAER:
    domain = load_domain(domain_name, scale=SCALE)
    config = _harness_config(SEED).vaer_config(ir_method="lsa")
    model = VAER(config, cache_dir=cache_dir)
    model.fit_representation(domain.task)
    model.fit_matcher(domain.splits.train, domain.splits.validation)
    return model


def spawn_workers(queue_dir: Path, count: int) -> list:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--queue-dir", str(queue_dir), "--poll-interval", "0.02"],
            env=env,
        )
        for _ in range(count)
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domain", default="beer")
    args = parser.parse_args()

    print(f"distrib smoke: domain={args.domain} scale={SCALE} "
          f"workers={WORKERS} (one SIGKILLed mid-run)")
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = str(Path(tmp) / "cache")
        queue_dir = Path(tmp) / "queue"
        model = build_model(args.domain, cache_dir)
        # Warm the shared cache so workers attach encodings instead of
        # shipping them.
        model.store.table_encodings("left")
        model.store.table_encodings("right")

        serial = list(model.resolve_stream(k=K, batch_size=BATCH))
        print(f"  serial reference: {len(serial)} batches")

        # Deterministic kill: only the victim runs at first, so the first
        # lease that appears is necessarily its claim.  SIGKILL lands while
        # the unit is mid-execution, then the healthy worker spawns and the
        # coordinator must recover via lease expiry and re-dispatch.
        processes = spawn_workers(queue_dir, 1)
        victim = processes[0]
        leases_dir = queue_dir / "leases"

        def _kill_on_first_claim():
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if leases_dir.is_dir() and any(leases_dir.iterdir()):
                    victim.send_signal(signal.SIGKILL)
                    processes.extend(spawn_workers(queue_dir, WORKERS - 1))
                    return
                time.sleep(0.005)

        killer = threading.Thread(target=_kill_on_first_claim, daemon=True)
        killer.start()
        stage = StageTimings()
        try:
            started = time.perf_counter()
            distributed = list(model.resolve_distributed(
                workers=WORKERS, queue_dir=queue_dir, k=K, batch_size=BATCH,
                stage_timings=stage, lease_timeout=LEASE_TIMEOUT,
            ))
            wall = time.perf_counter() - started
        finally:
            killer.join(timeout=130)
            for process in processes:
                if process.poll() is None:
                    process.terminate()
            for process in processes:
                try:
                    process.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    process.kill()
        print(f"  victim worker exit code: {victim.returncode} (expected {-signal.SIGKILL})")
        print(
            f"  distributed: {len(distributed)} batches in {wall:.2f}s, "
            f"{stage.counter('units_dispatched')} units dispatched, "
            f"{stage.counter('units_redispatched')} re-dispatched"
        )

    if victim.returncode != -signal.SIGKILL:
        print("FAIL: victim worker was not killed mid-run (smoke too slow?)")
        return 1
    if stage.counter("units_redispatched") < 1:
        print("FAIL: the killed worker's unit was never re-dispatched")
        return 1
    if [b.batch_index for b in serial] != [b.batch_index for b in distributed]:
        print("FAIL: batch order diverged")
        return 1
    for left, right in zip(serial, distributed):
        if [p.key() for p in left.pairs] != [p.key() for p in right.pairs]:
            print(f"FAIL: pair keys diverged in batch {left.batch_index}")
            return 1
        if not np.array_equal(left.probabilities, right.probabilities):
            print(f"FAIL: probabilities diverged in batch {left.batch_index}")
            return 1
    print("PASS: distributed stream byte-identical to serial, "
          "with a worker killed mid-run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
