#!/usr/bin/env python
"""Merge every ``BENCH_*.json`` artifact into one trajectory table.

Each benchmark in ``benchmarks/`` writes its own JSON artifact with a
bespoke schema; CI uploads them individually.  This script collects all of
them from one directory, pulls the headline numbers out of each, and emits
a single summary — a markdown table for humans (stdout or ``--markdown``)
and a merged JSON document for dashboards (``--json``).

Artifacts that are absent are simply skipped (each CI job produces a
subset); unknown ``BENCH_*.json`` files fall back to their top-level
scalars, so a new benchmark shows up here before this script learns its
schema.

Usage: python scripts/bench_summary.py [--dir .] [--json OUT] [--markdown OUT]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _fmt(value):
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:,.3f}" if abs(value) < 1000 else f"{value:,.0f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _rows_engine(data):
    yield "scored pairs", data.get("pairs")
    yield "legacy seconds", data.get("legacy_seconds")
    yield "batched seconds", data.get("batched_seconds")
    yield "speedup", data.get("speedup")


def _rows_shard(data):
    cache = data.get("cache", {})
    yield "candidate pairs", data.get("candidate_pairs")
    yield "cold resolve seconds", cache.get("cold_seconds")
    yield "warm resolve seconds", cache.get("warm_seconds")
    for workers, run in sorted(data.get("workers", {}).items(), key=lambda kv: int(kv[0])):
        yield f"workers={workers} resolve seconds", run.get("resolve_seconds")


def _rows_blocking(data):
    yield "candidate pairs", data.get("candidate_pairs")
    yield "serial reference seconds", data.get("serial_reference_seconds")
    for workers, run in sorted(data.get("workers", {}).items(), key=lambda kv: int(kv[0])):
        if isinstance(run, dict):
            yield f"workers={workers} seconds", run.get("resolve_seconds") or run.get("seconds")


def _rows_delta(data):
    yield "cold base seconds", data.get("cold_base_seconds")
    steps = data.get("steps", [])
    yield "delta steps", len(steps)
    if steps:
        yield "mean delta seconds", sum(s.get("seconds", 0.0) for s in steps) / len(steps)
    yield "cold grown seconds", data.get("cold_grown", {}).get("seconds")


def _rows_mutation(data):
    yield "cold base seconds", data.get("cold_base_seconds")
    steps = data.get("steps", [])
    yield "mutation steps", len(steps)
    if steps:
        yield "mean mutation seconds", sum(s.get("seconds", 0.0) for s in steps) / len(steps)
    yield "cold mutated seconds", data.get("cold_mutated", {}).get("seconds")


def _rows_serve(data):
    for size, run in data.get("sizes", {}).items():
        yield f"{size} sustained qps", run.get("sustained_qps")
    yield "point query p50 scale ratio", data.get("point_query_p50_scale_ratio")
    yield "table-size independent", data.get("table_size_independent")


def _rows_quant(data):
    domains = data.get("domains", {})
    yield "domains measured", len(domains)
    ratios = [d.get("disk_compression") for d in domains.values() if d.get("disk_compression")]
    if ratios:
        yield "mean disk compression", sum(ratios) / len(ratios)
    warm = [d.get("warm_compression") for d in domains.values() if d.get("warm_compression")]
    if warm:
        yield "mean warm compression", sum(warm) / len(warm)


def _rows_distrib(data):
    domains = data.get("domains", {})
    yield "identity domains", len(domains)
    identical = all(
        run.get("identical")
        for report in domains.values()
        for run in report.get("workers", {}).values()
    )
    yield "all byte-identical", identical
    yield "worker-kill run", any(r.get("worker_kill") for r in domains.values())
    for run in data.get("sweep", {}).get("runs", []):
        yield (
            f"workers={run.get('workers')} ({run.get('transport')}) seconds",
            run.get("wall_seconds"),
        )


def _rows_generic(data):
    for key, value in data.items():
        if isinstance(value, (int, float, bool)):
            yield key.replace("_", " "), value


EXTRACTORS = {
    "BENCH_engine.json": _rows_engine,
    "BENCH_shard.json": _rows_shard,
    "BENCH_blocking.json": _rows_blocking,
    "BENCH_delta.json": _rows_delta,
    "BENCH_mutation.json": _rows_mutation,
    "BENCH_serve.json": _rows_serve,
    "BENCH_quant.json": _rows_quant,
    "BENCH_distrib.json": _rows_distrib,
}


def summarise(directory: Path) -> dict:
    artifacts = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            artifacts[path.name] = {"error": str(error), "rows": []}
            continue
        extractor = EXTRACTORS.get(path.name, _rows_generic)
        rows = [
            {"metric": metric, "value": value}
            for metric, value in extractor(data)
            if value is not None
        ]
        artifacts[path.name] = {"rows": rows, "raw": data}
    return {"directory": str(directory), "artifacts": artifacts}


def markdown_table(summary: dict) -> str:
    lines = [
        "# Benchmark trajectory",
        "",
        "| artifact | metric | value |",
        "| --- | --- | --- |",
    ]
    for name, artifact in summary["artifacts"].items():
        if artifact.get("error"):
            lines.append(f"| {name} | (unreadable) | {artifact['error']} |")
            continue
        for row in artifact["rows"]:
            lines.append(f"| {name} | {row['metric']} | {_fmt(row['value'])} |")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", help="directory holding BENCH_*.json")
    parser.add_argument("--json", help="write the merged JSON summary here")
    parser.add_argument("--markdown", help="write the markdown table here (default: stdout)")
    args = parser.parse_args(argv)

    directory = Path(args.dir)
    summary = summarise(directory)
    if not summary["artifacts"]:
        print(f"no BENCH_*.json artifacts under {directory}", file=sys.stderr)
        return 1

    table = markdown_table(summary)
    if args.markdown:
        Path(args.markdown).write_text(table)
        print(f"wrote {args.markdown}")
    else:
        print(table, end="")
    if args.json:
        slim = {
            "directory": summary["directory"],
            "artifacts": {
                name: {k: v for k, v in artifact.items() if k != "raw"}
                for name, artifact in summary["artifacts"].items()
            },
        }
        Path(args.json).write_text(json.dumps(slim, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
