"""Active learning: train a matcher with an oracle instead of a training set.

Reproduces the workflow of Section V on a noisy benchmark domain:

1. train the unsupervised representation model;
2. bootstrap seed labels automatically from the latent space (Algorithm 1);
3. iterate Algorithm 2 — balanced / informative / diverse sampling, oracle
   labeling, matcher retraining — under a fixed labeling budget;
4. compare the actively trained matcher with one trained on the full
   training split (the paper's Bootstrap vs A250 vs Full comparison).

Run with:  python examples/active_learning_session.py
"""

from __future__ import annotations

from repro.config import ActiveLearningConfig, MatcherConfig, VAEConfig, VAERConfig
from repro.core import VAER
from repro.core.active import GroundTruthOracle
from repro.data.generators import load_domain

LABEL_BUDGET = 60


def main() -> None:
    domain = load_domain("cosmetics")
    task, splits = domain.task, domain.splits
    print(f"Task {task.name!r} (noisy ‡ domain), full training set: {len(splits.train)} labeled pairs")

    config = VAERConfig(
        vae=VAEConfig(ir_dim=48, hidden_dim=96, latent_dim=32, epochs=10),
        matcher=MatcherConfig(epochs=50),
        active_learning=ActiveLearningConfig(retrain_epochs=12, kde_samples_per_pair=50),
        ir_method="lsa",
    )

    # ------------------------------------------------------------------
    # Active learning with a simulated user (the ground-truth oracle).
    # ------------------------------------------------------------------
    active_model = VAER(config).fit_representation(task)
    oracle = GroundTruthOracle(task)
    result = active_model.active_learning(
        oracle,
        iterations=12,
        label_budget=LABEL_BUDGET,
        test_pairs=splits.test,
    )

    print(f"\n{result.bootstrap.summary()}")
    print("F1 as labels accumulate (the Figure 5 curve):")
    for labels_used, f1 in result.f1_trace():
        print(f"  {labels_used:4d} labels -> F1 {f1:.2f}")

    active_metrics = active_model.evaluate(splits.test)
    print(f"\nActively trained matcher ({oracle.labels_provided} oracle labels): {active_metrics}")

    # ------------------------------------------------------------------
    # Reference: the same pipeline trained on the full training split.
    # ------------------------------------------------------------------
    full_model = VAER(config).fit_representation(task)
    full_model.fit_matcher(splits.train, validation_pairs=splits.validation)
    full_metrics = full_model.evaluate(splits.test)
    print(f"Fully supervised matcher ({len(splits.train)} given labels): {full_metrics}")

    if full_metrics.f1 > 0:
        share = 100.0 * active_metrics.f1 / full_metrics.f1
        used = 100.0 * oracle.labels_provided / len(splits.train)
        print(f"\nThe active matcher reaches {share:.0f}% of the full-data F1 "
              f"using {used:.0f}% of the labels.")


if __name__ == "__main__":
    main()
