"""Transfer learning: reuse a representation model across ER domains.

Reproduces the Section VI-D workflow:

1. train a VAER-LSA representation model on a *source* domain (Citations 2);
2. save it, then load and transfer it to several *target* domains without any
   VAE retraining (only the cheap, unsupervised IR fitting is repeated);
3. arity-adapt the target tasks to the source schema (extra columns dropped,
   missing ones padded), as the paper prescribes;
4. compare unsupervised recall@10 and supervised matching F1 of the
   transferred model against locally trained representation models.

Run with:  python examples/transfer_learning.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.config import VAEConfig
from repro.core import (
    EntityRepresentationModel,
    adapt_task_arity,
    transfer_representation,
)
from repro.data.generators import GeneratedDomain, load_domain
from repro.eval.harness import HarnessConfig, recall_at_k_experiment, run_vaer_matching

SOURCE = "citations2"
TARGETS = ["restaurants", "beer", "crm"]


def main() -> None:
    config = HarnessConfig(ir_dim=48, hidden_dim=96, latent_dim=32, vae_epochs=10, matcher_epochs=50)

    # ------------------------------------------------------------------
    # 1. Train the source representation model and persist it.
    # ------------------------------------------------------------------
    source = load_domain(SOURCE)
    start = time.perf_counter()
    source_model = EntityRepresentationModel(config.vae_config(), ir_method="lsa").fit(source.task)
    source_seconds = time.perf_counter() - start
    print(f"Source representation model trained on {SOURCE!r} in {source_seconds:.1f}s")

    model_path = Path(tempfile.mkdtemp()) / "citations2_representation.npz"
    source_model.save(model_path)
    print(f"Saved to {model_path}")

    # ------------------------------------------------------------------
    # 2-4. Transfer to each target domain and compare with local training.
    # ------------------------------------------------------------------
    reloaded = EntityRepresentationModel.load(model_path)
    print(f"\n{'Domain':12s} {'R@10 local':>11s} {'R@10 transf':>12s} {'F1 local':>9s} {'F1 transf':>10s} {'Repr. time saved':>17s}")
    for name in TARGETS:
        target = load_domain(name)
        adapted_task = adapt_task_arity(target.task, source.task.arity)
        adapted = GeneratedDomain(
            task=adapted_task, splits=target.splits, spec=target.spec, duplicate_map=target.duplicate_map
        )

        start = time.perf_counter()
        local_model = EntityRepresentationModel(config.vae_config(), ir_method="lsa").fit(adapted_task)
        local_seconds = time.perf_counter() - start

        transferred = transfer_representation(reloaded, adapted_task)

        local_recall = recall_at_k_experiment(adapted, config, ks=(10,), representation=local_model)[10]
        transferred_recall = recall_at_k_experiment(adapted, config, ks=(10,), representation=transferred)[10]
        local_f1 = run_vaer_matching(adapted, config, representation=local_model).metrics.f1
        transferred_f1 = run_vaer_matching(adapted, config, representation=transferred).metrics.f1

        print(f"{name:12s} {local_recall:11.2f} {transferred_recall:12.2f} "
              f"{local_f1:9.2f} {transferred_f1:10.2f} {local_seconds:16.1f}s")

    print("\nTransferred models skip representation training entirely; the "
          "'time saved' column is what a local model would have cost on each target.")


if __name__ == "__main__":
    main()
