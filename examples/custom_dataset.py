"""Running VAER on your own CSV data.

Shows the path a downstream user takes when their data is not one of the
bundled benchmark domains:

1. export (or hand-author) two CSV tables with aligned attribute columns and
   a labeled pair file;
2. read them back with :mod:`repro.data.io` into an :class:`ERTask`;
3. run the standard VAER pipeline — representation learning, matching,
   evaluation — on the custom task.

For the sake of a self-contained example the CSVs are first generated from a
synthetic domain, but any files with the same layout work.

Run with:  python examples/custom_dataset.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.config import MatcherConfig, VAEConfig, VAERConfig
from repro.core import VAER
from repro.data import read_pairs, read_table, write_pairs, write_table
from repro.data.generators import load_domain
from repro.data.schema import ERTask


def export_demo_csvs(directory: Path) -> None:
    """Write the CSV files a user would normally bring themselves."""
    domain = load_domain("beer")
    write_table(domain.task.left, directory / "left.csv")
    write_table(domain.task.right, directory / "right.csv")
    write_pairs(domain.splits.train, directory / "train_pairs.csv")
    write_pairs(domain.splits.validation, directory / "validation_pairs.csv")
    write_pairs(domain.splits.test, directory / "test_pairs.csv")


def main() -> None:
    directory = Path(tempfile.mkdtemp())
    export_demo_csvs(directory)
    print(f"Input CSVs in {directory}:")
    for path in sorted(directory.glob("*.csv")):
        print(f"  {path.name}")

    # ------------------------------------------------------------------
    # 1. Load the user's tables and labeled pairs.
    # ------------------------------------------------------------------
    task = ERTask(
        name="my_products",
        left=read_table(directory / "left.csv"),
        right=read_table(directory / "right.csv"),
    )
    train = read_pairs(directory / "train_pairs.csv")
    validation = read_pairs(directory / "validation_pairs.csv")
    test = read_pairs(directory / "test_pairs.csv")
    print(f"\nLoaded task: {task.cardinality[0]} x {task.cardinality[1]} records, "
          f"{task.arity} attributes, {len(train)} training pairs")

    # ------------------------------------------------------------------
    # 2. Standard VAER pipeline on the custom task.
    # ------------------------------------------------------------------
    config = VAERConfig(
        vae=VAEConfig(ir_dim=48, hidden_dim=96, latent_dim=32, epochs=10),
        matcher=MatcherConfig(epochs=50),
        ir_method="lsa",
    )
    model = VAER(config)
    model.fit_representation(task)
    model.fit_matcher(train, validation_pairs=validation)

    metrics = model.evaluate(test)
    print(f"Test-set effectiveness on the custom data: {metrics}")

    # ------------------------------------------------------------------
    # 3. Score arbitrary candidate pairs (e.g. from the blocking step).
    # ------------------------------------------------------------------
    resolution = model.resolve(k=10)
    print(f"Blocking produced {len(resolution.pairs)} candidates; "
          f"{len(resolution.matches())} predicted duplicates at threshold {resolution.threshold:.2f}")


if __name__ == "__main__":
    main()
