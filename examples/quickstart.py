"""Quickstart: supervised VAER on one benchmark domain.

Walks through the decoupled process of Figure 1 in the paper:

1. load (here: synthesise) an ER task — two tables with aligned attributes
   plus labeled train/validation/test pairs;
2. train the unsupervised entity representation model (IRs + VAE);
3. train the Siamese matcher on the labeled training pairs;
4. evaluate on the held-out test pairs and resolve the full task through
   LSH blocking + matching.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.config import MatcherConfig, VAEConfig, VAERConfig
from repro.core import VAER
from repro.data.generators import load_domain


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The ER task: a synthetic stand-in for the paper's Restaurants data.
    # ------------------------------------------------------------------
    domain = load_domain("restaurants")
    task, splits = domain.task, domain.splits
    print(f"Task {task.name!r}: {task.cardinality[0]} x {task.cardinality[1]} records, "
          f"{task.arity} aligned attributes")
    print(f"Labeled pairs: {splits.summary()}")

    # ------------------------------------------------------------------
    # 2 + 3. Representation learning, then supervised matching.
    #
    # The configuration keeps Table III's proportions but shrinks the model
    # so the example runs in seconds on CPU.
    # ------------------------------------------------------------------
    config = VAERConfig(
        vae=VAEConfig(ir_dim=48, hidden_dim=96, latent_dim=32, epochs=10),
        matcher=MatcherConfig(epochs=50),
        ir_method="lsa",
    )
    model = VAER(config)
    model.fit_representation(task)
    print(f"\nRepresentation model trained "
          f"({model.representation.vae.num_parameters()} parameters, "
          f"final ELBO loss {model.representation.training_history.final_loss:.3f})")

    model.fit_matcher(splits.train, validation_pairs=splits.validation)
    print(f"Matcher trained ({model.matcher.num_parameters()} parameters, "
          f"decision threshold {model.threshold:.2f})")

    # ------------------------------------------------------------------
    # 4. Evaluation and end-to-end resolution.
    # ------------------------------------------------------------------
    metrics = model.evaluate(splits.test)
    print(f"\nTest-set effectiveness: {metrics}")

    resolution = model.resolve(k=10)
    matches = resolution.matches()
    true_matches = sum(task.true_match(p.left_id, p.right_id) for p in matches)
    print(f"End-to-end resolution: {len(resolution.pairs)} candidate pairs from blocking, "
          f"{len(matches)} predicted duplicates, {true_matches} of them correct")

    example = next(iter(matches), None)
    if example is not None:
        left, right = task.left[example.left_id], task.right[example.right_id]
        print("\nExample predicted duplicate:")
        print(f"  left : {dict(zip(task.left.attributes, left.values))}")
        print(f"  right: {dict(zip(task.right.attributes, right.values))}")


if __name__ == "__main__":
    main()
