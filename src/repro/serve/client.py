"""Minimal stdlib client for the match daemon's JSON-over-HTTP protocol.

Used by the tests, the load benchmark and the CI smoke script; useful as a
reference implementation for anything else that talks to ``repro serve``.
Only :mod:`urllib.request` — no dependencies.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence


class ServeClientError(RuntimeError):
    """A non-2xx response from the daemon, with its decoded error payload."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class MatchClient:
    """One daemon endpoint, e.g. ``MatchClient("http://127.0.0.1:8123")``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", "")
            except (ValueError, UnicodeDecodeError):
                message = exc.reason or ""
            raise ServeClientError(exc.code, message) from exc

    # ------------------------------------------------------------------
    def health(self) -> Dict:
        return self._request("GET", "/health")

    def stats(self) -> Dict:
        return self._request("GET", "/stats")

    def resolve(self, left_ids: Optional[Sequence[str]] = None) -> Dict:
        payload: Dict = {}
        if left_ids is not None:
            payload["left_ids"] = list(left_ids)
        return self._request("POST", "/resolve", payload)

    def query(self, records: Sequence[Dict], k: Optional[int] = None) -> Dict:
        payload: Dict = {"records": list(records)}
        if k is not None:
            payload["k"] = int(k)
        return self._request("POST", "/query", payload)

    def mutate(
        self,
        side: str = "right",
        ingest: Optional[Sequence[Dict]] = None,
        edit: Optional[Sequence[Dict]] = None,
        delete: Optional[Sequence[str]] = None,
    ) -> Dict:
        payload: Dict = {"side": side}
        if ingest:
            payload["ingest"] = list(ingest)
        if edit:
            payload["edit"] = list(edit)
        if delete:
            payload["delete"] = list(delete)
        return self._request("POST", "/mutate", payload)

    def shutdown(self) -> Dict:
        return self._request("POST", "/shutdown", {})


def record_payload(record_id: str, values: Sequence[str], entity_id: Optional[str] = None) -> Dict:
    """The wire form of one record for ``ingest``/``edit``/``query`` bodies."""
    payload: Dict = {"record_id": record_id, "values": list(values)}
    if entity_id is not None:
        payload["entity_id"] = entity_id
    return payload
