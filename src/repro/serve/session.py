"""Warm resolution sessions: the state machine behind the match daemon.

A :class:`ServeSession` wraps a fitted :class:`repro.core.pipeline.VAER`
and keeps its warm artefacts — the encoding store, the LSH index and the
delta :class:`~repro.engine.ResolutionBaseline` — alive across requests, so
a point query costs a dictionary lookup and a mutation costs one delta
resolve instead of a cold rebuild.

Concurrency model (the snapshot-isolation contract the server documents):

* **Snapshots are immutable.**  Every fully drained delta resolve publishes
  a frozen :class:`Snapshot` carrying the complete scored-pair stream in
  candidate-enumeration order plus the ``(generation, encoding_version,
  index_mutations)`` triple it was computed under.  Readers grab the
  current snapshot with one atomic attribute read and keep answering from
  it even while a mutation is mid-flight — they never observe a half
  -applied mutation.
* **Mutations are single-writer.**  All ingest/edit/delete traffic funnels
  through one queue drained by one writer thread; each job applies its
  table mutations and refreshes the baseline through the delta engine
  (``Table.replace/remove/add`` → ``EuclideanLSHIndex.remove/patch/extend``
  → cache ``patch()``/tombstones) under an exclusive lock, then swaps the
  snapshot pointer.  Two concurrent mutations can therefore never interleave.
* **Ad-hoc queries share-lock the live index.**  ``query_records`` encodes
  records that are not part of the task and ranks them against the live
  (in-place mutated) LSH index, so it holds the read side of a
  readers-writer lock for the duration of the search; snapshot reads need
  no lock at all.

Shutdown drains the queue (pending mutations complete, late ones are
refused), joins the writer, and releases every engine resource the process
holds — the persistent worker pool, shared-memory publications and open
chunk-archive handles (:func:`repro.engine.release_engine_resources`).
Persistent-cache manifests are flushed synchronously by each mutation's
write-then-rename, so a drained queue implies a consistent on-disk cache.
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.blocking.neighbours import NearestNeighbourSearch
from repro.data.schema import Record, Table
from repro.engine import merge_scored_batches, release_engine_resources
from repro.engine.store import encode_table_rows
from repro.eval.timing import StageTimings


def process_rss_bytes() -> Optional[int]:
    """Resident set size of this process in bytes (stdlib only).

    Reads ``/proc/self/status`` where procfs exists (Linux), falling back
    to ``resource.getrusage`` (``ru_maxrss`` is the *peak*, in KiB on
    Linux, bytes on macOS); returns ``None`` where neither works.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii", errors="replace") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak) if sys.platform == "darwin" else int(peak) * 1024
    except Exception:  # pragma: no cover - exotic platforms
        return None


class ServeError(ValueError):
    """A request the session cannot honour (bad payload, unknown record)."""


class ServeSessionClosed(RuntimeError):
    """The session is shutting down; no further mutations are accepted."""


class _ReadWriteLock:
    """Readers-writer lock with writer preference.

    Many concurrent readers, one exclusive writer; new readers queue behind
    a waiting writer so a steady query stream cannot starve mutations.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writing or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    self._cond.wait()
                self._writing = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


@dataclass(frozen=True)
class Snapshot:
    """One immutable, fully consistent view of the resolved task.

    ``pairs`` is the complete scored candidate stream in the engine's
    deterministic enumeration order — exactly the concatenation a batch
    ``resolve_delta`` over the same table state yields, which is what makes
    daemon answers byte-comparable to the batch oracle.
    """

    generation: int
    encoding_version: int
    index_mutations: int
    threshold: float
    left_rows: int
    right_rows: int
    pairs: Tuple[Tuple[str, str, float], ...]
    by_left: Mapping[str, Tuple[Tuple[str, float], ...]]
    match_count: int

    def pairs_for(self, left_ids: Optional[Sequence[str]] = None) -> List[Tuple[str, str, float]]:
        """The scored pairs of ``left_ids`` (all pairs when ``None``).

        Selection preserves enumeration order; unknown left ids simply
        contribute nothing (a record with no candidates is not an error).
        """
        if left_ids is None:
            return list(self.pairs)
        selected: List[Tuple[str, str, float]] = []
        for left_id in left_ids:
            for right_id, probability in self.by_left.get(str(left_id), ()):
                selected.append((str(left_id), right_id, probability))
        return selected


@dataclass(frozen=True)
class MutationSpec:
    """One validated ingest/edit/delete request against one side's table."""

    side: str = "right"
    ingest: Tuple[Record, ...] = ()
    edit: Tuple[Record, ...] = ()
    delete: Tuple[str, ...] = ()

    @staticmethod
    def _records(payload: object, field_name: str) -> Tuple[Record, ...]:
        if payload is None:
            return ()
        if not isinstance(payload, list):
            raise ServeError(f"{field_name!r} must be a list of record objects")
        records: List[Record] = []
        for item in payload:
            if not isinstance(item, dict) or "record_id" not in item or "values" not in item:
                raise ServeError(
                    f"each {field_name!r} entry needs 'record_id' and 'values'"
                )
            values = item["values"]
            if not isinstance(values, (list, tuple)):
                raise ServeError(f"record {item['record_id']!r}: 'values' must be a list")
            records.append(Record(
                record_id=str(item["record_id"]),
                values=tuple(str(value) for value in values),
                entity_id=item.get("entity_id"),
            ))
        return tuple(records)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "MutationSpec":
        """Parse and validate one ``/mutate`` JSON body."""
        if not isinstance(payload, dict):
            raise ServeError("mutation body must be a JSON object")
        side = str(payload.get("side", "right"))
        if side not in ("left", "right"):
            raise ServeError(f"side must be 'left' or 'right', got {side!r}")
        delete = payload.get("delete")
        if delete is None:
            delete = ()
        elif isinstance(delete, list):
            delete = tuple(str(record_id) for record_id in delete)
        else:
            raise ServeError("'delete' must be a list of record ids")
        spec = cls(
            side=side,
            ingest=cls._records(payload.get("ingest"), "ingest"),
            edit=cls._records(payload.get("edit"), "edit"),
            delete=delete,
        )
        if not (spec.ingest or spec.edit or spec.delete):
            raise ServeError("mutation needs at least one of 'ingest', 'edit', 'delete'")
        return spec


@dataclass(frozen=True)
class MutationReport:
    """What one applied mutation did, as returned to the requester."""

    generation: int
    side: str
    ingested: int
    edited: int
    deleted: int
    rows_reencoded: int
    rows_tombstoned: int
    pairs_rescored: int
    pairs: int
    matches: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "generation": self.generation,
            "side": self.side,
            "ingested": self.ingested,
            "edited": self.edited,
            "deleted": self.deleted,
            "rows_reencoded": self.rows_reencoded,
            "rows_tombstoned": self.rows_tombstoned,
            "pairs_rescored": self.pairs_rescored,
            "pairs": self.pairs,
            "matches": self.matches,
        }


_SENTINEL = object()


@dataclass
class _Job:
    spec: MutationSpec
    done: threading.Event = field(default_factory=threading.Event)
    report: Optional[MutationReport] = None
    error: Optional[BaseException] = None


class ServeSession:
    """A warm, mutable resolution session over one fitted pipeline.

    ``start()`` pays the cold resolve once (capturing the delta baseline
    and snapshot generation 0) and spawns the single writer thread; after
    that, point queries answer from the current :class:`Snapshot` and
    mutations queue through :meth:`mutate`.
    """

    def __init__(
        self,
        model,
        k: Optional[int] = None,
        batch_size: int = 2048,
        workers: int = 1,
        runtime=None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if workers <= 0:
            raise ValueError("workers must be positive")
        if model.task is None:
            raise ValueError("model must be fitted to a task before serving")
        self.model = model
        self.task = model.task
        self.k = int(k) if k is not None else int(model.config.active_learning.top_neighbours)
        if self.k <= 0:
            raise ValueError("k must be positive")
        self.batch_size = int(batch_size)
        self.workers = int(workers)
        #: Optional :class:`repro.distrib.DistributedRuntime` — when set,
        #: every refresh (the cold resolve and each mutation's delta
        #: resolve) fans its stage units out to the runtime's remote
        #: workers instead of a local pool.  The session does not own the
        #: runtime; the caller closes it.
        self.runtime = runtime
        if runtime is not None:
            self.workers = max(self.workers, int(runtime.workers))
        self._snapshot: Optional[Snapshot] = None
        self._generation = -1
        self._index_lock = _ReadWriteLock()
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._writer: Optional[threading.Thread] = None
        self._closed = False
        self._close_lock = threading.Lock()
        self._started_at = time.monotonic()
        self._mutations_applied = 0
        self._row_index_cache: Optional[Tuple[int, Dict[str, int]]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServeSession":
        """Warm up (cold resolve + snapshot 0) and start the writer thread."""
        if self._writer is not None:
            return self
        self._refresh()
        self._writer = threading.Thread(
            target=self._writer_loop, name="serve-writer", daemon=True
        )
        self._writer.start()
        return self

    def close(self) -> None:
        """Graceful shutdown: refuse new mutations, drain, release resources.

        Pending mutations complete (their requesters get real reports);
        anything enqueued after the close flag flips is failed with
        :class:`ServeSessionClosed`.  Idempotent.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_SENTINEL)
        if self._writer is not None:
            self._writer.join()
            self._writer = None
        release_engine_resources()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> Snapshot:
        """The current immutable snapshot (raises before :meth:`start`)."""
        snapshot = self._snapshot
        if snapshot is None:
            raise RuntimeError("session not started; call start() first")
        return snapshot

    def resolve(self, left_ids: Optional[Sequence[str]] = None) -> Tuple[Snapshot, List[Tuple[str, str, float]]]:
        """Point query: the scored pairs of ``left_ids`` under one snapshot.

        Wait-free — a single atomic snapshot read plus dictionary lookups,
        so the per-request cost depends on the answer size, not the table
        size, and is untouched by concurrent mutations.
        """
        snapshot = self.snapshot
        return snapshot, snapshot.pairs_for(left_ids)

    def query_records(
        self,
        records: Sequence[Record],
        k: Optional[int] = None,
    ) -> Tuple[Snapshot, List[Dict[str, object]]]:
        """Resolve ad-hoc records (a micro-batch) against the live right table.

        The records are encoded through the same representation model as the
        task's rows, ranked against the live LSH index, and their candidate
        pairs scored by the matcher — the interactive "resolve this record
        now" path.  Holds the read side of the index lock, so results are
        consistent with exactly one snapshot generation.
        """
        if not records:
            raise ServeError("query needs at least one record")
        top = int(k) if k is not None else self.k
        if top <= 0:
            raise ServeError("k must be positive")
        matcher = self.model._require_matcher()
        representation = self.model._require_representation()
        arity = self.task.arity
        for record in records:
            if len(record.values) != arity:
                raise ServeError(
                    f"record {record.record_id!r} has {len(record.values)} values, "
                    f"task schema has {arity}"
                )
        probe = Table(f"{self.task.name}-query", self.task.left.attributes, list(records))
        with self._index_lock.read():
            snapshot = self.snapshot
            baseline = self.model.baseline
            if baseline is None:  # pragma: no cover - start() always captures one
                raise RuntimeError("session has no baseline; call start() first")
            irs, mu, _ = encode_table_rows(representation, probe)
            search = NearestNeighbourSearch.from_index(
                baseline.index, config=self.model.config.blocking
            )
            results = search.top_k(
                mu.reshape(len(records), -1),
                [record.record_id for record in records],
                k=top,
            )
            right = self.model.store.table_encodings("right")
            row_of = self._right_row_index(snapshot.generation, right)
            answers: List[Dict[str, object]] = []
            pending: List[Tuple[int, int, str, float]] = []
            for position, result in enumerate(results):
                candidates: List[Dict[str, object]] = []
                answers.append({
                    "record_id": str(result.query_key),
                    "candidates": candidates,
                })
                for right_key, distance in result.neighbours:
                    row = row_of.get(str(right_key))
                    if row is None:  # pragma: no cover - index/store drift guard
                        continue
                    pending.append((position, row, str(right_key), float(distance)))
            if pending:
                left_irs = np.stack([irs[position] for position, _, _, _ in pending])
                right_irs = np.stack([np.asarray(right.irs[row]) for _, row, _, _ in pending])
                probabilities = matcher.predict_proba(left_irs, right_irs)
                for (position, _, right_key, distance), probability in zip(pending, probabilities):
                    answers[position]["candidates"].append({
                        "right_id": right_key,
                        "probability": float(probability),
                        "distance": distance,
                        "match": bool(float(probability) > snapshot.threshold),
                    })
        return snapshot, answers

    def stats(self) -> Dict[str, object]:
        """Operational counters for the ``/stats`` endpoint."""
        snapshot = self._snapshot
        try:
            store = self.model.store
            store_codec: Optional[str] = store.codec_name
            store_resident: Optional[int] = store.resident_bytes()
        except Exception:  # pragma: no cover - unfitted model edge
            store_codec, store_resident = None, None
        return {
            "task": self.task.name,
            "generation": None if snapshot is None else snapshot.generation,
            "encoding_version": None if snapshot is None else snapshot.encoding_version,
            "index_mutations": None if snapshot is None else snapshot.index_mutations,
            "pairs": None if snapshot is None else len(snapshot.pairs),
            "matches": None if snapshot is None else snapshot.match_count,
            "left_rows": len(self.task.left),
            "right_rows": len(self.task.right),
            "queue_depth": self._queue.qsize(),
            "mutations_applied": self._mutations_applied,
            "uptime_seconds": time.monotonic() - self._started_at,
            "closed": self._closed,
            # Memory picture: what the resident encodings cost (codes for a
            # quantized store, floats for raw) and what the process pays.
            "store_codec": store_codec,
            "store_resident_bytes": store_resident,
            "process_rss_bytes": process_rss_bytes(),
        }

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def mutate(self, spec: MutationSpec, timeout: Optional[float] = None) -> MutationReport:
        """Apply one mutation through the single-writer queue and wait.

        Blocks until the writer thread has applied the tables' changes and
        refreshed the snapshot (or failed); raises the writer's error in
        the caller so bad payloads surface on the requesting connection.
        """
        if self._closed:
            raise ServeSessionClosed(f"session for task {self.task.name!r} is closed")
        if self._writer is None:
            raise RuntimeError("session not started; call start() first")
        job = _Job(spec)
        self._queue.put(job)
        if not job.done.wait(timeout):
            raise TimeoutError("mutation not applied within timeout")
        if job.error is not None:
            raise job.error
        assert job.report is not None
        return job.report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _writer_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _SENTINEL:
                break
            assert isinstance(job, _Job)
            try:
                job.report = self._apply(job.spec)
            except BaseException as exc:  # noqa: BLE001 - surfaced to the requester
                job.error = exc
            finally:
                job.done.set()
        # Fail any stragglers that raced the close flag so no requester hangs.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is _SENTINEL or not isinstance(job, _Job):
                continue
            job.error = ServeSessionClosed(
                f"session for task {self.task.name!r} closed before the mutation ran"
            )
            job.done.set()

    def _apply(self, spec: MutationSpec) -> MutationReport:
        table = self.task.left if spec.side == "left" else self.task.right
        # Validate the whole request before touching the table, so a bad
        # entry cannot leave a half-applied mutation behind (the requester
        # gets a 400, the table state is exactly what it was).
        arity = table.arity
        for record in spec.edit:
            if record.record_id not in table:
                raise ServeError(f"edit: record {record.record_id!r} not in table {table.name!r}")
            if len(record.values) != arity:
                raise ServeError(f"edit: record {record.record_id!r} has arity {len(record.values)}, expected {arity}")
        pending_deletes = set()
        for record_id in spec.delete:
            if record_id not in table:
                raise ServeError(f"delete: record {record_id!r} not in table {table.name!r}")
            pending_deletes.add(record_id)
        seen_ingest = set()
        for record in spec.ingest:
            if record.record_id in seen_ingest:
                raise ServeError(f"ingest: record id {record.record_id!r} appears twice")
            seen_ingest.add(record.record_id)
            if record.record_id in table and record.record_id not in pending_deletes:
                raise ServeError(f"ingest: duplicate record id {record.record_id!r} in table {table.name!r}")
            if len(record.values) != arity:
                raise ServeError(f"ingest: record {record.record_id!r} has arity {len(record.values)}, expected {arity}")
        with self._index_lock.write():
            for record in spec.edit:
                table.replace(record)
            for record_id in spec.delete:
                table.remove(record_id)
            for record in spec.ingest:
                table.add(record)
            snapshot, stage = self._refresh_locked()
        self._mutations_applied += 1
        return MutationReport(
            generation=snapshot.generation,
            side=spec.side,
            ingested=len(spec.ingest),
            edited=len(spec.edit),
            deleted=len(spec.delete),
            rows_reencoded=stage.counter("rows_reencoded"),
            rows_tombstoned=stage.counter("rows_tombstoned"),
            pairs_rescored=stage.counter("pairs_rescored"),
            pairs=len(snapshot.pairs),
            matches=snapshot.match_count,
        )

    def _refresh(self) -> Snapshot:
        with self._index_lock.write():
            snapshot, _ = self._refresh_locked()
        return snapshot

    def _refresh_locked(self) -> Tuple[Snapshot, StageTimings]:
        """Drain one delta resolve and publish the resulting snapshot.

        Caller holds the index write lock: the delta executor mutates the
        LSH index and the encoding store in place while it runs, and the
        snapshot pointer swap is the linearisation point for readers.
        """
        stage = StageTimings()
        if self.runtime is not None:
            with self.runtime.activate():
                batches = list(self.model.resolve_delta(
                    k=self.k, batch_size=self.batch_size,
                    stage_timings=stage, workers=self.workers,
                ))
        else:
            batches = list(self.model.resolve_delta(
                k=self.k, batch_size=self.batch_size,
                stage_timings=stage, workers=self.workers,
            ))
        merged = merge_scored_batches(batches)
        pairs: List[Tuple[str, str, float]] = []
        by_left: Dict[str, List[Tuple[str, float]]] = {}
        matches = 0
        for pair, probability in zip(merged.pairs, merged.probabilities):
            probability = float(probability)
            left_id, right_id = str(pair.left_id), str(pair.right_id)
            pairs.append((left_id, right_id, probability))
            by_left.setdefault(left_id, []).append((right_id, probability))
            if probability > self.model.threshold:
                matches += 1
        baseline = self.model.baseline
        self._generation += 1
        snapshot = Snapshot(
            generation=self._generation,
            encoding_version=self.model.store.representation.encoding_version,
            index_mutations=0 if baseline is None else baseline.index.mutations,
            threshold=float(self.model.threshold),
            left_rows=len(self.task.left),
            right_rows=len(self.task.right),
            pairs=tuple(pairs),
            by_left={left: tuple(entries) for left, entries in by_left.items()},
            match_count=matches,
        )
        self._snapshot = snapshot
        return snapshot, stage

    def _right_row_index(self, generation: int, encodings) -> Dict[str, int]:
        """Right key → row position map, memoised per snapshot generation."""
        cached = self._row_index_cache
        if cached is not None and cached[0] == generation:
            return cached[1]
        row_of = {str(key): row for row, key in enumerate(encodings.keys)}
        self._row_index_cache = (generation, row_of)
        return row_of
