"""Resolution as a service: a warm match daemon over the delta engine.

Batch resolution pays the cold setup — encoding, LSH build, baseline
capture — on every CLI invocation.  This package keeps those artefacts
warm in one long-lived process and answers point requests at interactive
latency:

* :class:`ServeSession` — the state machine: an immutable
  :class:`Snapshot` per fully drained delta resolve, a single-writer
  mutation queue applying ingest/edit/delete through the PR 5 mutation
  layer, and a readers-writer lock guarding ad-hoc queries against the
  live in-place-mutated LSH index;
* :class:`MatchServer` — a stdlib ``http.server`` front-end speaking JSON
  bodies (``/health``, ``/stats``, ``/resolve``, ``/query``, ``/mutate``,
  ``/shutdown``);
* :class:`MatchClient` — the matching :mod:`urllib` client used by tests,
  benchmarks and the CI smoke script.

Start one from the CLI with ``python -m repro serve --domain music`` or
programmatically::

    session = ServeSession(model, k=10, batch_size=2048).start()
    server = MatchServer(session, port=0).start()
    ...
    server.shutdown()   # drain queue, flush cache, release worker pool
"""

from repro.serve.client import MatchClient, ServeClientError, record_payload
from repro.serve.server import MatchServer
from repro.serve.session import (
    MutationReport,
    MutationSpec,
    ServeError,
    ServeSession,
    ServeSessionClosed,
    Snapshot,
)

__all__ = [
    "MatchClient",
    "MatchServer",
    "MutationReport",
    "MutationSpec",
    "ServeClientError",
    "ServeError",
    "ServeSession",
    "ServeSessionClosed",
    "Snapshot",
    "record_payload",
]
