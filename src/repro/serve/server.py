"""Stdlib HTTP front-end for a :class:`~repro.serve.session.ServeSession`.

The wire protocol is deliberately tiny — JSON request/response bodies over
``http.server`` (no dependencies beyond the standard library):

========  ==========  ====================================================
method    path        semantics
========  ==========  ====================================================
GET       /health     liveness + the current snapshot coordinates
GET       /stats      operational counters (queue depth, uptime, pairs)
POST      /resolve    point query: scored pairs for ``left_ids`` (or all)
POST      /query      resolve ad-hoc records against the live right table
POST      /mutate     ingest/edit/delete through the single-writer queue
POST      /shutdown   graceful shutdown (drain, flush, release, stop)
========  ==========  ====================================================

Every response carries the ``(generation, encoding_version,
index_mutations)`` triple of the snapshot it was answered under, so a
client interleaving queries with mutations can tell exactly which table
state produced each answer.  Floats are serialised with :func:`json.dumps`
(shortest-repr round-trip), so probabilities survive the wire bit-exactly —
the property the byte-identity tests against the batch oracle rely on.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.data.schema import Record
from repro.serve.session import (
    MutationSpec,
    ServeError,
    ServeSession,
    ServeSessionClosed,
    Snapshot,
)

#: Largest accepted request body; a point-query protocol has no business
#: receiving multi-megabyte payloads, and the cap bounds a stuck client.
MAX_BODY_BYTES = 8 * 1024 * 1024


def _snapshot_header(snapshot: Snapshot) -> Dict[str, object]:
    return {
        "generation": snapshot.generation,
        "encoding_version": snapshot.encoding_version,
        "index_mutations": snapshot.index_mutations,
        "threshold": snapshot.threshold,
    }


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def _session(self) -> ServeSession:
        return self.server.match_server.session  # type: ignore[attr-defined]

    def _reply(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _read_body(self) -> Optional[Dict[str, object]]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            self._error(413, f"request body over {MAX_BODY_BYTES} bytes")
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._error(400, "request body is not valid JSON")
            return None
        if not isinstance(payload, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return payload

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Quiet by default; the CLI front-end decides what to print."""
        quiet = getattr(self.server, "quiet", True)  # type: ignore[attr-defined]
        if not quiet:  # pragma: no cover - exercised only by the CLI
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        session = self._session()
        if self.path == "/health":
            try:
                snapshot = session.snapshot
            except RuntimeError:
                self._error(503, "session warming up")
                return
            payload: Dict[str, object] = {"status": "ok", "task": session.task.name}
            payload.update(_snapshot_header(snapshot))
            payload.update({
                "left_rows": snapshot.left_rows,
                "right_rows": snapshot.right_rows,
                "pairs": len(snapshot.pairs),
                "matches": snapshot.match_count,
            })
            self._reply(200, payload)
        elif self.path == "/stats":
            self._reply(200, session.stats())
        else:
            self._error(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        session = self._session()
        payload = self._read_body()
        if payload is None:
            return
        try:
            if self.path == "/resolve":
                self._handle_resolve(session, payload)
            elif self.path == "/query":
                self._handle_query(session, payload)
            elif self.path == "/mutate":
                self._handle_mutate(session, payload)
            elif self.path == "/shutdown":
                self._reply(200, {"status": "shutting down", "task": session.task.name})
                self.server.match_server.shutdown_async()  # type: ignore[attr-defined]
            else:
                self._error(404, f"unknown path {self.path!r}")
        except ServeSessionClosed as exc:
            self._error(503, str(exc))
        except ServeError as exc:
            self._error(400, str(exc))

    # ------------------------------------------------------------------
    def _handle_resolve(self, session: ServeSession, payload: Dict[str, object]) -> None:
        left_ids = payload.get("left_ids")
        if left_ids is not None and not isinstance(left_ids, list):
            raise ServeError("'left_ids' must be a list of record ids")
        snapshot, pairs = session.resolve(
            None if left_ids is None else [str(record_id) for record_id in left_ids]
        )
        body: Dict[str, object] = _snapshot_header(snapshot)
        body["pairs"] = [list(entry) for entry in pairs]
        body["matches"] = sum(1 for _, _, p in pairs if p > snapshot.threshold)
        self._reply(200, body)

    def _handle_query(self, session: ServeSession, payload: Dict[str, object]) -> None:
        raw_records = payload.get("records")
        if not isinstance(raw_records, list) or not raw_records:
            raise ServeError("'records' must be a non-empty list of record objects")
        records = [
            Record(
                record_id=str(item["record_id"]),
                values=tuple(str(value) for value in item["values"]),
            )
            if isinstance(item, dict) and "record_id" in item and "values" in item
            and isinstance(item["values"], (list, tuple))
            else None
            for item in raw_records
        ]
        if any(record is None for record in records):
            raise ServeError("each record needs 'record_id' and a list of 'values'")
        k = payload.get("k")
        if k is not None and not isinstance(k, int):
            raise ServeError("'k' must be an integer")
        snapshot, answers = session.query_records(records, k=k)
        body: Dict[str, object] = _snapshot_header(snapshot)
        body["results"] = answers
        self._reply(200, body)

    def _handle_mutate(self, session: ServeSession, payload: Dict[str, object]) -> None:
        report = session.mutate(MutationSpec.from_payload(payload))
        self._reply(200, report.as_dict())


class MatchServer:
    """The daemon: one warm session behind a threaded stdlib HTTP server."""

    def __init__(
        self,
        session: ServeSession,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
    ) -> None:
        self.session = session
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.daemon_threads = True
        self._http.match_server = self  # type: ignore[attr-defined]
        self._http.quiet = quiet  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._shutdown_lock = threading.Lock()
        self._shut_down = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    def start(self) -> "MatchServer":
        """Serve in a background thread (tests, benchmarks, embedding)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._http.serve_forever, name="serve-http", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (the CLI path)."""
        self._http.serve_forever()

    def shutdown(self) -> None:
        """Graceful stop: drain the mutation queue, then stop the listener.

        The session closes first — new mutations are refused while queued
        ones complete and engine resources (worker pool, shared memory,
        chunk handles) are released — then the HTTP loop exits.  Idempotent.
        """
        with self._shutdown_lock:
            if self._shut_down:
                return
            self._shut_down = True
        self.session.close()
        self._http.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._http.server_close()

    def shutdown_async(self) -> None:
        """Trigger :meth:`shutdown` off the handler thread (``POST /shutdown``)."""
        threading.Thread(target=self.shutdown, name="serve-shutdown", daemon=True).start()
