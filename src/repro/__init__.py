"""Reproduction of "Cost-effective Variational Active Entity Resolution".

The package is organised as:

- :mod:`repro.autograd`, :mod:`repro.nn` — numpy substitutes for the deep
  learning substrate (PyTorch in the paper).
- :mod:`repro.text` — Intermediate Representation (IR) generators: LSA,
  word2vec, hash/contextual embeddings (BERT substitute) and EmbDI.
- :mod:`repro.data` — relational schema, labeled pair sets, and the nine
  synthetic benchmark domains standing in for the DeepMatcher datasets.
- :mod:`repro.blocking` — Euclidean LSH candidate generation.
- :mod:`repro.core` — the paper's contribution: VAE representation learning,
  Siamese matching in the latent space, transferability, and the
  active-learning scheme, wrapped by the :class:`repro.core.pipeline.VAER`
  end-to-end API.
- :mod:`repro.baselines` — DeepER-, DeepMatcher-, DITTO-style matchers.
- :mod:`repro.eval` — metrics and the experiment harness that regenerates the
  paper's tables and figures.
"""

from repro.config import (
    VAEConfig,
    MatcherConfig,
    ActiveLearningConfig,
    BlockingConfig,
    VAERConfig,
    ExperimentConfig,
)
from repro.exceptions import (
    ReproError,
    ConfigurationError,
    SchemaError,
    NotFittedError,
    ArityMismatchError,
    ActiveLearningError,
)

__version__ = "1.0.0"

__all__ = [
    "VAEConfig",
    "MatcherConfig",
    "ActiveLearningConfig",
    "BlockingConfig",
    "VAERConfig",
    "ExperimentConfig",
    "ReproError",
    "ConfigurationError",
    "SchemaError",
    "NotFittedError",
    "ArityMismatchError",
    "ActiveLearningError",
    "__version__",
]
