"""Quantized encoding codecs: int8/PQ codes with lazy, gather-time decoding.

The dense float64 encodings are the memory wall at scale: the persistent
cache stores 8 bytes per dimension and the LSH working set mirrors that
resident. This module adds a codec tier in the PQ/IVF tradition —
candidate generation runs on compressed codes, and floats are rehydrated
only for the rows a consumer actually gathers (surviving pairs, ranked
candidates, hashed blocks).

Three pieces:

``Codec``
    The pluggable protocol: ``fit`` derives per-table parameters once,
    ``encode``/``decode`` map floats to codes and back. ``raw`` is the
    identity codec (the default — every pre-existing path is untouched),
    ``int8`` is per-dimension scale/zero-point scalar quantization, and
    ``pq`` is trained product quantization: each row is split into ``m``
    subvectors and every subvector is replaced by the index of its
    nearest centroid in a per-subspace k-means codebook (up to 256
    entries, so one uint8 per subspace — roughly ``8 * dsub`` bytes of
    float compressed into one).

``CodecArray``
    A lazy array: compact codes plus codec parameters that decode on
    ``__getitem__``. Fancy-indexing a ``CodecArray`` gathers *codes* and
    decodes only the gathered rows, so ``TableEncodings`` fields can hold
    one and the whole gather-then-reduce scoring engine rehydrates
    surviving pairs without materialising the full float store. Code-
    preserving structural ops (``take_rows``, ``row_slice``, ``reshape``,
    ``concat``) exist for the index/persist layers that must keep codes
    compressed end-to-end. ``shape`` is the *logical* float shape — for
    PQ the stored code shape ``(rows, m)`` is decoupled from it.

``asymmetric_sq_distances``
    Float-query × code-table squared Euclidean distances without
    decoding the table. For ``int8`` the kernel folds the per-dimension
    scale into the query and runs a blockwise float32 matmul against the
    raw codes (the de-scaled-matmul identity). For ``pq`` it is a
    classic ADC (asymmetric distance computation) kernel: per query
    block it builds an ``m × 256`` lookup table of partial squared
    distances (one BLAS sgemm per subspace), then accumulates table
    distances by indexing the LUT with the stored codes — per-row cost
    ``m`` byte gathers and adds, independent of the float dimension.

The quantize-once invariant: parameters are fitted at the first full
encode of a table and then *fixed*; appended or edited rows are encoded
with the existing parameters (int8 clips into range, PQ assigns to the
fixed codebooks). Quantization error therefore enters exactly once,
codes from different chunks/generations splice consistently, and disk
round-trips are byte-identical.
"""

from __future__ import annotations

import base64
import math
import os
import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Codec",
    "CodecArray",
    "CodecParams",
    "PQParams",
    "RawCodec",
    "ScalarQuantizer",
    "ProductQuantizer",
    "asymmetric_sq_distances",
    "table_sq_norms_of",
    "available_codecs",
    "get_codec",
    "params_from_json",
    "resolve_codec_name",
    "CODEC_ENV_VAR",
    "DEFAULT_CODEC",
]

CODEC_ENV_VAR = "REPRO_ENGINE_CODEC"
DEFAULT_CODEC = "raw"

# int8 code range. Symmetric [-127, 127] (−128 unused) so negation and
# midpoint arithmetic stay exact.
_QMIN = -127
_QMAX = 127
_QLEVELS = _QMAX - _QMIN  # 254 steps


class CodecParams:
    """Per-array affine quantization parameters (the ``int8`` codec).

    ``scale`` and ``offset`` carry the array's trailing shape (everything
    after the row axis) so ``codes * scale + offset`` broadcasts directly.
    JSON round-trips exactly: Python float repr is shortest-exact.
    """

    __slots__ = ("scale", "offset")

    #: Name of the codec these params drive (persisted per cache entry).
    codec_name = "int8"
    #: Storage dtype of the codes this codec emits.
    code_dtype = np.dtype(np.int8)
    #: Blocking rank-cut multiplier over this codec's tables (see
    #: :class:`PQParams` — affine int8 ranks accurately enough at 1).
    rank_expansion = 1
    #: Extra low-margin LSH buckets probed per hash table at query time.
    extra_probes = 0

    def __init__(self, scale: np.ndarray, offset: np.ndarray) -> None:
        self.scale = np.asarray(scale, dtype=np.float64)
        self.offset = np.asarray(offset, dtype=np.float64)

    # -- geometry ------------------------------------------------------
    @property
    def logical_trailing(self) -> Tuple[int, ...]:
        """Trailing shape of the decoded float array."""
        return tuple(self.scale.shape)

    @property
    def code_trailing(self) -> Tuple[int, ...]:
        """Trailing shape of the stored code array (== logical for int8)."""
        return tuple(self.scale.shape)

    @property
    def nbytes(self) -> int:
        return int(self.scale.nbytes + self.offset.nbytes)

    # -- code mapping --------------------------------------------------
    def decode_codes(self, codes: np.ndarray) -> np.ndarray:
        out = codes.astype(np.float64)
        out *= self.scale
        out += self.offset
        return out

    def encode_values(self, values: np.ndarray) -> np.ndarray:
        return _encode_with(np.asarray(values, dtype=np.float64), self)

    # -- serialization -------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "shape": [int(d) for d in self.scale.shape],
            "scale": [float(v) for v in self.scale.reshape(-1)],
            "offset": [float(v) for v in self.offset.reshape(-1)],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "CodecParams":
        shape = tuple(int(d) for d in payload["shape"])  # type: ignore[index]
        scale = np.asarray(payload["scale"], dtype=np.float64).reshape(shape)
        offset = np.asarray(payload["offset"], dtype=np.float64).reshape(shape)
        return cls(scale, offset)

    def reshaped(self, trailing_shape: Tuple[int, ...]) -> "CodecParams":
        return CodecParams(
            self.scale.reshape(trailing_shape), self.offset.reshape(trailing_shape)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CodecParams):
            return NotImplemented
        return (
            self.scale.shape == other.scale.shape
            and np.array_equal(self.scale, other.scale)
            and np.array_equal(self.offset, other.offset)
        )

    def __hash__(self) -> int:  # pragma: no cover - parity with __eq__
        return hash((self.scale.tobytes(), self.offset.tobytes(), self.scale.shape))


def _b64_f16(array: np.ndarray) -> str:
    """Exact, deterministic wire form of an f16-representable float array.

    Codebook centroids are rounded to float16 at construction (see
    :class:`PQParams`), so the half-precision wire form loses nothing and
    halves the manifest payload relative to float32.
    """
    return base64.b64encode(np.ascontiguousarray(array, dtype="<f2").tobytes()).decode("ascii")


def _f16_b64(data: str, shape: Tuple[int, ...]) -> np.ndarray:
    array = np.frombuffer(base64.b64decode(data.encode("ascii")), dtype="<f2")
    return array.reshape(shape).astype(np.float32)


class PQParams:
    """Trained product-quantization parameters (the ``pq`` codec).

    A row's flattened ``d`` float dimensions are partitioned into ``m``
    contiguous subspaces (``splits`` holds the ``m + 1`` boundaries) and
    each subspace ``j`` carries a float32 codebook of up to 256 centroids;
    a stored code row is the ``(m,)`` uint8 vector of per-subspace
    centroid indices. ``trailing`` is the *logical* trailing shape the
    decoded floats are returned in — decoupled from the ``(m,)`` code
    shape, which is what lets ``CodecArray.reshape`` (``flat_mu``-style
    views) swap the logical view without touching codes.

    Codebooks are float32 in memory but rounded to float16-representable
    values at construction: quantization noise dwarfs the half-precision
    rounding, the base64 f16 JSON wire form round-trips bit-exactly (so
    warm-loaded params encode byte-identically to the cold fit) and the
    manifest payload halves relative to float32 centroids.
    """

    __slots__ = ("codebooks", "splits", "trailing")

    codec_name = "pq"
    code_dtype = np.dtype(np.uint8)
    #: Blocking rank-cut multiplier: over PQ tables the LSH index ranks an
    #: expanded ADC shortlist (``rank_expansion * k`` per query) so the
    #: true top-``k`` survives approximate-distance rank flips — the
    #: classic shortlist-then-exact-score pattern; the matcher rehydrates
    #: only surviving pairs either way.
    rank_expansion = 2
    #: Query-time multiprobe: per hash table, also probe this many
    #: neighbouring buckets across the query's lowest-margin hyperplane
    #: boundaries, compensating bucket flips induced by decode error.
    extra_probes = 1

    def __init__(
        self,
        codebooks: Sequence[np.ndarray],
        splits: Sequence[int],
        trailing: Sequence[int],
    ) -> None:
        self.codebooks = tuple(
            np.ascontiguousarray(cb, dtype=np.float32)
            .astype(np.float16)
            .astype(np.float32)
            for cb in codebooks
        )
        self.splits = tuple(int(s) for s in splits)
        self.trailing = tuple(int(t) for t in trailing)
        if len(self.splits) != len(self.codebooks) + 1:
            raise ValueError("PQParams splits must carry m + 1 boundaries")
        d = self.splits[-1] if self.splits else 0
        if int(np.prod(self.trailing, dtype=np.int64)) != d:
            raise ValueError(
                f"PQ logical trailing {self.trailing} does not flatten to d={d}"
            )
        for j, cb in enumerate(self.codebooks):
            if cb.ndim != 2 or cb.shape[1] != self.splits[j + 1] - self.splits[j]:
                raise ValueError(f"PQ codebook {j} has shape {cb.shape}")
            if not 1 <= cb.shape[0] <= 256:
                raise ValueError(f"PQ codebook {j} holds {cb.shape[0]} entries")

    # -- geometry ------------------------------------------------------
    @property
    def m(self) -> int:
        return len(self.codebooks)

    @property
    def d(self) -> int:
        return self.splits[-1] if self.splits else 0

    @property
    def logical_trailing(self) -> Tuple[int, ...]:
        return self.trailing

    @property
    def code_trailing(self) -> Tuple[int, ...]:
        return (self.m,)

    @property
    def nbytes(self) -> int:
        return int(sum(cb.nbytes for cb in self.codebooks))

    # -- code mapping --------------------------------------------------
    def decode_codes(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes)
        single = codes.ndim == 1
        rows = codes.reshape(-1, self.m) if not single else codes.reshape(1, self.m)
        out = np.empty((rows.shape[0], self.d), dtype=np.float64)
        for j, cb in enumerate(self.codebooks):
            out[:, self.splits[j]:self.splits[j + 1]] = cb[rows[:, j]]
        shaped = out.reshape((rows.shape[0],) + self.trailing)
        return shaped[0] if single else shaped

    def encode_values(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        single = values.shape == self.trailing
        flat = values.reshape(1, self.d) if single else values.reshape(-1, self.d)
        codes = np.empty((flat.shape[0], self.m), dtype=np.uint8)
        for j, cb in enumerate(self.codebooks):
            sub = flat[:, self.splits[j]:self.splits[j + 1]].astype(np.float32)
            codes[:, j] = _pq_assign(sub, cb)[0]
        return codes[0] if single else codes

    # -- serialization -------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "trailing": [int(t) for t in self.trailing],
            "splits": [int(s) for s in self.splits],
            "ksub": [int(cb.shape[0]) for cb in self.codebooks],
            "codebooks": [_b64_f16(cb) for cb in self.codebooks],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "PQParams":
        splits = [int(s) for s in payload["splits"]]  # type: ignore[index]
        ksub = [int(k) for k in payload["ksub"]]  # type: ignore[index]
        blobs = payload["codebooks"]  # type: ignore[index]
        codebooks = [
            _f16_b64(blob, (ksub[j], splits[j + 1] - splits[j]))
            for j, blob in enumerate(blobs)
        ]
        return cls(codebooks, splits, tuple(int(t) for t in payload["trailing"]))  # type: ignore[arg-type]

    def reshaped(self, trailing_shape: Tuple[int, ...]) -> "PQParams":
        trailing = _resolve_trailing(trailing_shape, self.d)
        return PQParams(self.codebooks, self.splits, trailing)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PQParams):
            return NotImplemented
        return (
            self.splits == other.splits
            and self.trailing == other.trailing
            and len(self.codebooks) == len(other.codebooks)
            and all(
                a.shape == b.shape and np.array_equal(a, b)
                for a, b in zip(self.codebooks, other.codebooks)
            )
        )

    def __hash__(self) -> int:  # pragma: no cover - parity with __eq__
        return hash(
            (self.splits, self.trailing, tuple(cb.tobytes() for cb in self.codebooks))
        )


AnyParams = Union[CodecParams, PQParams]


def params_from_json(codec_name: str, payload: Dict[str, object]) -> AnyParams:
    """Rebuild codec params from their manifest JSON by codec name."""
    if codec_name == CodecParams.codec_name:
        return CodecParams.from_json(payload)
    if codec_name == PQParams.codec_name:
        return PQParams.from_json(payload)
    raise ValueError(f"no parameterised codec named {codec_name!r}")


def _resolve_trailing(shape: Tuple[int, ...], total: int) -> Tuple[int, ...]:
    """Resolve a single ``-1`` in a trailing shape against ``total`` dims."""
    shape = tuple(int(t) for t in shape)
    negatives = [i for i, t in enumerate(shape) if t < 0]
    if not negatives:
        if int(np.prod(shape, dtype=np.int64)) != total:
            raise ValueError(f"trailing shape {shape} does not flatten to {total}")
        return shape
    if len(negatives) > 1:
        raise ValueError("at most one trailing dimension may be -1")
    known = int(np.prod([t for t in shape if t >= 0], dtype=np.int64))
    if known == 0 or total % known:
        raise ValueError(f"trailing shape {shape} does not flatten to {total}")
    resolved = list(shape)
    resolved[negatives[0]] = total // known
    return tuple(resolved)


class CodecArray:
    """Compact codes + codec params, decoding lazily on indexed access.

    ``a[idx]`` gathers codes and returns *decoded float64* for exactly the
    gathered rows — ndarray-compatible read semantics, so gather-based
    consumers (pair scoring, ranking, hashing a row block) work unchanged
    while the resident representation stays one byte per dimension (int8)
    or one byte per subspace (pq). ``shape`` is the logical float shape;
    for PQ the stored ``codes`` are ``(rows, m)`` uint8.

    Structural operations that must stay compressed use explicit methods:
    ``take_rows`` / ``row_slice`` (code-preserving gathers), ``reshape``
    (row-count-preserving, for ``flat_mu``-style views), and ``concat``.
    ``__setitem__`` re-encodes float rows in place with the fixed params.
    """

    __slots__ = ("codes", "params", "on_decode")

    def __init__(
        self,
        codes: np.ndarray,
        params: AnyParams,
        on_decode=None,
    ) -> None:
        codes = np.asarray(codes)
        if codes.dtype != params.code_dtype:
            raise TypeError(
                f"CodecArray codes must be {params.code_dtype} for the "
                f"{params.codec_name!r} codec, got {codes.dtype}"
            )
        if isinstance(params, CodecParams):
            if params.scale.shape != codes.shape[1:]:
                params = params.reshaped(codes.shape[1:])
        else:
            if codes.ndim != 2 or codes.shape[1:] != params.code_trailing:
                raise ValueError(
                    f"PQ codes must be (rows, {params.m}); got {codes.shape}"
                )
        self.codes = codes
        self.params = params
        self.on_decode = on_decode

    # -- ndarray-compatible surface ------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return (len(self),) + self.params.logical_trailing

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def dtype(self) -> np.dtype:
        # The *logical* dtype: what indexed reads produce.
        return np.dtype(np.float64)

    @property
    def nbytes(self) -> int:
        return int(self.codes.nbytes + self.params.nbytes)

    def __len__(self) -> int:
        return int(self.codes.shape[0])

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        out = self.params.decode_codes(codes)
        if self.on_decode is not None:
            self.on_decode(int(out.nbytes))
        return out

    def __getitem__(self, idx) -> np.ndarray:
        if isinstance(self.params, CodecParams):
            # Code space == logical space: any ndarray index works directly.
            return self._decode(np.asarray(self.codes[idx]))
        # PQ: the leading index selects rows in code space; any trailing
        # index applies to the decoded logical rows.
        rows, rest = (idx[0], idx[1:]) if isinstance(idx, tuple) else (idx, ())
        decoded = self._decode(np.asarray(self.codes[rows]))
        if rest:
            scalar_row = isinstance(rows, (int, np.integer))
            decoded = decoded[rest if scalar_row else (slice(None),) + rest]
        return decoded

    def __setitem__(self, idx, values) -> None:
        if isinstance(idx, tuple) and isinstance(self.params, PQParams):
            raise TypeError("PQ CodecArray only supports whole-row assignment")
        self.codes[idx] = self.params.encode_values(values)

    def __array__(self, dtype=None) -> np.ndarray:
        full = self._decode(self.codes)
        return full if dtype is None else full.astype(dtype)

    def decode(self) -> np.ndarray:
        """Materialise the full float array (rarely wanted — prefer gathers)."""
        return self._decode(self.codes)

    # -- code-preserving structure -------------------------------------
    def take_rows(self, rows) -> "CodecArray":
        return CodecArray(self.codes[rows], self.params, on_decode=self.on_decode)

    def row_slice(self, start: int, stop: int) -> "CodecArray":
        return CodecArray(self.codes[start:stop], self.params, on_decode=self.on_decode)

    def reshape(self, *shape) -> "CodecArray":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        if not shape or shape[0] not in (len(self), -1):
            raise ValueError(
                f"CodecArray.reshape must preserve the row axis; got {shape}"
            )
        if isinstance(self.params, PQParams):
            # Codes never move: only the logical trailing view changes.
            return CodecArray(
                self.codes,
                self.params.reshaped(tuple(shape[1:])),
                on_decode=self.on_decode,
            )
        codes = self.codes.reshape((len(self),) + tuple(shape[1:]))
        return CodecArray(
            codes,
            CodecParams(
                self.params.scale.reshape(codes.shape[1:]),
                self.params.offset.reshape(codes.shape[1:]),
            ),
            on_decode=self.on_decode,
        )

    def encode_rows(self, values: np.ndarray) -> np.ndarray:
        """Quantize float rows with this array's fixed params."""
        return self.params.encode_values(np.asarray(values, dtype=np.float64))

    def concat_rows(self, values) -> "CodecArray":
        """Append rows (floats or a params-compatible CodecArray)."""
        if isinstance(values, CodecArray):
            if values.params != self.params:
                raise ValueError("cannot concat CodecArrays with different params")
            tail = values.codes
        else:
            tail = self.encode_rows(values)
        return CodecArray(
            np.concatenate([self.codes, tail], axis=0),
            self.params,
            on_decode=self.on_decode,
        )

    @classmethod
    def concat(cls, parts: Sequence["CodecArray"]) -> "CodecArray":
        if not parts:
            raise ValueError("concat of zero CodecArrays")
        head = parts[0]
        for part in parts[1:]:
            if part.params != head.params:
                raise ValueError("cannot concat CodecArrays with different params")
        return cls(
            np.concatenate([p.codes for p in parts], axis=0),
            head.params,
            on_decode=head.on_decode,
        )

    # -- pickling: drop the counter hook (process-local) ----------------
    def __getstate__(self):
        return {"codes": self.codes, "params": self.params}

    def __setstate__(self, state):
        # Bypass __init__ validation: state comes from a trusted pickle.
        object.__setattr__(self, "codes", state["codes"])
        object.__setattr__(self, "params", state["params"])
        object.__setattr__(self, "on_decode", None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CodecArray(shape={self.shape}, nbytes={self.nbytes})"


def _encode_with(values: np.ndarray, params: CodecParams) -> np.ndarray:
    scaled = (values - params.offset) / params.scale
    np.rint(scaled, out=scaled)
    np.clip(scaled, _QMIN, _QMAX, out=scaled)
    return scaled.astype(np.int8)


# ----------------------------------------------------------------------
# Codec protocol + implementations
# ----------------------------------------------------------------------
class Codec:
    """Pluggable codec protocol.

    ``fit(values)`` derives per-table params from a full float array
    (quantize-once: call it exactly once per table/array, at the first
    full encode). ``encode`` wraps floats into the compressed resident
    form, ``decode`` rehydrates. The ``raw`` codec is the identity on
    plain ndarrays, so codec-agnostic code can call these unconditionally.
    """

    name: str = "abstract"
    is_identity: bool = False
    #: ``False`` marks a registered-but-unimplemented tier: the name stays
    #: resolvable for discovery (``available_codecs``), but selecting it —
    #: via flag or environment — fails at name-resolution time rather than
    #: deep inside the engine.
    usable: bool = True

    def fit(self, values: np.ndarray) -> Optional[AnyParams]:
        raise NotImplementedError

    def encode(self, values: np.ndarray, params: Optional[AnyParams], on_decode=None):
        raise NotImplementedError

    def decode(self, stored) -> np.ndarray:
        raise NotImplementedError


class RawCodec(Codec):
    """Identity codec: floats in, the same floats out. The default tier."""

    name = "raw"
    is_identity = True

    def fit(self, values: np.ndarray) -> Optional[CodecParams]:
        return None

    def encode(self, values: np.ndarray, params: Optional[CodecParams], on_decode=None):
        return values

    def decode(self, stored) -> np.ndarray:
        return np.asarray(stored)


class ScalarQuantizer(Codec):
    """Per-dimension int8 affine quantizer (scale + zero-point midpoint).

    Each trailing dimension gets ``scale = (max - min) / 254`` and
    ``offset = (max + min) / 2`` (the midpoint maps to code 0), so the
    worst-case absolute error per dimension is ``scale / 2`` — the
    epsilon the blocking-recall guarantee is pinned against. Constant
    (zero-range) dimensions get scale 1 and decode exactly.
    """

    name = "int8"

    def fit(self, values: np.ndarray) -> CodecParams:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim < 2:
            raise ValueError("ScalarQuantizer.fit expects a (rows, ...) array")
        trailing = values.shape[1:]
        if values.shape[0] == 0:
            return CodecParams(np.ones(trailing), np.zeros(trailing))
        vmin = values.min(axis=0)
        vmax = values.max(axis=0)
        span = vmax - vmin
        scale = span / float(_QLEVELS)
        flat = np.where(scale <= 0.0, 1.0, scale)
        offset = (vmax + vmin) / 2.0
        return CodecParams(flat, offset)

    def encode(
        self, values: np.ndarray, params: Optional[CodecParams], on_decode=None
    ) -> CodecArray:
        if params is None:
            params = self.fit(values)
        codes = _encode_with(np.asarray(values, dtype=np.float64), params)
        return CodecArray(codes, params, on_decode=on_decode)

    def decode(self, stored) -> np.ndarray:
        if isinstance(stored, CodecArray):
            return stored.decode()
        return np.asarray(stored)


# -- PQ training knobs --------------------------------------------------
#: Override the subspace count ``m`` (default: one subspace per
#: ``_PQ_DSUB`` flattened dimensions, clamped to ``d``).
PQ_M_ENV_VAR = "REPRO_PQ_M"
#: Target subvector width when ``m`` is derived (4 floats -> 1 byte = 32x
#: on the code payload; accuracy-leaning vs the classic 8).
_PQ_DSUB = 4
#: Hard cap on codebook entries (uint8 codes).
_PQ_KSUB_MAX = 256
#: Codebook floor — blocking recall needs this much resolution per
#: subspace regardless of table size (tables with fewer distinct rows
#: take the exact-decode guard instead, so small tables stay cheap).
_PQ_KSUB_MIN = 64
#: Centroid budget grows with the table: ~one centroid per this many rows;
#: f16 codebooks amortise against code bytes from a few hundred rows up.
_PQ_ROWS_PER_CENTROID = 8
#: Lloyd iterations (assignments converge long before this on our tables).
_PQ_ITERS = 15
#: Distortion-adaptive refinement target: a fitted subspace whose mean
#: squared quantization error exceeds this fraction of its total variance
#: is split in half and refit (recursively, down to single dimensions) —
#: rate allocation by distortion, so hard tables spend extra code bytes
#: where easy tables spend none.
_PQ_DISTORTION_TARGET = 0.02
#: Training subsample cap: k-means cost stays bounded on huge tables.
_PQ_TRAIN_CAP = 1 << 16
#: Deterministic training seed (fresh generator per fit: refits agree).
_PQ_SEED = 0x5EED


def _pq_assign(sub: np.ndarray, codebook: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment by exact blockwise broadcast-diff.

    The difference of bit-equal float32 values is exactly ``0.0``, so a
    subvector that *is* a codebook entry always assigns to it with
    distance exactly zero — the property the low-variance exact-decode
    guard relies on (a matmul-based expansion would round).
    Returns ``(indices, squared distances)``.
    """
    n = sub.shape[0]
    ksub, dsub = codebook.shape
    indices = np.empty(n, dtype=np.intp)
    dists = np.empty(n, dtype=np.float32)
    block = max(1, _BLOCK_BYTES // (4 * max(1, ksub * max(1, dsub))))
    for start in range(0, n, block):
        stop = min(n, start + block)
        diff = sub[start:stop, None, :] - codebook[None, :, :]
        sq = np.einsum("ikd,ikd->ik", diff, diff)
        indices[start:stop] = sq.argmin(axis=1)
        dists[start:stop] = sq[np.arange(stop - start), indices[start:stop]]
    return indices, dists


def _pq_kmeans(
    sub: np.ndarray, unique_rows: np.ndarray, ksub: int, rng: np.random.Generator
) -> np.ndarray:
    """Seeded Lloyd k-means over one float32 subspace; float32 centroids.

    Deterministic end to end: seeded init from distinct rows, stable
    argmin assignment, and empty clusters reseeded to the points farthest
    from their current centroid (largest distance first, lowest row index
    on ties). Means accumulate in float64 and round once to float32.
    """
    train = sub
    if train.shape[0] > _PQ_TRAIN_CAP:
        picked = np.sort(rng.choice(train.shape[0], _PQ_TRAIN_CAP, replace=False))
        train = train[picked]
    init = rng.choice(unique_rows.shape[0], ksub, replace=False)
    centers = unique_rows[np.sort(init)].astype(np.float64)
    x = train.astype(np.float64)
    for _ in range(_PQ_ITERS):
        assign, dist = _pq_assign(train, centers.astype(np.float32))
        counts = np.bincount(assign, minlength=ksub)
        sums = np.zeros((ksub, x.shape[1]), dtype=np.float64)
        for dim in range(x.shape[1]):
            sums[:, dim] = np.bincount(assign, weights=x[:, dim], minlength=ksub)
        filled = counts > 0
        centers[filled] = sums[filled] / counts[filled, None]
        empties = np.flatnonzero(~filled)
        if empties.size:
            far = np.argsort(-dist.astype(np.float64), kind="stable")
            for empty, point in zip(empties, far[: empties.size]):
                centers[empty] = x[point]
    return centers.astype(np.float32)


class ProductQuantizer(Codec):
    """Trained product quantization: per-subspace k-means codebooks.

    ``fit`` flattens the trailing dims to ``d`` float dimensions, splits
    them into ``m`` contiguous subspaces (``REPRO_PQ_M`` overrides the
    ``d / 4`` default) and trains one codebook per subspace with seeded,
    deterministic Lloyd k-means. The codebook budget scales with the
    table — ``min(256, max(64, rows / 8))`` centroids — floored high
    enough for blocking-grade fidelity; tables smaller than the floor
    fall into the exact-decode guard, so the budget never degenerates.
    Subspaces whose fitted distortion misses ``_PQ_DISTORTION_TARGET``
    are split in half and refit (see :meth:`_fit_subspace`), so code
    bytes concentrate on the tables that actually need them.

    The exact-decode guard: a subspace with at most ``ksub`` distinct
    (float32) subvectors skips k-means and uses the distinct rows
    themselves as the codebook, so empty, constant and low-variance
    subspaces decode exactly (at float32 precision) instead of producing
    degenerate centroids.
    """

    name = "pq"
    usable = True

    def __init__(self, m: Optional[int] = None, seed: int = _PQ_SEED) -> None:
        self.m = m
        self.seed = int(seed)

    def _subspaces(self, d: int) -> List[int]:
        """Split boundaries: ``m + 1`` monotone offsets covering ``d``."""
        m = self.m
        if m is None:
            env = os.environ.get(PQ_M_ENV_VAR, "").strip()
            if env:
                try:
                    m = int(env)
                except ValueError:
                    m = None
        if m is None or m <= 0:
            m = math.ceil(d / _PQ_DSUB)
        m = max(1, min(int(m), d)) if d else 0
        sizes = [len(part) for part in np.array_split(np.arange(d), m)] if m else []
        return [0] + list(np.cumsum(sizes, dtype=int))

    def _fit_subspace(
        self,
        sub: np.ndarray,
        ksub: int,
        rng: np.random.Generator,
        codebooks: List[np.ndarray],
        widths: List[int],
    ) -> None:
        """Fit one subspace, splitting and recursing when distortion misses.

        Appends the fitted codebook(s) and their widths in dimension order.
        A subspace whose mean squared k-means error stays above
        ``_PQ_DISTORTION_TARGET`` of its total variance is halved and each
        half refit — recursive rate allocation that stops at single
        dimensions (where a 256-entry codebook is plain scalar k-means).
        """
        unique_rows = np.unique(sub, axis=0)
        if unique_rows.shape[0] <= ksub:
            # Exact-decode guard: the data *is* the codebook.
            codebooks.append(unique_rows)
            widths.append(sub.shape[1])
            return
        codebook = _pq_kmeans(sub, unique_rows, ksub, rng)
        if sub.shape[1] >= 2:
            _, dists = _pq_assign(sub, codebook)
            variance = float(sub.var(axis=0, dtype=np.float64).sum())
            if variance > 0.0 and float(dists.mean(dtype=np.float64)) > (
                _PQ_DISTORTION_TARGET * variance
            ):
                half = sub.shape[1] // 2
                self._fit_subspace(
                    np.ascontiguousarray(sub[:, :half]), ksub, rng, codebooks, widths
                )
                self._fit_subspace(
                    np.ascontiguousarray(sub[:, half:]), ksub, rng, codebooks, widths
                )
                return
        codebooks.append(codebook)
        widths.append(sub.shape[1])

    def fit(self, values: np.ndarray) -> PQParams:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim < 2:
            raise ValueError("ProductQuantizer.fit expects a (rows, ...) array")
        trailing = values.shape[1:]
        n = values.shape[0]
        d = int(np.prod(trailing, dtype=np.int64))
        flat = values.reshape(n, d).astype(np.float32)
        splits = self._subspaces(d)
        ksub = min(
            _PQ_KSUB_MAX, max(_PQ_KSUB_MIN, n // _PQ_ROWS_PER_CENTROID)
        )
        rng = np.random.default_rng(self.seed)
        codebooks: List[np.ndarray] = []
        widths: List[int] = []
        for j in range(len(splits) - 1):
            lo, hi = splits[j], splits[j + 1]
            if n == 0:
                codebooks.append(np.zeros((1, hi - lo), dtype=np.float32))
                widths.append(hi - lo)
                continue
            self._fit_subspace(
                np.ascontiguousarray(flat[:, lo:hi]), ksub, rng, codebooks, widths
            )
        return PQParams(codebooks, [0] + list(np.cumsum(widths, dtype=int)), trailing)

    def encode(
        self, values: np.ndarray, params: Optional[PQParams], on_decode=None
    ) -> CodecArray:
        if params is None:
            params = self.fit(values)
        codes = params.encode_values(np.asarray(values, dtype=np.float64))
        return CodecArray(codes, params, on_decode=on_decode)

    def decode(self, stored) -> np.ndarray:
        if isinstance(stored, CodecArray):
            return stored.decode()
        return np.asarray(stored)


_CODECS: Dict[str, Codec] = {
    RawCodec.name: RawCodec(),
    ScalarQuantizer.name: ScalarQuantizer(),
    ProductQuantizer.name: ProductQuantizer(),
}


def available_codecs() -> List[str]:
    return sorted(_CODECS)


def usable_codecs() -> List[str]:
    """Codec names that can actually encode today (stub tiers excluded)."""
    return sorted(name for name, codec in _CODECS.items() if codec.usable)


def get_codec(name: str) -> Codec:
    try:
        return _CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; available: {', '.join(available_codecs())}"
        ) from None


#: Environment codec values already warned about (one-shot per process).
_WARNED_ENV_CODECS: set = set()


def resolve_codec_name(name: Optional[str] = None) -> str:
    """Resolve an explicit codec name, falling back to ``REPRO_ENGINE_CODEC``.

    Explicit names are validated loudly. An unset/empty environment value
    resolves to the raw default; an unknown or unusable environment value
    also degrades to ``raw`` (the forgiving posture of
    ``REPRO_ENGINE_WORKERS``) but emits a one-shot :class:`RuntimeWarning`
    naming the ignored value and the usable codecs, so a typo'd
    ``REPRO_ENGINE_CODEC=pq8`` no longer silently runs uncompressed.
    """
    if name:
        codec = get_codec(name)  # validate explicit choices loudly
        if not codec.usable:
            raise ValueError(
                f"codec {name!r} is a registered stub and cannot encode yet; "
                f"supported codecs: {', '.join(usable_codecs())}"
            )
        return name
    env = os.environ.get(CODEC_ENV_VAR, "").strip().lower()
    if env in _CODECS and _CODECS[env].usable:
        return env
    if env and env not in _WARNED_ENV_CODECS:
        _WARNED_ENV_CODECS.add(env)
        warnings.warn(
            f"ignoring {CODEC_ENV_VAR}={env!r}: not a usable codec "
            f"(usable: {', '.join(usable_codecs())}); falling back to "
            f"{DEFAULT_CODEC!r}",
            RuntimeWarning,
            stacklevel=2,
        )
    return DEFAULT_CODEC


# ----------------------------------------------------------------------
# Asymmetric distance kernels
# ----------------------------------------------------------------------
_BLOCK_BYTES = 1 << 22  # ~4 MiB of float32 per decode block


def asymmetric_sq_distances(
    query: np.ndarray,
    table: CodecArray,
    table_sq_norms: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Squared Euclidean distances from float queries to a code table.

    ``query`` is ``(d,)`` or ``(m, d)`` float; ``table`` is an ``(n, d)``
    :class:`CodecArray`. The kernel never materialises the decoded table.

    For ``int8`` it shifts queries by the offset, folds the per-dimension
    scale into the query side, and runs a blockwise float32 matmul
    against the raw codes — the de-scaled-matmul identity

        ||q - (c s + o)||^2 = ||q - o||^2 - 2 ((q - o) s) . c + ||c s||^2.

    ``table_sq_norms`` (the ``||c s||^2`` term) can be precomputed with
    :func:`table_sq_norms_of` and cached across queries.

    For ``pq`` it is the ADC kernel: per query block it builds an
    ``m × 256`` lookup table of partial squared distances (one float32
    sgemm per subspace, the same blockwise BLAS-friendly shape as the
    int8 path) and accumulates ``out[q, i] = Σ_j lut[q, j, code[i, j]]``
    by code indexing. The LUT already carries the full distance, so the
    norm-cache term is zero for PQ tables and the argument is ignored.
    """
    if table.ndim != 2:
        raise ValueError("asymmetric distances expect a 2-D code table")
    q = np.asarray(query, dtype=np.float64)
    squeeze = q.ndim == 1
    q = np.atleast_2d(q)
    if isinstance(table.params, PQParams):
        out = _pq_adc_sq_distances(q, table)
        return out[0] if squeeze else out
    scale = table.params.scale
    offset = table.params.offset
    shifted = q - offset  # (m, d)
    scaled_q = (shifted * scale).astype(np.float32)  # fold scale into query side
    if table_sq_norms is None:
        table_sq_norms = table_sq_norms_of(table)
    n = len(table)
    d = max(1, table.codes.shape[1])
    out = np.empty((q.shape[0], n), dtype=np.float64)
    block = max(1, _BLOCK_BYTES // (4 * d))
    for start in range(0, n, block):
        stop = min(n, start + block)
        codes_f32 = table.codes[start:stop].astype(np.float32)
        out[:, start:stop] = scaled_q @ codes_f32.T  # BLAS sgemm
    out *= -2.0
    out += (shifted * shifted).sum(axis=1)[:, None]
    out += table_sq_norms[None, :]
    np.maximum(out, 0.0, out=out)
    result = out[0] if squeeze else out
    return result


def _pq_adc_sq_distances(q: np.ndarray, table: CodecArray) -> np.ndarray:
    """ADC: per-query LUT build (BLAS) + blockwise code-indexed accumulate."""
    params = table.params
    nq = q.shape[0]
    if q.shape[1] != params.d:
        raise ValueError(
            f"query dimension {q.shape[1]} does not match PQ table d={params.d}"
        )
    # One (nq, m, 256) float32 LUT per call: lut[q, j, c] is the exact
    # squared distance between query subvector j and centroid c.
    luts = np.zeros((nq, params.m, _PQ_KSUB_MAX), dtype=np.float32)
    for j, cb in enumerate(params.codebooks):
        qj = q[:, params.splits[j]:params.splits[j + 1]].astype(np.float32)
        cross = qj @ cb.T  # BLAS sgemm: (nq, ksub_j)
        luts[:, j, : cb.shape[0]] = (
            (qj * qj).sum(axis=1)[:, None] - 2.0 * cross + (cb * cb).sum(axis=1)[None, :]
        )
    n = len(table)
    codes = table.codes
    out = np.empty((nq, n), dtype=np.float64)
    block = max(1, _BLOCK_BYTES // (4 * max(1, nq)))
    for start in range(0, n, block):
        stop = min(n, start + block)
        acc = np.zeros((nq, stop - start), dtype=np.float32)
        for j in range(params.m):
            acc += luts[:, j, codes[start:stop, j]]
        out[:, start:stop] = acc
    np.maximum(out, 0.0, out=out)
    return out


def table_sq_norms_of(table: CodecArray) -> np.ndarray:
    """Per-row norm term for the asymmetric kernel, computed blockwise.

    For int8 this is ``||c * s||^2`` (cached across queries by the LSH
    index). PQ lookup tables already carry the complete distance, so PQ
    tables report zeros — the norm-cache machinery stays codec-agnostic.
    """
    if table.ndim != 2:
        raise ValueError("table norms expect a 2-D code table")
    n = len(table)
    if isinstance(table.params, PQParams):
        return np.zeros(n, dtype=np.float64)
    d = max(1, table.codes.shape[1])
    scale32 = table.params.scale.astype(np.float32)
    norms = np.empty(n, dtype=np.float64)
    block = max(1, _BLOCK_BYTES // (4 * d))
    for start in range(0, n, block):
        stop = min(n, start + block)
        scaled = table.codes[start:stop].astype(np.float32) * scale32
        norms[start:stop] = (scaled.astype(np.float64) ** 2).sum(axis=1)
    return norms
