"""Quantized encoding codecs: int8 codes with lazy, gather-time decoding.

The dense float64 encodings are the memory wall at scale: the persistent
cache stores 8 bytes per dimension and the LSH working set mirrors that
resident. This module adds a codec tier in the PQ/IVF tradition —
candidate generation runs on compressed codes, and floats are rehydrated
only for the rows a consumer actually gathers (surviving pairs, ranked
candidates, hashed blocks).

Three pieces:

``Codec``
    The pluggable protocol: ``fit`` derives per-table parameters once,
    ``encode``/``decode`` map floats to codes and back. ``raw`` is the
    identity codec (the default — every pre-existing path is untouched),
    ``int8`` is per-dimension scale/zero-point scalar quantization, and
    ``pq`` is a registered stub for a future product-quantization tier.

``CodecArray``
    A lazy array: int8 codes plus affine parameters that decodes on
    ``__getitem__``. Fancy-indexing a ``CodecArray`` gathers *codes* and
    decodes only the gathered rows, so ``TableEncodings`` fields can hold
    one and the whole gather-then-reduce scoring engine rehydrates
    surviving pairs without materialising the full float store. Code-
    preserving structural ops (``take_rows``, ``row_slice``, ``reshape``,
    ``concat``) exist for the index/persist layers that must keep codes
    compressed end-to-end.

``asymmetric_sq_distances``
    Float-query × int8-table squared Euclidean distances via a de-scaled
    matmul: with ``x_i = c_i * s + o`` and ``q' = q - o``,

        ||q - x_i||^2 = ||q'||^2 - 2 (q' * s) . c_i + sum_j s_j^2 c_ij^2

    so the per-query work is one matvec against the code matrix (cast
    blockwise to float32, BLAS-friendly) plus a cached per-row norm term.

The quantize-once invariant: parameters are fitted at the first full
encode of a table and then *fixed*; appended or edited rows are encoded
with the existing parameters (clipped into range). Quantization error
therefore enters exactly once, codes from different chunks/generations
splice consistently, and disk round-trips are byte-identical.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Codec",
    "CodecArray",
    "CodecParams",
    "RawCodec",
    "ScalarQuantizer",
    "ProductQuantizer",
    "asymmetric_sq_distances",
    "available_codecs",
    "get_codec",
    "resolve_codec_name",
    "CODEC_ENV_VAR",
    "DEFAULT_CODEC",
]

CODEC_ENV_VAR = "REPRO_ENGINE_CODEC"
DEFAULT_CODEC = "raw"

# int8 code range. Symmetric [-127, 127] (−128 unused) so negation and
# midpoint arithmetic stay exact.
_QMIN = -127
_QMAX = 127
_QLEVELS = _QMAX - _QMIN  # 254 steps


class CodecParams:
    """Per-array affine quantization parameters.

    ``scale`` and ``offset`` carry the array's trailing shape (everything
    after the row axis) so ``codes * scale + offset`` broadcasts directly.
    JSON round-trips exactly: Python float repr is shortest-exact.
    """

    __slots__ = ("scale", "offset")

    def __init__(self, scale: np.ndarray, offset: np.ndarray) -> None:
        self.scale = np.asarray(scale, dtype=np.float64)
        self.offset = np.asarray(offset, dtype=np.float64)

    # -- serialization -------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "shape": [int(d) for d in self.scale.shape],
            "scale": [float(v) for v in self.scale.reshape(-1)],
            "offset": [float(v) for v in self.offset.reshape(-1)],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "CodecParams":
        shape = tuple(int(d) for d in payload["shape"])  # type: ignore[index]
        scale = np.asarray(payload["scale"], dtype=np.float64).reshape(shape)
        offset = np.asarray(payload["offset"], dtype=np.float64).reshape(shape)
        return cls(scale, offset)

    def reshaped(self, trailing_shape: Tuple[int, ...]) -> "CodecParams":
        return CodecParams(
            self.scale.reshape(trailing_shape), self.offset.reshape(trailing_shape)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CodecParams):
            return NotImplemented
        return (
            self.scale.shape == other.scale.shape
            and np.array_equal(self.scale, other.scale)
            and np.array_equal(self.offset, other.offset)
        )

    def __hash__(self) -> int:  # pragma: no cover - parity with __eq__
        return hash((self.scale.tobytes(), self.offset.tobytes(), self.scale.shape))


class CodecArray:
    """Int8 codes + affine params, decoding lazily on indexed access.

    ``a[idx]`` gathers codes and returns *decoded float64* for exactly the
    gathered rows — ndarray-compatible read semantics, so gather-based
    consumers (pair scoring, ranking, hashing a row block) work unchanged
    while the resident representation stays one byte per dimension.

    Structural operations that must stay compressed use explicit methods:
    ``take_rows`` / ``row_slice`` (code-preserving gathers), ``reshape``
    (row-count-preserving, for ``flat_mu``-style views), and ``concat``.
    ``__setitem__`` re-encodes float rows in place with the fixed params.
    """

    __slots__ = ("codes", "params", "on_decode")

    def __init__(
        self,
        codes: np.ndarray,
        params: CodecParams,
        on_decode=None,
    ) -> None:
        codes = np.asarray(codes)
        if codes.dtype != np.int8:
            raise TypeError(f"CodecArray codes must be int8, got {codes.dtype}")
        if params.scale.shape != codes.shape[1:]:
            params = params.reshaped(codes.shape[1:])
        self.codes = codes
        self.params = params
        self.on_decode = on_decode

    # -- ndarray-compatible surface ------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.codes.shape

    @property
    def ndim(self) -> int:
        return self.codes.ndim

    @property
    def dtype(self) -> np.dtype:
        # The *logical* dtype: what indexed reads produce.
        return np.dtype(np.float64)

    @property
    def nbytes(self) -> int:
        return int(
            self.codes.nbytes + self.params.scale.nbytes + self.params.offset.nbytes
        )

    def __len__(self) -> int:
        return int(self.codes.shape[0])

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        out = codes.astype(np.float64)
        out *= self.params.scale
        out += self.params.offset
        if self.on_decode is not None:
            self.on_decode(int(out.nbytes))
        return out

    def __getitem__(self, idx) -> np.ndarray:
        return self._decode(np.asarray(self.codes[idx]))

    def __setitem__(self, idx, values) -> None:
        self.codes[idx] = _encode_with(np.asarray(values, dtype=np.float64), self.params)

    def __array__(self, dtype=None) -> np.ndarray:
        full = self._decode(self.codes)
        return full if dtype is None else full.astype(dtype)

    def decode(self) -> np.ndarray:
        """Materialise the full float array (rarely wanted — prefer gathers)."""
        return self._decode(self.codes)

    # -- code-preserving structure -------------------------------------
    def take_rows(self, rows) -> "CodecArray":
        return CodecArray(self.codes[rows], self.params, on_decode=self.on_decode)

    def row_slice(self, start: int, stop: int) -> "CodecArray":
        return CodecArray(self.codes[start:stop], self.params, on_decode=self.on_decode)

    def reshape(self, *shape) -> "CodecArray":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        if not shape or shape[0] not in (len(self), -1):
            raise ValueError(
                f"CodecArray.reshape must preserve the row axis; got {shape}"
            )
        codes = self.codes.reshape((len(self),) + tuple(shape[1:]))
        return CodecArray(
            codes,
            CodecParams(
                self.params.scale.reshape(codes.shape[1:]),
                self.params.offset.reshape(codes.shape[1:]),
            ),
            on_decode=self.on_decode,
        )

    def encode_rows(self, values: np.ndarray) -> np.ndarray:
        """Quantize float rows with this array's fixed params (clipped)."""
        return _encode_with(np.asarray(values, dtype=np.float64), self.params)

    def concat_rows(self, values) -> "CodecArray":
        """Append rows (floats or a params-compatible CodecArray)."""
        if isinstance(values, CodecArray):
            if values.params != self.params:
                raise ValueError("cannot concat CodecArrays with different params")
            tail = values.codes
        else:
            tail = self.encode_rows(values)
        return CodecArray(
            np.concatenate([self.codes, tail], axis=0),
            self.params,
            on_decode=self.on_decode,
        )

    @classmethod
    def concat(cls, parts: Sequence["CodecArray"]) -> "CodecArray":
        if not parts:
            raise ValueError("concat of zero CodecArrays")
        head = parts[0]
        for part in parts[1:]:
            if part.params != head.params:
                raise ValueError("cannot concat CodecArrays with different params")
        return cls(
            np.concatenate([p.codes for p in parts], axis=0),
            head.params,
            on_decode=head.on_decode,
        )

    # -- pickling: drop the counter hook (process-local) ----------------
    def __getstate__(self):
        return {"codes": self.codes, "params": self.params}

    def __setstate__(self, state):
        # Bypass __init__ validation: state comes from a trusted pickle.
        object.__setattr__(self, "codes", state["codes"])
        object.__setattr__(self, "params", state["params"])
        object.__setattr__(self, "on_decode", None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CodecArray(shape={self.codes.shape}, nbytes={self.nbytes})"


def _encode_with(values: np.ndarray, params: CodecParams) -> np.ndarray:
    scaled = (values - params.offset) / params.scale
    np.rint(scaled, out=scaled)
    np.clip(scaled, _QMIN, _QMAX, out=scaled)
    return scaled.astype(np.int8)


# ----------------------------------------------------------------------
# Codec protocol + implementations
# ----------------------------------------------------------------------
class Codec:
    """Pluggable codec protocol.

    ``fit(values)`` derives per-table params from a full float array
    (quantize-once: call it exactly once per table/array, at the first
    full encode). ``encode`` wraps floats into the compressed resident
    form, ``decode`` rehydrates. The ``raw`` codec is the identity on
    plain ndarrays, so codec-agnostic code can call these unconditionally.
    """

    name: str = "abstract"
    is_identity: bool = False
    #: ``False`` marks a registered-but-unimplemented tier: the name stays
    #: resolvable for discovery (``available_codecs``), but selecting it —
    #: via flag or environment — fails at name-resolution time rather than
    #: deep inside the engine.
    usable: bool = True

    def fit(self, values: np.ndarray) -> Optional[CodecParams]:
        raise NotImplementedError

    def encode(self, values: np.ndarray, params: Optional[CodecParams], on_decode=None):
        raise NotImplementedError

    def decode(self, stored) -> np.ndarray:
        raise NotImplementedError


class RawCodec(Codec):
    """Identity codec: floats in, the same floats out. The default tier."""

    name = "raw"
    is_identity = True

    def fit(self, values: np.ndarray) -> Optional[CodecParams]:
        return None

    def encode(self, values: np.ndarray, params: Optional[CodecParams], on_decode=None):
        return values

    def decode(self, stored) -> np.ndarray:
        return np.asarray(stored)


class ScalarQuantizer(Codec):
    """Per-dimension int8 affine quantizer (scale + zero-point midpoint).

    Each trailing dimension gets ``scale = (max - min) / 254`` and
    ``offset = (max + min) / 2`` (the midpoint maps to code 0), so the
    worst-case absolute error per dimension is ``scale / 2`` — the
    epsilon the blocking-recall guarantee is pinned against. Constant
    (zero-range) dimensions get scale 1 and decode exactly.
    """

    name = "int8"

    def fit(self, values: np.ndarray) -> CodecParams:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim < 2:
            raise ValueError("ScalarQuantizer.fit expects a (rows, ...) array")
        trailing = values.shape[1:]
        if values.shape[0] == 0:
            return CodecParams(np.ones(trailing), np.zeros(trailing))
        vmin = values.min(axis=0)
        vmax = values.max(axis=0)
        span = vmax - vmin
        scale = span / float(_QLEVELS)
        flat = np.where(scale <= 0.0, 1.0, scale)
        offset = (vmax + vmin) / 2.0
        return CodecParams(flat, offset)

    def encode(
        self, values: np.ndarray, params: Optional[CodecParams], on_decode=None
    ) -> CodecArray:
        if params is None:
            params = self.fit(values)
        codes = _encode_with(np.asarray(values, dtype=np.float64), params)
        return CodecArray(codes, params, on_decode=on_decode)

    def decode(self, stored) -> np.ndarray:
        if isinstance(stored, CodecArray):
            return stored.decode()
        return np.asarray(stored)


class ProductQuantizer(Codec):
    """Product-quantization stub: registered so the name resolves, but the
    tier is not implemented yet. Selecting it raises with a pointer at the
    int8 tier, which covers the current memory targets."""

    name = "pq"
    usable = False

    def _unavailable(self) -> NotImplementedError:
        return NotImplementedError(
            "the 'pq' codec is a stub — use codec='int8' (scalar quantization)"
        )

    def fit(self, values: np.ndarray) -> CodecParams:
        raise self._unavailable()

    def encode(self, values, params, on_decode=None):
        raise self._unavailable()

    def decode(self, stored):
        raise self._unavailable()


_CODECS: Dict[str, Codec] = {
    RawCodec.name: RawCodec(),
    ScalarQuantizer.name: ScalarQuantizer(),
    ProductQuantizer.name: ProductQuantizer(),
}


def available_codecs() -> List[str]:
    return sorted(_CODECS)


def usable_codecs() -> List[str]:
    """Codec names that can actually encode today (stub tiers excluded)."""
    return sorted(name for name, codec in _CODECS.items() if codec.usable)


def get_codec(name: str) -> Codec:
    try:
        return _CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; available: {', '.join(available_codecs())}"
        ) from None


def resolve_codec_name(name: Optional[str] = None) -> str:
    """Resolve an explicit codec name, falling back to ``REPRO_ENGINE_CODEC``.

    Unset/empty/garbage environment values resolve to the raw default, the
    same forgiving posture as ``REPRO_ENGINE_WORKERS``.
    """
    if name:
        codec = get_codec(name)  # validate explicit choices loudly
        if not codec.usable:
            raise ValueError(
                f"codec {name!r} is a registered stub and cannot encode yet; "
                f"supported codecs: {', '.join(usable_codecs())}"
            )
        return name
    env = os.environ.get(CODEC_ENV_VAR, "").strip().lower()
    if env in _CODECS and _CODECS[env].usable:
        return env
    return DEFAULT_CODEC


# ----------------------------------------------------------------------
# Asymmetric distance kernel
# ----------------------------------------------------------------------
_BLOCK_BYTES = 1 << 22  # ~4 MiB of float32 per decode block


def asymmetric_sq_distances(
    query: np.ndarray,
    table: CodecArray,
    table_sq_norms: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Squared Euclidean distances from float queries to an int8 table.

    ``query`` is ``(d,)`` or ``(m, d)`` float; ``table`` is an ``(n, d)``
    :class:`CodecArray`. The kernel never materialises the decoded table:
    it shifts queries by the offset, folds the per-dimension scale into
    the query side, and runs a blockwise float32 matmul against the raw
    codes — the de-scaled-matmul identity

        ||q - (c s + o)||^2 = ||q - o||^2 - 2 ((q - o) s) . c + ||c s||^2.

    ``table_sq_norms`` (the ``||c s||^2`` term) can be precomputed with
    :func:`table_sq_norms` and cached across queries.
    """
    if table.ndim != 2:
        raise ValueError("asymmetric distances expect a 2-D code table")
    q = np.asarray(query, dtype=np.float64)
    squeeze = q.ndim == 1
    q = np.atleast_2d(q)
    scale = table.params.scale
    offset = table.params.offset
    shifted = q - offset  # (m, d)
    scaled_q = (shifted * scale).astype(np.float32)  # fold scale into query side
    if table_sq_norms is None:
        table_sq_norms = table_sq_norms_of(table)
    n = len(table)
    d = max(1, table.codes.shape[1])
    out = np.empty((q.shape[0], n), dtype=np.float64)
    block = max(1, _BLOCK_BYTES // (4 * d))
    for start in range(0, n, block):
        stop = min(n, start + block)
        codes_f32 = table.codes[start:stop].astype(np.float32)
        out[:, start:stop] = scaled_q @ codes_f32.T  # BLAS sgemm
    out *= -2.0
    out += (shifted * shifted).sum(axis=1)[:, None]
    out += table_sq_norms[None, :]
    np.maximum(out, 0.0, out=out)
    result = out[0] if squeeze else out
    return result


def table_sq_norms_of(table: CodecArray) -> np.ndarray:
    """Per-row ``||c * s||^2`` for the asymmetric kernel, computed blockwise."""
    if table.ndim != 2:
        raise ValueError("table norms expect a 2-D code table")
    n = len(table)
    d = max(1, table.codes.shape[1])
    scale32 = table.params.scale.astype(np.float32)
    norms = np.empty(n, dtype=np.float64)
    block = max(1, _BLOCK_BYTES // (4 * d))
    for start in range(0, n, block):
        stop = min(n, start + block)
        scaled = table.codes[start:stop].astype(np.float32) * scale32
        norms[start:stop] = (scaled.astype(np.float64) ** 2).sum(axis=1)
    return norms
