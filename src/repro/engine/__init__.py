"""Batched encoding engine shared by blocking, matching and active learning.

The engine layer owns *where encodings live* and *how the resolve path is
planned and executed*:

* :class:`EncodingStore` — keyed, invalidation-aware cache of per-table IR
  arrays and latent Gaussians, with vectorized gather-then-matmul pair
  featurisation and scoring;
* :class:`PersistentEncodingCache` — on-disk extension of the store's cache,
  row-range-chunked (``<task>/<side>-vN/chunk-<a>-<b>.npz`` + manifest) so
  warm loads are lazy per shard; legacy flat archives migrate on first read;
* :class:`ResolutionPlanner` / :class:`ResolutionExecutor` — the plan/execute
  core: a deterministic encode → block → score stage graph over row-range
  shards, run serially or across a *persistent* worker pool (fork-based with
  shared-memory state publishing, threaded where fork or shared memory is
  unavailable) with results merged deterministically by
  ``(batch_index, pair_index)``;
* :func:`resolve_stream` / :func:`resolve_sharded` — thin front-ends over
  that engine (single-process and pooled); byte-identical to each other;
* :class:`ShardedEncodingStore` — row-range shard views of the cached tables
  (zero-copy), with lazy per-shard loads from the chunked disk cache;
* :class:`DeltaResolutionExecutor` / :func:`resolve_delta` — incremental
  resolution against a :class:`ResolutionBaseline`: a row-identity diff
  (per-row CRCs keyed on stable record ids) classifies every current row as
  clean, dirty, appended or deleted, so only edited and appended rows are
  re-encoded (patch/tombstone chunk generations on disk), the LSH index is
  mutated in place (extend/remove/patch, compaction past a load threshold)
  and the matcher rescores only pairs the surviving baseline scores do not
  cover — with a match stream identical to a cold full resolve.

Batching, caching, persistence, sharding and scheduling decisions belong
here, not in the pipeline stages that consume the encodings.
"""

from repro.engine.persist import (
    DEFAULT_CHUNK_ROWS,
    CacheDelta,
    PersistentEncodingCache,
    RowDiff,
    TableDelta,
    close_chunk_handles,
    diff_rows,
    encoding_fingerprint,
    invalidate_chunk_handles,
    model_fingerprint,
    record_crc,
    row_range_crc,
    table_row_crcs,
)
from repro.engine.quant import (
    CodecArray,
    CodecParams,
    PQParams,
    ProductQuantizer,
    ScalarQuantizer,
    asymmetric_sq_distances,
    available_codecs,
    get_codec,
    params_from_json,
    resolve_codec_name,
    table_sq_norms_of,
    usable_codecs,
)
from repro.engine.plan import (
    DeltaBounds,
    DeltaResolutionExecutor,
    ResolutionBaseline,
    ResolutionExecutor,
    ResolutionPlan,
    ResolutionPlanner,
    Stage,
    StageUnit,
    build_index_sharded,
    resolve_delta,
    resolve_plan,
    sharded_candidate_pairs,
)
from repro.engine.shard import (
    DEFAULT_SHARD_ROWS,
    ShardBounds,
    ShardedEncodingStore,
    StateHandle,
    WorkerPool,
    acquire_pool,
    iter_sharded_candidate_batches,
    make_pool,
    merge_scored_batches,
    pool_kind_default,
    published_state,
    release_engine_resources,
    release_pool,
    resolve_sharded,
    shard_bounds_for,
    shutdown_pools,
)
from repro.engine.sharedmem import (
    StatePublication,
    StateSpec,
    attach_state,
    detach_all,
    publish_state,
    shared_memory_available,
)
from repro.engine.store import EncodingStore, TableEncodings, encode_table_rows
from repro.engine.stream import (
    ResolutionBatch,
    ScoredPairs,
    guard_store_version,
    iter_candidate_batches,
    pin_store_version,
    resolve_stream,
    stream_candidate_pairs,
)

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_SHARD_ROWS",
    "CacheDelta",
    "CodecArray",
    "CodecParams",
    "DeltaBounds",
    "DeltaResolutionExecutor",
    "EncodingStore",
    "PQParams",
    "PersistentEncodingCache",
    "ProductQuantizer",
    "ResolutionBaseline",
    "ResolutionBatch",
    "ResolutionExecutor",
    "ResolutionPlan",
    "ResolutionPlanner",
    "RowDiff",
    "ScalarQuantizer",
    "ScoredPairs",
    "ShardBounds",
    "ShardedEncodingStore",
    "Stage",
    "StageUnit",
    "StateHandle",
    "StatePublication",
    "StateSpec",
    "TableDelta",
    "TableEncodings",
    "WorkerPool",
    "acquire_pool",
    "asymmetric_sq_distances",
    "attach_state",
    "available_codecs",
    "get_codec",
    "params_from_json",
    "resolve_codec_name",
    "usable_codecs",
    "table_sq_norms_of",
    "build_index_sharded",
    "detach_all",
    "make_pool",
    "pool_kind_default",
    "publish_state",
    "published_state",
    "release_engine_resources",
    "release_pool",
    "shared_memory_available",
    "shutdown_pools",
    "close_chunk_handles",
    "diff_rows",
    "invalidate_chunk_handles",
    "encode_table_rows",
    "encoding_fingerprint",
    "guard_store_version",
    "iter_candidate_batches",
    "iter_sharded_candidate_batches",
    "merge_scored_batches",
    "model_fingerprint",
    "pin_store_version",
    "record_crc",
    "resolve_delta",
    "resolve_plan",
    "resolve_sharded",
    "resolve_stream",
    "row_range_crc",
    "table_row_crcs",
    "shard_bounds_for",
    "sharded_candidate_pairs",
    "stream_candidate_pairs",
]
