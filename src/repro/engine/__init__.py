"""Batched encoding engine shared by blocking, matching and active learning.

The engine layer owns *where encodings live* and *how pairs are scored*:

* :class:`EncodingStore` — keyed, invalidation-aware cache of per-table IR
  arrays and latent Gaussians, with vectorized gather-then-matmul pair
  featurisation and scoring;
* :func:`resolve_stream` / :func:`stream_candidate_pairs` — bounded-memory
  chunked resolution for tables larger than one scoring batch.

Batching, caching and (future) sharding decisions belong here, not in the
pipeline stages that consume the encodings.
"""

from repro.engine.store import EncodingStore, TableEncodings
from repro.engine.stream import (
    ResolutionBatch,
    ScoredPairs,
    resolve_stream,
    stream_candidate_pairs,
)

__all__ = [
    "EncodingStore",
    "TableEncodings",
    "ResolutionBatch",
    "ScoredPairs",
    "resolve_stream",
    "stream_candidate_pairs",
]
