"""Batched encoding engine shared by blocking, matching and active learning.

The engine layer owns *where encodings live* and *how pairs are scored*:

* :class:`EncodingStore` — keyed, invalidation-aware cache of per-table IR
  arrays and latent Gaussians, with vectorized gather-then-matmul pair
  featurisation and scoring;
* :class:`PersistentEncodingCache` — on-disk extension of the store's cache,
  keyed by ``(task, side, encoding_version)``, so repeated runs skip table
  encoding entirely;
* :func:`resolve_stream` / :func:`stream_candidate_pairs` — bounded-memory
  chunked resolution for tables larger than one scoring batch;
* :class:`ShardedEncodingStore` / :func:`resolve_sharded` — row-range shard
  views of the cached tables and multi-worker parallel scoring of the
  candidate stream, merged deterministically by ``(batch_index, pair_index)``.

Batching, caching, persistence and sharding decisions belong here, not in
the pipeline stages that consume the encodings.
"""

from repro.engine.persist import PersistentEncodingCache, encoding_fingerprint
from repro.engine.shard import (
    DEFAULT_SHARD_ROWS,
    ShardBounds,
    ShardedEncodingStore,
    iter_sharded_candidate_batches,
    merge_scored_batches,
    resolve_sharded,
)
from repro.engine.store import EncodingStore, TableEncodings
from repro.engine.stream import (
    ResolutionBatch,
    ScoredPairs,
    guard_store_version,
    iter_candidate_batches,
    pin_store_version,
    resolve_stream,
    stream_candidate_pairs,
)

__all__ = [
    "DEFAULT_SHARD_ROWS",
    "EncodingStore",
    "PersistentEncodingCache",
    "ResolutionBatch",
    "ScoredPairs",
    "ShardBounds",
    "ShardedEncodingStore",
    "TableEncodings",
    "encoding_fingerprint",
    "guard_store_version",
    "iter_candidate_batches",
    "iter_sharded_candidate_batches",
    "merge_scored_batches",
    "pin_store_version",
    "resolve_sharded",
    "resolve_stream",
    "stream_candidate_pairs",
]
