"""Persistent on-disk cache of table encodings.

The in-memory :class:`repro.engine.EncodingStore` already guarantees each
table is encoded at most once *per process*; this module extends that
guarantee *across* processes and runs.  A :class:`PersistentEncodingCache`
serialises :class:`~repro.engine.store.TableEncodings` to ``.npz`` archives
via the same :mod:`repro.nn.serialization` helpers used for model weights, so
a repeated ``resolve`` or harness run on the same task and representation
skips the IR transform and VAE forward pass entirely.

Cache-directory layout
----------------------
One subdirectory per task, one archive per (side, encoding version)::

    <cache_dir>/
        <task-name>/
            left-v3.npz
            right-v3.npz

Keying and invalidation rules
-----------------------------
Entries are keyed by ``(task.name, side, encoding_version)`` — the same
monotonic version token the in-memory store watches.  Because the token is
process-local, every archive additionally embeds a *fingerprint* of the
representation (IR method, dimensions, seed and a CRC of the VAE weights)
and of the table (record count and a CRC of its record ids and values).  A
load only succeeds when both the key and the fingerprint match; anything
else — missing file, foreign task, refit or differently-seeded model,
resized or edited table, corrupt archive — is a miss and falls back to
computing (and rewriting) the entry.  Bumping ``encoding_version``
therefore never serves stale encodings: the old archives simply stop being
addressed.
"""

from __future__ import annotations

import os
import struct
import zipfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

import numpy as np

from repro.nn.serialization import load_metadata, save_state_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.representation import EntityRepresentationModel
    from repro.data.schema import Table
    from repro.engine.store import TableEncodings

PathLike = Union[str, Path]

#: Bump when the on-disk archive layout changes; mismatching archives are
#: treated as misses, never as errors.
CACHE_FORMAT_VERSION = 1

_ARRAY_KEYS = ("irs", "mu", "sigma")


def _slug(name: str) -> str:
    """Filesystem-safe task directory name."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
    return safe or "task"


def encoding_fingerprint(representation: "EntityRepresentationModel", table: "Table") -> Dict[str, Any]:
    """Identity check binding an archive to the exact model and table state.

    The ``encoding_version`` key only covers changes *within* a process (it
    restarts from zero every run), so the fingerprint carries everything that
    determines what a record encodes to across processes:

    * the model architecture (IR method and dimensions) and training seed;
    * a CRC of the VAE weights — two models fitted with different seeds,
      epochs or data produce different weights and therefore different
      fingerprints, even though both sit at ``encoding_version == 1``;
    * a CRC of the table's record ids *and values* (renamed, resized or
      edited tables all miss).
    """
    state = representation.vae.state_dict()
    weights_crc = 0
    for name in sorted(state):
        weights_crc = zlib.crc32(name.encode("utf-8"), weights_crc)
        weights_crc = zlib.crc32(np.ascontiguousarray(state[name]).tobytes(), weights_crc)
    record_ids = table.record_ids()
    content_crc = 0
    for rid in record_ids:
        content_crc = zlib.crc32(str(rid).encode("utf-8"), content_crc)
        for value in table[rid].values:
            content_crc = zlib.crc32(value.encode("utf-8"), content_crc)
    return {
        "ir_method": representation.ir_method,
        "ir_dim": int(representation.config.ir_dim),
        "hidden_dim": int(representation.config.hidden_dim),
        "latent_dim": int(representation.config.latent_dim),
        "seed": int(representation.config.seed),
        "n_records": len(record_ids),
        "content_crc": int(content_crc),
        "weights_crc": int(weights_crc),
    }


class PersistentEncodingCache:
    """Directory-backed archive of table encodings.

    The cache is deliberately dumb storage: all counting (disk hits/misses,
    tables encoded) lives in the :class:`repro.engine.EncodingStore` that
    owns it, so one cache directory can be shared by many stores without
    entangling their instrumentation.
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    def path_for(self, task_name: str, side: str, encoding_version: int) -> Path:
        """Archive path of the ``(task, side, version)`` key."""
        return self.directory / _slug(task_name) / f"{side}-v{int(encoding_version)}.npz"

    def entries(self) -> List[Path]:
        """Every archive currently in the cache directory."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*/*.npz"))

    def clear(self) -> int:
        """Delete every archive; returns how many were removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        return removed

    # ------------------------------------------------------------------
    def save(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        encodings: "TableEncodings",
    ) -> Path:
        """Persist one table's encodings; returns the archive path."""
        path = self.path_for(task_name, side, encoding_version)
        metadata = {
            "format": CACHE_FORMAT_VERSION,
            "task": task_name,
            "side": side,
            "encoding_version": int(encoding_version),
            "fingerprint": fingerprint,
            "keys": [str(key) for key in encodings.keys],
        }
        state = {name: getattr(encodings, name) for name in _ARRAY_KEYS}
        # Write-then-rename so concurrent readers (shared cache dirs across
        # processes/nodes) never observe a half-written archive.  The temp
        # name keeps the .npz suffix (np.savez appends it otherwise) and the
        # pid so parallel writers of the same key cannot collide.
        temporary = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
        save_state_dict(state, temporary, metadata=metadata)
        os.replace(temporary, path)
        return path

    def load(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
    ) -> Optional["TableEncodings"]:
        """Load a matching entry, or ``None`` on any kind of miss.

        Corrupt or foreign archives are treated as misses rather than
        errors: a cache must never be able to fail a resolution run.
        """
        from repro.engine.store import TableEncodings

        path = self.path_for(task_name, side, encoding_version)
        if not path.is_file():
            return None
        try:
            metadata = load_metadata(path)
            if metadata is None or metadata.get("format") != CACHE_FORMAT_VERSION:
                return None
            if metadata.get("task") != task_name or metadata.get("side") != side:
                return None
            if int(metadata.get("encoding_version", -1)) != int(encoding_version):
                return None
            if metadata.get("fingerprint") != fingerprint:
                return None
            keys = tuple(metadata["keys"])
            with np.load(path, allow_pickle=False) as archive:
                arrays = {name: archive[name] for name in _ARRAY_KEYS}
        except (OSError, ValueError, KeyError, zlib.error, zipfile.BadZipFile, struct.error):
            # BadZipFile/struct.error cover truncated archives (killed
            # writer) whose zip header still looks plausible.
            return None
        if len(keys) != arrays["irs"].shape[0]:
            return None
        return TableEncodings(
            keys=keys,
            irs=arrays["irs"],
            mu=arrays["mu"],
            sigma=arrays["sigma"],
            row_index={key: row for row, key in enumerate(keys)},
        )

    def __repr__(self) -> str:
        return f"PersistentEncodingCache({str(self.directory)!r}, entries={len(self.entries())})"
