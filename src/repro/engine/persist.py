"""Persistent on-disk cache of table encodings, chunked by row range.

The in-memory :class:`repro.engine.EncodingStore` already guarantees each
table is encoded at most once *per process*; this module extends that
guarantee *across* processes and runs.  A :class:`PersistentEncodingCache`
serialises :class:`~repro.engine.store.TableEncodings` to row-range-chunked
``.npz`` archives via the same :mod:`repro.nn.serialization` helpers used for
model weights, so a repeated ``resolve`` or harness run on the same task and
representation skips the IR transform and VAE forward pass entirely — and a
consumer that only needs one row-range shard of a huge table reads only the
chunks covering it instead of the whole archive.

Cache-directory layout
----------------------
One subdirectory per task, one *chunk directory* per (side, encoding
version), holding a JSON manifest plus one archive per row-range chunk::

    <cache_dir>/
        <task-name>/
            left-v3/
                manifest.json
                chunk-0-2048.npz
                chunk-2048-4096.npz
                ...
            right-v3/
                ...

The manifest is written last (write-then-rename), so its presence marks a
complete entry; readers that find a manifest referencing a missing or
corrupt chunk treat the whole entry as a miss.  The flat single-archive
layout of earlier versions (``<task>/<side>-vN.npz``) remains readable: the
first load that finds one migrates it to the chunked layout in place
(one-shot) and removes the flat archive.

Keying and invalidation rules
-----------------------------
Entries are keyed by ``(task.name, side, encoding_version)`` — the same
monotonic version token the in-memory store watches.  Because the token is
process-local, every manifest additionally embeds a *fingerprint* of the
representation (IR method, dimensions, seed and a CRC of the VAE weights)
and of the table (record count and a CRC of its record ids and values).  A
load only succeeds when both the key and the fingerprint match; anything
else — missing manifest, foreign task, refit or differently-seeded model,
resized or edited table, corrupt or missing chunk, stale manifest — is a
miss and falls back to computing (and rewriting) the entry.  Bumping
``encoding_version`` therefore never serves stale encodings: the old
entries simply stop being addressed.

Lazy loads and memory mapping
-----------------------------
:meth:`PersistentEncodingCache.load_range` reads only the chunks overlapping
a ``[start, stop)`` row range — the warm-load path for row-range-sharded
consumers.  With ``mmap_mode`` set, chunk arrays are memory-mapped straight
out of the (uncompressed) ``.npz`` members instead of copied into RAM; the
mapping degrades silently to an eager read where it cannot apply.  Chunk
reads are reported through the ``chunk_loads`` counter of whatever
:class:`~repro.eval.timing.EngineCounters` the caller passes in.
"""

from __future__ import annotations

import json
import os
import struct
import zipfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.nn.serialization import load_metadata, save_state_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.representation import EntityRepresentationModel
    from repro.data.schema import Table
    from repro.engine.store import TableEncodings
    from repro.eval.timing import EngineCounters

PathLike = Union[str, Path]

#: Bump when the on-disk layout changes; mismatching entries are treated as
#: misses, never as errors.  Version 2 is the chunked manifest layout.
CACHE_FORMAT_VERSION = 2

#: Format tag of the legacy flat single-archive layout (read for migration).
FLAT_FORMAT_VERSION = 1

#: Default rows per chunk archive.
DEFAULT_CHUNK_ROWS = 2048

MANIFEST_NAME = "manifest.json"

_ARRAY_KEYS = ("irs", "mu", "sigma")

_LOAD_ERRORS = (OSError, ValueError, KeyError, TypeError, zlib.error, zipfile.BadZipFile, struct.error)


def _slug(name: str) -> str:
    """Filesystem-safe task directory name."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
    return safe or "task"


def encoding_fingerprint(representation: "EntityRepresentationModel", table: "Table") -> Dict[str, Any]:
    """Identity check binding an entry to the exact model and table state.

    The ``encoding_version`` key only covers changes *within* a process (it
    restarts from zero every run), so the fingerprint carries everything that
    determines what a record encodes to across processes:

    * the model architecture (IR method and dimensions) and training seed;
    * a CRC of the VAE weights — two models fitted with different seeds,
      epochs or data produce different weights and therefore different
      fingerprints, even though both sit at ``encoding_version == 1``;
    * a CRC of the table's record ids *and values* (renamed, resized or
      edited tables all miss).
    """
    state = representation.vae.state_dict()
    weights_crc = 0
    for name in sorted(state):
        weights_crc = zlib.crc32(name.encode("utf-8"), weights_crc)
        weights_crc = zlib.crc32(np.ascontiguousarray(state[name]).tobytes(), weights_crc)
    record_ids = table.record_ids()
    content_crc = 0
    for rid in record_ids:
        content_crc = zlib.crc32(str(rid).encode("utf-8"), content_crc)
        for value in table[rid].values:
            content_crc = zlib.crc32(value.encode("utf-8"), content_crc)
    return {
        "ir_method": representation.ir_method,
        "ir_dim": int(representation.config.ir_dim),
        "hidden_dim": int(representation.config.hidden_dim),
        "latent_dim": int(representation.config.latent_dim),
        "seed": int(representation.config.seed),
        "n_records": len(record_ids),
        "content_crc": int(content_crc),
        "weights_crc": int(weights_crc),
    }


def _mmap_npz_arrays(path: Path, names: Tuple[str, ...], mmap_mode: str) -> Dict[str, np.ndarray]:
    """Memory-map uncompressed ``.npy`` members straight out of a zip archive.

    ``np.load`` silently ignores ``mmap_mode`` for ``.npz`` files, so this
    locates each member's data offset (local header + npy header) by hand
    and hands it to :class:`numpy.memmap`.  Raises on anything unexpected —
    compressed members, object arrays, foreign npy versions — and the caller
    falls back to an eager read.
    """
    from numpy.lib import format as npy_format

    with zipfile.ZipFile(path) as archive:
        infos = [(name, archive.getinfo(name + ".npy")) for name in names]
    arrays: Dict[str, np.ndarray] = {}
    with open(path, "rb") as handle:
        for name, info in infos:
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError("compressed archive member cannot be memory-mapped")
            handle.seek(info.header_offset)
            local_header = handle.read(30)
            if local_header[:4] != b"PK\x03\x04":
                raise ValueError("malformed local file header")
            name_length = int.from_bytes(local_header[26:28], "little")
            extra_length = int.from_bytes(local_header[28:30], "little")
            handle.seek(info.header_offset + 30 + name_length + extra_length)
            version = npy_format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = npy_format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = npy_format.read_array_header_2_0(handle)
            else:
                raise ValueError(f"unsupported npy format version {version}")
            if dtype.hasobject:
                raise ValueError("object arrays cannot be memory-mapped")
            arrays[name] = np.memmap(
                path,
                dtype=dtype,
                mode=mmap_mode,
                offset=handle.tell(),
                shape=shape,
                order="F" if fortran else "C",
            )
    return arrays


class PersistentEncodingCache:
    """Directory-backed, row-range-chunked archive of table encodings.

    The cache is deliberately dumb storage: all counting (disk hits/misses,
    tables encoded, chunk loads) lives in the
    :class:`~repro.eval.timing.EngineCounters` callers pass into the load
    methods, so one cache directory can be shared by many stores without
    entangling their instrumentation.

    Parameters
    ----------
    directory:
        Root of the cache tree.
    chunk_rows:
        Rows per chunk archive written by :meth:`save`; the last chunk of a
        table may be short.  Readers honour whatever chunking the manifest
        records, so caches written with different ``chunk_rows`` interoperate.
    mmap_mode:
        When set (e.g. ``"r"``), loaded chunk arrays are memory-mapped from
        the archives instead of read into RAM, where the archive permits it.
    """

    def __init__(
        self,
        directory: PathLike,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        mmap_mode: Optional[str] = None,
    ) -> None:
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        if mmap_mode not in (None, "r", "c"):
            # "r+" would let consumers write through to the shared cache and
            # "w+" would truncate chunks on open; only read-only ("r") and
            # copy-on-write ("c") mappings are safe for a cache.
            raise ValueError(f"mmap_mode must be None, 'r' or 'c', got {mmap_mode!r}")
        self.directory = Path(directory)
        self.chunk_rows = chunk_rows
        self.mmap_mode = mmap_mode

    # ------------------------------------------------------------------
    # Paths and layout
    # ------------------------------------------------------------------
    def dir_for(self, task_name: str, side: str, encoding_version: int) -> Path:
        """Chunk directory of the ``(task, side, version)`` key."""
        return self.directory / _slug(task_name) / f"{side}-v{int(encoding_version)}"

    def manifest_path(self, task_name: str, side: str, encoding_version: int) -> Path:
        """Manifest path of the ``(task, side, version)`` key."""
        return self.dir_for(task_name, side, encoding_version) / MANIFEST_NAME

    def chunk_path(self, task_name: str, side: str, encoding_version: int, start: int, stop: int) -> Path:
        """Archive path of one row-range chunk."""
        return self.dir_for(task_name, side, encoding_version) / f"chunk-{int(start)}-{int(stop)}.npz"

    def flat_path_for(self, task_name: str, side: str, encoding_version: int) -> Path:
        """Archive path the legacy flat layout used (migration read path)."""
        return self.directory / _slug(task_name) / f"{side}-v{int(encoding_version)}.npz"

    def entries(self) -> List[Path]:
        """Every logical entry: chunked-layout manifests plus legacy archives."""
        if not self.directory.is_dir():
            return []
        manifests = list(self.directory.glob(f"*/*/{MANIFEST_NAME}"))
        flats = list(self.directory.glob("*/*.npz"))
        return sorted(manifests + flats)

    def clear(self) -> int:
        """Delete every entry; returns how many logical entries were removed."""
        removed = 0
        for entry in self.entries():
            removed += 1
            if entry.name == MANIFEST_NAME:
                chunk_dir = entry.parent
                for chunk in chunk_dir.glob("*.npz"):
                    chunk.unlink()
                entry.unlink()
                try:
                    chunk_dir.rmdir()
                except OSError:  # pragma: no cover - foreign files left behind
                    pass
            else:
                entry.unlink()
        return removed

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        encodings: "TableEncodings",
    ) -> Path:
        """Persist one table's encodings in row-range chunks; returns the manifest path.

        Chunks are written first (write-then-rename each), the manifest last,
        so concurrent readers (shared cache dirs across processes/nodes)
        never observe a partial entry: either the manifest is present and
        every chunk it references is complete, or the entry misses.
        """
        chunk_dir = self.dir_for(task_name, side, encoding_version)
        chunk_dir.mkdir(parents=True, exist_ok=True)
        n = len(encodings)
        bounds = [
            (start, min(start + self.chunk_rows, n))
            for start in range(0, n, self.chunk_rows)
        ]
        for start, stop in bounds:
            path = self.chunk_path(task_name, side, encoding_version, start, stop)
            # The fingerprint rides in every chunk, not just the manifest:
            # concurrent writers of the same key (e.g. differently-seeded
            # models at the same version) overwrite chunk paths in place, so
            # a reader holding the *other* writer's manifest must be able to
            # reject a foreign chunk instead of mixing encodings.
            metadata = {
                "format": CACHE_FORMAT_VERSION,
                "task": task_name,
                "side": side,
                "encoding_version": int(encoding_version),
                "fingerprint": fingerprint,
                "start": start,
                "stop": stop,
            }
            state = {name: getattr(encodings, name)[start:stop] for name in _ARRAY_KEYS}
            # The temp name keeps the .npz suffix (np.savez appends it
            # otherwise) and the pid so parallel writers cannot collide.
            temporary = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
            save_state_dict(state, temporary, metadata=metadata)
            os.replace(temporary, path)
        manifest = {
            "format": CACHE_FORMAT_VERSION,
            "task": task_name,
            "side": side,
            "encoding_version": int(encoding_version),
            "fingerprint": fingerprint,
            "keys": [str(key) for key in encodings.keys],
            "chunk_rows": int(self.chunk_rows),
            "chunks": [[start, stop] for start, stop in bounds],
            "shapes": {name: list(getattr(encodings, name).shape) for name in _ARRAY_KEYS},
        }
        manifest_path = self.manifest_path(task_name, side, encoding_version)
        temporary = manifest_path.with_name(f".{MANIFEST_NAME}.{os.getpid()}.tmp")
        temporary.write_text(json.dumps(manifest))
        os.replace(temporary, manifest_path)
        return manifest_path

    def save_flat(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        encodings: "TableEncodings",
    ) -> Path:
        """Write an entry in the *legacy* flat single-archive layout.

        Retained so migration can be exercised end to end (tests, and the
        flat-vs-chunked load benchmark); new entries always go through
        :meth:`save`.
        """
        path = self.flat_path_for(task_name, side, encoding_version)
        metadata = {
            "format": FLAT_FORMAT_VERSION,
            "task": task_name,
            "side": side,
            "encoding_version": int(encoding_version),
            "fingerprint": fingerprint,
            "keys": [str(key) for key in encodings.keys],
        }
        state = {name: getattr(encodings, name) for name in _ARRAY_KEYS}
        temporary = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
        save_state_dict(state, temporary, metadata=metadata)
        os.replace(temporary, path)
        return path

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        counters: Optional["EngineCounters"] = None,
    ) -> Optional["TableEncodings"]:
        """Load a matching entry in full, or ``None`` on any kind of miss.

        Corrupt or foreign entries are treated as misses rather than errors:
        a cache must never be able to fail a resolution run.  A legacy flat
        archive found under the key is migrated to the chunked layout on the
        way through.
        """
        manifest = self._read_manifest(task_name, side, encoding_version, fingerprint)
        if manifest is not None:
            n = len(manifest["keys"])
            return self._load_rows(manifest, task_name, side, encoding_version, 0, n, counters)
        return self._migrate_flat(task_name, side, encoding_version, fingerprint)

    def load_range(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        start: int,
        stop: int,
        counters: Optional["EngineCounters"] = None,
    ) -> Optional["TableEncodings"]:
        """Load only the rows ``[start, stop)`` of a matching entry.

        Reads just the chunks overlapping the range — the lazy warm path for
        row-range-sharded consumers.  Row indices in the returned encodings
        are local to the range (0-based), mirroring
        :meth:`repro.engine.shard.ShardedEncodingStore.table_shard` views.
        Returns ``None`` on any miss, exactly like :meth:`load`.
        """
        if start < 0 or stop < start:
            raise ValueError(f"invalid row range [{start}, {stop})")
        manifest = self._read_manifest(task_name, side, encoding_version, fingerprint)
        if manifest is not None:
            stop = min(stop, len(manifest["keys"]))
            return self._load_rows(manifest, task_name, side, encoding_version, start, stop, counters)
        migrated = self._migrate_flat(task_name, side, encoding_version, fingerprint)
        if migrated is None:
            return None
        return _slice_encodings(migrated, start, min(stop, len(migrated)))

    # ------------------------------------------------------------------
    def _read_manifest(
        self, task_name: str, side: str, encoding_version: int, fingerprint: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """The validated manifest of a key, or ``None`` on any mismatch."""
        path = self.manifest_path(task_name, side, encoding_version)
        if not path.is_file():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(manifest, dict):
            return None
        if manifest.get("format") != CACHE_FORMAT_VERSION:
            return None
        if manifest.get("task") != task_name or manifest.get("side") != side:
            return None
        try:
            if int(manifest.get("encoding_version", -1)) != int(encoding_version):
                return None
        except (TypeError, ValueError):
            return None
        if manifest.get("fingerprint") != fingerprint:
            return None
        keys = manifest.get("keys")
        chunks = manifest.get("chunks")
        shapes = manifest.get("shapes")
        if not isinstance(keys, list) or not isinstance(chunks, list) or not isinstance(shapes, dict):
            return None
        if set(shapes) != set(_ARRAY_KEYS):
            return None
        # Chunks must tile [0, n) contiguously and in order — anything else
        # (hand-edited manifest, mixed-up files) is a stale manifest: miss.
        position = 0
        for chunk in chunks:
            if not (isinstance(chunk, list) and len(chunk) == 2):
                return None
            chunk_start, chunk_stop = chunk
            if chunk_start != position or chunk_stop <= chunk_start:
                return None
            position = chunk_stop
        if position != len(keys):
            return None
        return manifest

    def _load_rows(
        self,
        manifest: Dict[str, Any],
        task_name: str,
        side: str,
        encoding_version: int,
        start: int,
        stop: int,
        counters: Optional["EngineCounters"],
    ) -> Optional["TableEncodings"]:
        """Materialise rows ``[start, stop)`` from the chunks covering them."""
        from repro.engine.store import TableEncodings

        keys = tuple(manifest["keys"][start:stop])
        if start >= stop:
            shapes = manifest["shapes"]
            empty = {name: np.zeros([0] + [int(d) for d in shapes[name][1:]]) for name in _ARRAY_KEYS}
            return TableEncodings(keys=keys, row_index={}, **empty)
        covering = [
            (int(chunk_start), int(chunk_stop))
            for chunk_start, chunk_stop in manifest["chunks"]
            if chunk_start < stop and chunk_stop > start
        ]
        pieces: Dict[str, List[np.ndarray]] = {name: [] for name in _ARRAY_KEYS}
        fingerprint = manifest["fingerprint"]
        for chunk_start, chunk_stop in covering:
            arrays = self._read_chunk(
                task_name, side, encoding_version, fingerprint, chunk_start, chunk_stop
            )
            if arrays is None:
                return None
            if counters is not None:
                counters.record_chunk_load()
            lo = max(start, chunk_start) - chunk_start
            hi = min(stop, chunk_stop) - chunk_start
            for name in _ARRAY_KEYS:
                if arrays[name].shape[0] != chunk_stop - chunk_start:
                    return None
                pieces[name].append(arrays[name][lo:hi])
        merged = {
            # A range served by a single chunk stays a zero-copy (possibly
            # memory-mapped) view; multi-chunk ranges concatenate.
            name: parts[0] if len(parts) == 1 else np.concatenate(parts)
            for name, parts in pieces.items()
        }
        if merged["irs"].shape[0] != len(keys):
            return None
        return TableEncodings(
            keys=keys,
            irs=merged["irs"],
            mu=merged["mu"],
            sigma=merged["sigma"],
            row_index={key: row for row, key in enumerate(keys)},
        )

    def _read_chunk(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        start: int,
        stop: int,
    ) -> Optional[Dict[str, np.ndarray]]:
        """One chunk's arrays, validated against its embedded metadata."""
        path = self.chunk_path(task_name, side, encoding_version, start, stop)
        if not path.is_file():
            return None
        try:
            metadata = load_metadata(path)
            if metadata is None or metadata.get("format") != CACHE_FORMAT_VERSION:
                return None
            if metadata.get("task") != task_name or metadata.get("side") != side:
                return None
            if metadata.get("fingerprint") != fingerprint:
                return None
            if int(metadata.get("start", -1)) != start or int(metadata.get("stop", -1)) != stop:
                return None
            if self.mmap_mode:
                try:
                    return _mmap_npz_arrays(path, _ARRAY_KEYS, self.mmap_mode)
                except _LOAD_ERRORS:
                    pass  # degrade to an eager read of the same chunk
            with np.load(path, allow_pickle=False) as archive:
                return {name: archive[name] for name in _ARRAY_KEYS}
        except _LOAD_ERRORS:
            # BadZipFile/struct.error cover truncated archives (killed
            # writer) whose zip header still looks plausible.
            return None

    # ------------------------------------------------------------------
    # Legacy flat layout: one-shot migration read path
    # ------------------------------------------------------------------
    def _migrate_flat(
        self, task_name: str, side: str, encoding_version: int, fingerprint: Dict[str, Any]
    ) -> Optional["TableEncodings"]:
        """Serve a legacy flat archive, rewriting it as a chunked entry."""
        encodings = self._load_flat(task_name, side, encoding_version, fingerprint)
        if encodings is None:
            return None
        self.save(task_name, side, encoding_version, fingerprint, encodings)
        try:
            self.flat_path_for(task_name, side, encoding_version).unlink()
        except OSError:  # pragma: no cover - concurrent migration already removed it
            pass
        return encodings

    def _load_flat(
        self, task_name: str, side: str, encoding_version: int, fingerprint: Dict[str, Any]
    ) -> Optional["TableEncodings"]:
        """Reader for the pre-chunking single-archive layout."""
        from repro.engine.store import TableEncodings

        path = self.flat_path_for(task_name, side, encoding_version)
        if not path.is_file():
            return None
        try:
            metadata = load_metadata(path)
            if metadata is None or metadata.get("format") != FLAT_FORMAT_VERSION:
                return None
            if metadata.get("task") != task_name or metadata.get("side") != side:
                return None
            if int(metadata.get("encoding_version", -1)) != int(encoding_version):
                return None
            if metadata.get("fingerprint") != fingerprint:
                return None
            keys = tuple(metadata["keys"])
            with np.load(path, allow_pickle=False) as archive:
                arrays = {name: archive[name] for name in _ARRAY_KEYS}
        except _LOAD_ERRORS:
            return None
        if len(keys) != arrays["irs"].shape[0]:
            return None
        return TableEncodings(
            keys=keys,
            irs=arrays["irs"],
            mu=arrays["mu"],
            sigma=arrays["sigma"],
            row_index={key: row for row, key in enumerate(keys)},
        )

    def __repr__(self) -> str:
        return (
            f"PersistentEncodingCache({str(self.directory)!r}, "
            f"chunk_rows={self.chunk_rows}, entries={len(self.entries())})"
        )


def _slice_encodings(encodings: "TableEncodings", start: int, stop: int) -> "TableEncodings":
    """Row-range view of in-memory encodings with a local row index."""
    from repro.engine.store import TableEncodings

    keys = encodings.keys[start:stop]
    return TableEncodings(
        keys=keys,
        irs=encodings.irs[start:stop],
        mu=encodings.mu[start:stop],
        sigma=encodings.sigma[start:stop],
        row_index={key: row for row, key in enumerate(keys)},
    )
