"""Persistent on-disk cache of table encodings, chunked by row range.

The in-memory :class:`repro.engine.EncodingStore` already guarantees each
table is encoded at most once *per process*; this module extends that
guarantee *across* processes and runs.  A :class:`PersistentEncodingCache`
serialises :class:`~repro.engine.store.TableEncodings` to row-range-chunked
``.npz`` archives via the same :mod:`repro.nn.serialization` helpers used for
model weights, so a repeated ``resolve`` or harness run on the same task and
representation skips the IR transform and VAE forward pass entirely — and a
consumer that only needs one row-range shard of a huge table reads only the
chunks covering it instead of the whole archive.

Cache-directory layout
----------------------
One subdirectory per task, one *chunk directory* per (side, encoding
version), holding a JSON manifest plus one archive per row-range chunk::

    <cache_dir>/
        <task-name>/
            left-v3/
                manifest.json
                chunk-0-2048.npz
                chunk-2048-4096.npz
                ...
            right-v3/
                ...

The manifest is written last (write-then-rename), so its presence marks a
complete entry; readers that find a manifest referencing a missing or
corrupt chunk treat the whole entry as a miss.  The flat single-archive
layout of earlier versions (``<task>/<side>-vN.npz``) remains readable: the
first load that finds one migrates it to the chunked layout in place
(one-shot) and removes the flat archive.

Keying and invalidation rules
-----------------------------
Entries are keyed by ``(task.name, side, encoding_version)`` — the same
monotonic version token the in-memory store watches.  Because the token is
process-local, every manifest additionally embeds a *fingerprint* with two
parts: a **model** fingerprint (IR method, dimensions, seed and a CRC of the
VAE weights) and a **table** identity (record count plus a whole-table CRC
of record ids and values).  A full load only succeeds when both the key and
the complete fingerprint match; anything else — missing manifest, foreign
task, refit or differently-seeded model, resized or edited table, corrupt
or missing chunk, stale manifest — is a miss.  Bumping ``encoding_version``
therefore never serves stale encodings: the old entries simply stop being
addressed.

Content-addressed chunks and delta detection
--------------------------------------------
The table half of the fingerprint is additionally recorded *per chunk*:
every manifest chunk entry is ``[start, stop, row_crc]`` where ``row_crc``
covers exactly the record ids and values of rows ``[start, stop)``, and the
same CRC rides in the chunk archive's metadata.  A grown table therefore no
longer misses globally: :meth:`PersistentEncodingCache.delta` walks the
manifest chunks against the *current* table and reports the longest valid
prefix — "old chunks valid, tail rows new".  The store encodes only the
tail and calls :meth:`PersistentEncodingCache.extend`, which appends new
chunk archives and rewrites the manifest last, so concurrent readers see
either the old complete entry or the new one, never a torn state.  Chunk
validation uses the model fingerprint plus the chunk's own ``row_crc`` (not
the whole-table CRC), which is what keeps old chunks addressable after an
append changes the table-level fingerprint.

Lazy loads and memory mapping
-----------------------------
:meth:`PersistentEncodingCache.load_range` reads only the chunks overlapping
a ``[start, stop)`` row range — the warm-load path for row-range-sharded
consumers.  With ``mmap_mode`` set, chunk arrays are memory-mapped straight
out of the (uncompressed) ``.npz`` members instead of copied into RAM; the
mapping degrades silently to an eager read where it cannot apply.  Chunk
reads are reported through the ``chunk_loads`` counter of whatever
:class:`~repro.eval.timing.EngineCounters` the caller passes in.
"""

from __future__ import annotations

import json
import os
import struct
import zipfile
import zlib
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.serialization import load_metadata, save_state_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.representation import EntityRepresentationModel
    from repro.data.schema import Table
    from repro.engine.store import TableEncodings
    from repro.eval.timing import EngineCounters

PathLike = Union[str, Path]

#: Bump when the on-disk layout changes; mismatching entries are treated as
#: misses, never as errors.  Version 3 adds per-chunk content CRCs to the
#: manifest (version 2 was the chunked layout without them).
CACHE_FORMAT_VERSION = 3

#: Format tag of the legacy flat single-archive layout (read for migration).
FLAT_FORMAT_VERSION = 1

#: Default rows per chunk archive.
DEFAULT_CHUNK_ROWS = 2048

MANIFEST_NAME = "manifest.json"

_ARRAY_KEYS = ("irs", "mu", "sigma")

_LOAD_ERRORS = (OSError, ValueError, KeyError, TypeError, zlib.error, zipfile.BadZipFile, struct.error)


def _slug(name: str) -> str:
    """Filesystem-safe task directory name."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
    return safe or "task"


def model_fingerprint(representation: "EntityRepresentationModel") -> Dict[str, Any]:
    """The model half of an entry's identity.

    The ``encoding_version`` key only covers changes *within* a process (it
    restarts from zero every run), so the fingerprint carries everything that
    determines what a record encodes to across processes: the architecture
    (IR method and dimensions), the training seed, and a CRC of the VAE
    weights — two models fitted with different seeds, epochs or data produce
    different weights and therefore different fingerprints, even though both
    sit at ``encoding_version == 1``.
    """
    state = representation.vae.state_dict()
    weights_crc = 0
    for name in sorted(state):
        weights_crc = zlib.crc32(name.encode("utf-8"), weights_crc)
        weights_crc = zlib.crc32(np.ascontiguousarray(state[name]).tobytes(), weights_crc)
    return {
        "ir_method": representation.ir_method,
        "ir_dim": int(representation.config.ir_dim),
        "hidden_dim": int(representation.config.hidden_dim),
        "latent_dim": int(representation.config.latent_dim),
        "seed": int(representation.config.seed),
        "weights_crc": int(weights_crc),
    }


def row_range_crc(table: "Table", start: int, stop: int) -> int:
    """CRC of the record ids *and values* of rows ``[start, stop)``.

    The content-addressing primitive of the chunked cache: each chunk's CRC
    covers exactly its own row range (restarting from zero), so appending
    rows to a table leaves every existing chunk's CRC — and therefore its
    on-disk archive — valid.  Iterates the table in place (``islice`` over
    its record order) rather than copying the record list, since the delta
    probe calls this once per chunk.
    """
    crc = 0
    for record in islice(iter(table), start, stop):
        crc = zlib.crc32(str(record.record_id).encode("utf-8"), crc)
        for value in record.values:
            crc = zlib.crc32(value.encode("utf-8"), crc)
    return int(crc)


def _keys_crc(keys: Sequence[object]) -> int:
    """Fallback chunk CRC over record keys alone.

    Used when :meth:`PersistentEncodingCache.save` is handed encodings with
    no backing table (synthetic benchmark entries).  Never matches a real
    :func:`row_range_crc`, so such entries serve full loads but are opaque
    to delta detection — the safe degradation.
    """
    crc = zlib.crc32(b"keys-only")
    for key in keys:
        crc = zlib.crc32(str(key).encode("utf-8"), crc)
    return int(crc)


def encoding_fingerprint(representation: "EntityRepresentationModel", table: "Table") -> Dict[str, Any]:
    """Identity check binding an entry to the exact model and table state.

    Two parts: the nested ``model`` fingerprint (see :func:`model_fingerprint`)
    and the table identity — record count plus a whole-table CRC of record
    ids and values (renamed, resized or edited tables all miss a full load;
    *grown* tables are recovered chunk-wise via
    :meth:`PersistentEncodingCache.delta`).
    """
    n = len(table)
    return {
        "model": model_fingerprint(representation),
        "n_records": int(n),
        "content_crc": row_range_crc(table, 0, n),
    }


@dataclass(frozen=True)
class CacheDelta:
    """Result of probing a cache entry against a (possibly grown) table.

    ``base_rows`` is the longest prefix of the current table whose chunks
    are all present and content-valid on disk; ``total_rows`` is the current
    table size.  ``manifest`` is the validated manifest the prefix can be
    served from (:meth:`PersistentEncodingCache.load_prefix`) and extended
    against (:meth:`PersistentEncodingCache.extend`).
    """

    manifest: Dict[str, Any]
    base_rows: int
    total_rows: int

    @property
    def new_rows(self) -> int:
        return self.total_rows - self.base_rows


def _mmap_npz_arrays(path: Path, names: Tuple[str, ...], mmap_mode: str) -> Dict[str, np.ndarray]:
    """Memory-map uncompressed ``.npy`` members straight out of a zip archive.

    ``np.load`` silently ignores ``mmap_mode`` for ``.npz`` files, so this
    locates each member's data offset (local header + npy header) by hand
    and hands it to :class:`numpy.memmap`.  Raises on anything unexpected —
    compressed members, object arrays, foreign npy versions — and the caller
    falls back to an eager read.
    """
    from numpy.lib import format as npy_format

    with zipfile.ZipFile(path) as archive:
        infos = [(name, archive.getinfo(name + ".npy")) for name in names]
    arrays: Dict[str, np.ndarray] = {}
    with open(path, "rb") as handle:
        for name, info in infos:
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError("compressed archive member cannot be memory-mapped")
            handle.seek(info.header_offset)
            local_header = handle.read(30)
            if local_header[:4] != b"PK\x03\x04":
                raise ValueError("malformed local file header")
            name_length = int.from_bytes(local_header[26:28], "little")
            extra_length = int.from_bytes(local_header[28:30], "little")
            handle.seek(info.header_offset + 30 + name_length + extra_length)
            version = npy_format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = npy_format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = npy_format.read_array_header_2_0(handle)
            else:
                raise ValueError(f"unsupported npy format version {version}")
            if dtype.hasobject:
                raise ValueError("object arrays cannot be memory-mapped")
            arrays[name] = np.memmap(
                path,
                dtype=dtype,
                mode=mmap_mode,
                offset=handle.tell(),
                shape=shape,
                order="F" if fortran else "C",
            )
    return arrays


class PersistentEncodingCache:
    """Directory-backed, row-range-chunked archive of table encodings.

    The cache is deliberately dumb storage: all counting (disk hits/misses,
    tables encoded, chunk loads) lives in the
    :class:`~repro.eval.timing.EngineCounters` callers pass into the load
    methods, so one cache directory can be shared by many stores without
    entangling their instrumentation.

    Parameters
    ----------
    directory:
        Root of the cache tree.
    chunk_rows:
        Rows per chunk archive written by :meth:`save`; the last chunk of a
        table may be short.  Readers honour whatever chunking the manifest
        records, so caches written with different ``chunk_rows`` interoperate.
    mmap_mode:
        When set (e.g. ``"r"``), loaded chunk arrays are memory-mapped from
        the archives instead of read into RAM, where the archive permits it.
    """

    def __init__(
        self,
        directory: PathLike,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        mmap_mode: Optional[str] = None,
    ) -> None:
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        if mmap_mode not in (None, "r", "c"):
            # "r+" would let consumers write through to the shared cache and
            # "w+" would truncate chunks on open; only read-only ("r") and
            # copy-on-write ("c") mappings are safe for a cache.
            raise ValueError(f"mmap_mode must be None, 'r' or 'c', got {mmap_mode!r}")
        self.directory = Path(directory)
        self.chunk_rows = chunk_rows
        self.mmap_mode = mmap_mode

    # ------------------------------------------------------------------
    # Paths and layout
    # ------------------------------------------------------------------
    def dir_for(self, task_name: str, side: str, encoding_version: int) -> Path:
        """Chunk directory of the ``(task, side, version)`` key."""
        return self.directory / _slug(task_name) / f"{side}-v{int(encoding_version)}"

    def manifest_path(self, task_name: str, side: str, encoding_version: int) -> Path:
        """Manifest path of the ``(task, side, version)`` key."""
        return self.dir_for(task_name, side, encoding_version) / MANIFEST_NAME

    def chunk_path(self, task_name: str, side: str, encoding_version: int, start: int, stop: int) -> Path:
        """Archive path of one row-range chunk."""
        return self.dir_for(task_name, side, encoding_version) / f"chunk-{int(start)}-{int(stop)}.npz"

    def flat_path_for(self, task_name: str, side: str, encoding_version: int) -> Path:
        """Archive path the legacy flat layout used (migration read path)."""
        return self.directory / _slug(task_name) / f"{side}-v{int(encoding_version)}.npz"

    def entries(self) -> List[Path]:
        """Every logical entry: chunked-layout manifests plus legacy archives."""
        if not self.directory.is_dir():
            return []
        manifests = list(self.directory.glob(f"*/*/{MANIFEST_NAME}"))
        flats = list(self.directory.glob("*/*.npz"))
        return sorted(manifests + flats)

    def clear(self) -> int:
        """Delete every entry; returns how many logical entries were removed."""
        removed = 0
        for entry in self.entries():
            removed += 1
            if entry.name == MANIFEST_NAME:
                self._remove_chunk_dir(entry.parent)
            else:
                entry.unlink()
        return removed

    @staticmethod
    def _remove_chunk_dir(chunk_dir: Path) -> int:
        """Delete one chunked entry directory; returns bytes removed."""
        removed_bytes = 0
        for path in list(chunk_dir.iterdir()):
            if path.is_file():
                removed_bytes += path.stat().st_size
                path.unlink()
        try:
            chunk_dir.rmdir()
        except OSError:  # pragma: no cover - foreign files left behind
            pass
        return removed_bytes

    @staticmethod
    def _parse_generation(stem: str) -> Optional[Tuple[str, int]]:
        """``side-vN`` -> (side, N); ``None`` for foreign names."""
        side, separator, version = stem.rpartition("-v")
        if not separator or not side or not version.isdigit():
            return None
        return side, int(version)

    def describe_entries(self) -> List[Dict[str, Any]]:
        """One summary row per logical entry (the ``repro cache list`` data).

        Chunked entries report rows, chunk count, on-disk bytes and the
        fingerprint CRCs from their manifest; legacy flat archives report
        what their metadata carries.  Unreadable entries are listed with
        ``rows == None`` rather than skipped, so stale garbage is visible.
        """
        rows: List[Dict[str, Any]] = []
        for entry in self.entries():
            if entry.name == MANIFEST_NAME:
                chunk_dir = entry.parent
                task = chunk_dir.parent.name
                parsed = self._parse_generation(chunk_dir.name) or (chunk_dir.name, -1)
                side, version = parsed
                total_bytes = sum(p.stat().st_size for p in chunk_dir.glob("*.npz"))
                try:
                    manifest = json.loads(entry.read_text())
                    fingerprint = manifest.get("fingerprint", {})
                    rows.append({
                        "task": task, "side": side, "version": version, "layout": "chunked",
                        "rows": len(manifest.get("keys", [])),
                        "chunks": len(manifest.get("chunks", [])),
                        "bytes": total_bytes,
                        "content_crc": fingerprint.get("content_crc"),
                        "weights_crc": (fingerprint.get("model") or {}).get("weights_crc"),
                    })
                except (OSError, ValueError, AttributeError):
                    rows.append({
                        "task": task, "side": side, "version": version, "layout": "chunked",
                        "rows": None, "chunks": None, "bytes": total_bytes,
                        "content_crc": None, "weights_crc": None,
                    })
            else:
                task = entry.parent.name
                parsed = self._parse_generation(entry.stem) or (entry.stem, -1)
                side, version = parsed
                try:
                    metadata = load_metadata(entry) or {}
                    fingerprint = metadata.get("fingerprint") or {}
                    keys = metadata.get("keys")
                except _LOAD_ERRORS:
                    metadata, fingerprint, keys = {}, {}, None
                rows.append({
                    "task": task, "side": side, "version": version, "layout": "flat",
                    "rows": len(keys) if isinstance(keys, list) else None,
                    "chunks": None, "bytes": entry.stat().st_size,
                    "content_crc": fingerprint.get("content_crc") if isinstance(fingerprint, dict) else None,
                    "weights_crc": (fingerprint.get("model") or {}).get("weights_crc")
                    if isinstance(fingerprint, dict) else None,
                })
        return rows

    def prune(self) -> Dict[str, int]:
        """Remove stale generations (the ``repro cache prune`` action).

        For each ``(task, side)`` only the highest ``-vN`` generation is
        kept (chunked preferred over flat at equal version); within kept
        chunked entries, chunk archives no longer referenced by the manifest
        (leftovers of superseded extensions) are removed too.  Returns
        removal counts.
        """
        generations: Dict[Tuple[str, str], List[Tuple[int, int, Path]]] = {}
        for entry in self.entries():
            if entry.name == MANIFEST_NAME:
                task, stem, preference = entry.parent.parent.name, entry.parent.name, 1
            else:
                task, stem, preference = entry.parent.name, entry.stem, 0
            parsed = self._parse_generation(stem)
            if parsed is None:
                continue
            side, version = parsed
            generations.setdefault((task, side), []).append((version, preference, entry))
        removed = {"entries": 0, "files": 0, "bytes": 0}
        for group in generations.values():
            group.sort()
            for version, preference, entry in group[:-1]:
                removed["entries"] += 1
                if entry.name == MANIFEST_NAME:
                    removed["files"] += len(list(entry.parent.glob("*"))) if entry.parent.is_dir() else 0
                    removed["bytes"] += self._remove_chunk_dir(entry.parent)
                else:
                    removed["files"] += 1
                    removed["bytes"] += entry.stat().st_size
                    entry.unlink()
            # Sweep unreferenced chunk archives out of the surviving entry.
            _, _, kept = group[-1]
            if kept.name != MANIFEST_NAME:
                continue
            try:
                manifest = json.loads(kept.read_text())
                referenced = {
                    f"chunk-{int(a)}-{int(b)}.npz" for a, b, _ in manifest.get("chunks", [])
                }
            except (OSError, ValueError, TypeError):
                continue
            for chunk in kept.parent.glob("*.npz"):
                if chunk.name not in referenced:
                    removed["files"] += 1
                    removed["bytes"] += chunk.stat().st_size
                    chunk.unlink()
        return removed

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        encodings: "TableEncodings",
        table: Optional["Table"] = None,
    ) -> Path:
        """Persist one table's encodings in row-range chunks; returns the manifest path.

        Chunks are written first (write-then-rename each), the manifest last,
        so concurrent readers (shared cache dirs across processes/nodes)
        never observe a partial entry: either the manifest is present and
        every chunk it references is complete, or the entry misses.

        ``table`` supplies the per-chunk content CRCs that make the entry
        delta-probeable; without it (synthetic encodings in tests and
        benchmarks) chunks are addressed by their keys alone and only serve
        full loads.
        """
        n = len(encodings)
        bounds = [
            (start, min(start + self.chunk_rows, n))
            for start in range(0, n, self.chunk_rows)
        ]
        chunks = [
            [start, stop, self._range_crc(table, encodings, start, stop)]
            for start, stop in bounds
        ]
        self._write_chunks(task_name, side, encoding_version, fingerprint, encodings, chunks, 0)
        manifest = {
            "format": CACHE_FORMAT_VERSION,
            "task": task_name,
            "side": side,
            "encoding_version": int(encoding_version),
            "fingerprint": fingerprint,
            "keys": [str(key) for key in encodings.keys],
            "chunk_rows": int(self.chunk_rows),
            "chunks": chunks,
            "shapes": {name: list(getattr(encodings, name).shape) for name in _ARRAY_KEYS},
        }
        return self._write_manifest(task_name, side, encoding_version, manifest)

    def extend(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        table: "Table",
        delta: "CacheDelta",
        tail: "TableEncodings",
    ) -> Path:
        """Append-only extension of an entry whose prefix ``delta`` validated.

        ``tail`` holds the encodings of rows ``[delta.base_rows, n)`` only
        (locally indexed); they are written as *new* chunk archives after the
        existing ones and the manifest is rewritten last, so the old entry
        stays fully readable until the new manifest lands atomically.  No
        existing chunk is touched — the whole point of content-addressed
        chunks is that an append re-encodes and rewrites only the tail.
        """
        base = int(delta.base_rows)
        n = base + len(tail)
        bounds = [
            (start, min(start + self.chunk_rows, n))
            for start in range(base, n, self.chunk_rows)
        ]
        new_chunks = [
            [start, stop, row_range_crc(table, start, stop)] for start, stop in bounds
        ]
        self._write_chunks(
            task_name, side, encoding_version, fingerprint, tail, new_chunks, base
        )
        old = delta.manifest
        prefix_chunks = [chunk for chunk in old["chunks"] if int(chunk[1]) <= base]
        keys = [str(key) for key in old["keys"][:base]] + [str(key) for key in tail.keys]
        shapes = {
            name: [n] + [int(d) for d in old["shapes"][name][1:]] for name in _ARRAY_KEYS
        }
        manifest = {
            "format": CACHE_FORMAT_VERSION,
            "task": task_name,
            "side": side,
            "encoding_version": int(encoding_version),
            "fingerprint": fingerprint,
            "keys": keys,
            "chunk_rows": int(self.chunk_rows),
            "chunks": prefix_chunks + new_chunks,
            "shapes": shapes,
        }
        return self._write_manifest(task_name, side, encoding_version, manifest)

    @staticmethod
    def _range_crc(
        table: Optional["Table"], encodings: "TableEncodings", start: int, stop: int
    ) -> int:
        if table is not None and len(table) == len(encodings):
            return row_range_crc(table, start, stop)
        return _keys_crc(encodings.keys[start:stop])

    def _write_chunks(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        encodings: "TableEncodings",
        chunks: List[List[int]],
        offset: int,
    ) -> None:
        """Write chunk archives for ``chunks`` (global row ranges) from
        ``encodings`` indexed locally at ``offset``."""
        chunk_dir = self.dir_for(task_name, side, encoding_version)
        chunk_dir.mkdir(parents=True, exist_ok=True)
        model = fingerprint.get("model") if isinstance(fingerprint, dict) else None
        for start, stop, crc in chunks:
            path = self.chunk_path(task_name, side, encoding_version, start, stop)
            # The model fingerprint and row CRC ride in every chunk, not just
            # the manifest: concurrent writers of the same key (e.g.
            # differently-seeded models at the same version) overwrite chunk
            # paths in place, so a reader holding the *other* writer's
            # manifest must be able to reject a foreign chunk instead of
            # mixing encodings.  Deliberately *not* the whole-table CRC —
            # chunks must stay addressable after an append changes it.
            metadata = {
                "format": CACHE_FORMAT_VERSION,
                "task": task_name,
                "side": side,
                "encoding_version": int(encoding_version),
                "model": model,
                "start": int(start),
                "stop": int(stop),
                "row_crc": int(crc),
            }
            state = {
                name: getattr(encodings, name)[start - offset : stop - offset]
                for name in _ARRAY_KEYS
            }
            # The temp name keeps the .npz suffix (np.savez appends it
            # otherwise) and the pid so parallel writers cannot collide.
            temporary = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
            save_state_dict(state, temporary, metadata=metadata)
            os.replace(temporary, path)

    def _write_manifest(
        self, task_name: str, side: str, encoding_version: int, manifest: Dict[str, Any]
    ) -> Path:
        manifest_path = self.manifest_path(task_name, side, encoding_version)
        manifest_path.parent.mkdir(parents=True, exist_ok=True)
        temporary = manifest_path.with_name(f".{MANIFEST_NAME}.{os.getpid()}.tmp")
        temporary.write_text(json.dumps(manifest))
        os.replace(temporary, manifest_path)
        return manifest_path

    def save_flat(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        encodings: "TableEncodings",
    ) -> Path:
        """Write an entry in the *legacy* flat single-archive layout.

        Retained so migration can be exercised end to end (tests, and the
        flat-vs-chunked load benchmark); new entries always go through
        :meth:`save`.
        """
        path = self.flat_path_for(task_name, side, encoding_version)
        metadata = {
            "format": FLAT_FORMAT_VERSION,
            "task": task_name,
            "side": side,
            "encoding_version": int(encoding_version),
            "fingerprint": fingerprint,
            "keys": [str(key) for key in encodings.keys],
        }
        state = {name: getattr(encodings, name) for name in _ARRAY_KEYS}
        temporary = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
        save_state_dict(state, temporary, metadata=metadata)
        os.replace(temporary, path)
        return path

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        counters: Optional["EngineCounters"] = None,
    ) -> Optional["TableEncodings"]:
        """Load a matching entry in full, or ``None`` on any kind of miss.

        Corrupt or foreign entries are treated as misses rather than errors:
        a cache must never be able to fail a resolution run.  A legacy flat
        archive found under the key is migrated to the chunked layout on the
        way through.
        """
        manifest = self._read_manifest(task_name, side, encoding_version, fingerprint)
        if manifest is not None:
            n = len(manifest["keys"])
            return self._load_rows(manifest, task_name, side, encoding_version, 0, n, counters)
        return self._migrate_flat(task_name, side, encoding_version, fingerprint)

    def load_range(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        start: int,
        stop: int,
        counters: Optional["EngineCounters"] = None,
    ) -> Optional["TableEncodings"]:
        """Load only the rows ``[start, stop)`` of a matching entry.

        Reads just the chunks overlapping the range — the lazy warm path for
        row-range-sharded consumers.  Row indices in the returned encodings
        are local to the range (0-based), mirroring
        :meth:`repro.engine.shard.ShardedEncodingStore.table_shard` views.
        Returns ``None`` on any miss, exactly like :meth:`load`.
        """
        if start < 0 or stop < start:
            raise ValueError(f"invalid row range [{start}, {stop})")
        manifest = self._read_manifest(task_name, side, encoding_version, fingerprint)
        if manifest is not None:
            stop = min(stop, len(manifest["keys"]))
            return self._load_rows(manifest, task_name, side, encoding_version, start, stop, counters)
        migrated = self._migrate_flat(task_name, side, encoding_version, fingerprint)
        if migrated is None:
            return None
        return _slice_encodings(migrated, start, min(stop, len(migrated)))

    # ------------------------------------------------------------------
    # Delta probing (the incremental-resolution entry point)
    # ------------------------------------------------------------------
    def delta(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        table: "Table",
    ) -> Optional["CacheDelta"]:
        """Probe an entry against the *current* table state, chunk by chunk.

        Requires the model half of ``fingerprint`` to match the manifest's
        (a different model invalidates every chunk), then walks the manifest
        chunks in order, CRC-ing the corresponding rows of ``table``; the
        walk stops at the first chunk that is out of range or whose content
        changed.  Returns ``None`` when nothing is reusable, otherwise a
        :class:`CacheDelta` whose ``base_rows`` prefix can be served from
        disk while only ``new_rows`` tail rows need encoding.
        """
        manifest = self._read_manifest_loose(task_name, side, encoding_version)
        if manifest is None:
            return None
        recorded = manifest.get("fingerprint")
        if not isinstance(recorded, dict):
            return None
        if recorded.get("model") != fingerprint.get("model"):
            return None
        n = len(table)
        base = 0
        for chunk_start, chunk_stop, chunk_crc in manifest["chunks"]:
            if chunk_stop > n or row_range_crc(table, chunk_start, chunk_stop) != chunk_crc:
                break
            base = chunk_stop
        if base == 0:
            return None
        return CacheDelta(manifest=manifest, base_rows=base, total_rows=n)

    def load_prefix(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        delta: "CacheDelta",
        counters: Optional["EngineCounters"] = None,
    ) -> Optional["TableEncodings"]:
        """The validated ``[0, delta.base_rows)`` prefix of a probed entry.

        Reads only the chunks covering the prefix; returns ``None`` if any
        chunk vanished or was overwritten since the probe (the usual
        degrade-to-miss contract).
        """
        return self._load_rows(
            delta.manifest, task_name, side, encoding_version, 0, delta.base_rows, counters
        )

    # ------------------------------------------------------------------
    def _read_manifest(
        self, task_name: str, side: str, encoding_version: int, fingerprint: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """The validated manifest of a key, or ``None`` on any mismatch."""
        manifest = self._read_manifest_loose(task_name, side, encoding_version)
        if manifest is None or manifest.get("fingerprint") != fingerprint:
            return None
        return manifest

    def _read_manifest_loose(
        self, task_name: str, side: str, encoding_version: int
    ) -> Optional[Dict[str, Any]]:
        """A structurally valid manifest of a key, *without* checking the
        table fingerprint — the delta probe validates content chunk-wise."""
        path = self.manifest_path(task_name, side, encoding_version)
        if not path.is_file():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(manifest, dict):
            return None
        if manifest.get("format") != CACHE_FORMAT_VERSION:
            return None
        if manifest.get("task") != task_name or manifest.get("side") != side:
            return None
        try:
            if int(manifest.get("encoding_version", -1)) != int(encoding_version):
                return None
        except (TypeError, ValueError):
            return None
        keys = manifest.get("keys")
        chunks = manifest.get("chunks")
        shapes = manifest.get("shapes")
        if not isinstance(keys, list) or not isinstance(chunks, list) or not isinstance(shapes, dict):
            return None
        if set(shapes) != set(_ARRAY_KEYS):
            return None
        # Chunks must tile [0, n) contiguously and in order — anything else
        # (hand-edited manifest, mixed-up files) is a stale manifest: miss.
        position = 0
        for chunk in chunks:
            if not (isinstance(chunk, list) and len(chunk) == 3):
                return None
            chunk_start, chunk_stop, chunk_crc = chunk
            if not isinstance(chunk_crc, int):
                return None
            if chunk_start != position or chunk_stop <= chunk_start:
                return None
            position = chunk_stop
        if position != len(keys):
            return None
        return manifest

    def _load_rows(
        self,
        manifest: Dict[str, Any],
        task_name: str,
        side: str,
        encoding_version: int,
        start: int,
        stop: int,
        counters: Optional["EngineCounters"],
    ) -> Optional["TableEncodings"]:
        """Materialise rows ``[start, stop)`` from the chunks covering them."""
        from repro.engine.store import TableEncodings

        keys = tuple(manifest["keys"][start:stop])
        if start >= stop:
            shapes = manifest["shapes"]
            empty = {name: np.zeros([0] + [int(d) for d in shapes[name][1:]]) for name in _ARRAY_KEYS}
            return TableEncodings(keys=keys, row_index={}, **empty)
        covering = [
            (int(chunk_start), int(chunk_stop), int(chunk_crc))
            for chunk_start, chunk_stop, chunk_crc in manifest["chunks"]
            if chunk_start < stop and chunk_stop > start
        ]
        pieces: Dict[str, List[np.ndarray]] = {name: [] for name in _ARRAY_KEYS}
        model = manifest["fingerprint"].get("model")
        for chunk_start, chunk_stop, chunk_crc in covering:
            arrays = self._read_chunk(
                task_name, side, encoding_version, model, chunk_start, chunk_stop, chunk_crc
            )
            if arrays is None:
                return None
            if counters is not None:
                counters.record_chunk_load()
            lo = max(start, chunk_start) - chunk_start
            hi = min(stop, chunk_stop) - chunk_start
            for name in _ARRAY_KEYS:
                if arrays[name].shape[0] != chunk_stop - chunk_start:
                    return None
                pieces[name].append(arrays[name][lo:hi])
        merged = {
            # A range served by a single chunk stays a zero-copy (possibly
            # memory-mapped) view; multi-chunk ranges concatenate.
            name: parts[0] if len(parts) == 1 else np.concatenate(parts)
            for name, parts in pieces.items()
        }
        if merged["irs"].shape[0] != len(keys):
            return None
        return TableEncodings(
            keys=keys,
            irs=merged["irs"],
            mu=merged["mu"],
            sigma=merged["sigma"],
            row_index={key: row for row, key in enumerate(keys)},
        )

    def _read_chunk(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        model: Optional[Dict[str, Any]],
        start: int,
        stop: int,
        row_crc: int,
    ) -> Optional[Dict[str, np.ndarray]]:
        """One chunk's arrays, validated against its embedded metadata."""
        path = self.chunk_path(task_name, side, encoding_version, start, stop)
        if not path.is_file():
            return None
        try:
            metadata = load_metadata(path)
            if metadata is None or metadata.get("format") != CACHE_FORMAT_VERSION:
                return None
            if metadata.get("task") != task_name or metadata.get("side") != side:
                return None
            if metadata.get("model") != model:
                return None
            if int(metadata.get("row_crc", -1)) != int(row_crc):
                return None
            if int(metadata.get("start", -1)) != start or int(metadata.get("stop", -1)) != stop:
                return None
            if self.mmap_mode:
                try:
                    return _mmap_npz_arrays(path, _ARRAY_KEYS, self.mmap_mode)
                except _LOAD_ERRORS:
                    pass  # degrade to an eager read of the same chunk
            with np.load(path, allow_pickle=False) as archive:
                return {name: archive[name] for name in _ARRAY_KEYS}
        except _LOAD_ERRORS:
            # BadZipFile/struct.error cover truncated archives (killed
            # writer) whose zip header still looks plausible.
            return None

    # ------------------------------------------------------------------
    # Legacy flat layout: one-shot migration read path
    # ------------------------------------------------------------------
    def _migrate_flat(
        self, task_name: str, side: str, encoding_version: int, fingerprint: Dict[str, Any]
    ) -> Optional["TableEncodings"]:
        """Serve a legacy flat archive, rewriting it as a chunked entry.

        The migration has no table in hand, so the rewritten chunks carry
        keys-only CRCs: the entry serves full loads but stays opaque to
        delta probes until the next real (table-backed) save refreshes it.
        """
        encodings = self._load_flat(task_name, side, encoding_version, fingerprint)
        if encodings is None:
            return None
        self.save(task_name, side, encoding_version, fingerprint, encodings)
        try:
            self.flat_path_for(task_name, side, encoding_version).unlink()
        except OSError:  # pragma: no cover - concurrent migration already removed it
            pass
        return encodings

    def _load_flat(
        self, task_name: str, side: str, encoding_version: int, fingerprint: Dict[str, Any]
    ) -> Optional["TableEncodings"]:
        """Reader for the pre-chunking single-archive layout."""
        from repro.engine.store import TableEncodings

        path = self.flat_path_for(task_name, side, encoding_version)
        if not path.is_file():
            return None
        try:
            metadata = load_metadata(path)
            if metadata is None or metadata.get("format") != FLAT_FORMAT_VERSION:
                return None
            if metadata.get("task") != task_name or metadata.get("side") != side:
                return None
            if int(metadata.get("encoding_version", -1)) != int(encoding_version):
                return None
            if metadata.get("fingerprint") != fingerprint:
                return None
            keys = tuple(metadata["keys"])
            with np.load(path, allow_pickle=False) as archive:
                arrays = {name: archive[name] for name in _ARRAY_KEYS}
        except _LOAD_ERRORS:
            return None
        if len(keys) != arrays["irs"].shape[0]:
            return None
        return TableEncodings(
            keys=keys,
            irs=arrays["irs"],
            mu=arrays["mu"],
            sigma=arrays["sigma"],
            row_index={key: row for row, key in enumerate(keys)},
        )

    def __repr__(self) -> str:
        return (
            f"PersistentEncodingCache({str(self.directory)!r}, "
            f"chunk_rows={self.chunk_rows}, entries={len(self.entries())})"
        )


def _slice_encodings(encodings: "TableEncodings", start: int, stop: int) -> "TableEncodings":
    """Row-range view of in-memory encodings with a local row index."""
    from repro.engine.store import TableEncodings

    keys = encodings.keys[start:stop]
    return TableEncodings(
        keys=keys,
        irs=encodings.irs[start:stop],
        mu=encodings.mu[start:stop],
        sigma=encodings.sigma[start:stop],
        row_index={key: row for row, key in enumerate(keys)},
    )
