"""Persistent on-disk cache of table encodings, chunked by row range.

The in-memory :class:`repro.engine.EncodingStore` already guarantees each
table is encoded at most once *per process*; this module extends that
guarantee *across* processes and runs.  A :class:`PersistentEncodingCache`
serialises :class:`~repro.engine.store.TableEncodings` to row-range-chunked
``.npz`` archives via the same :mod:`repro.nn.serialization` helpers used for
model weights, so a repeated ``resolve`` or harness run on the same task and
representation skips the IR transform and VAE forward pass entirely — and a
consumer that only needs one row-range shard of a huge table reads only the
chunks covering it instead of the whole archive.

Cache-directory layout
----------------------
One subdirectory per task, one *chunk directory* per (side, encoding
version), holding a JSON manifest plus one archive per row-range chunk::

    <cache_dir>/
        <task-name>/
            left-v4/
                manifest.json
                chunk-0-2048.npz
                chunk-2048-4096.npz
                chunk-2048-4096-g1.npz   (superseding generation of a patch)
                ...
            right-v4/
                ...

The manifest is written last (write-then-rename), so its presence marks a
complete entry; readers that find a manifest referencing a missing or
corrupt chunk treat the whole entry as a miss.  The flat single-archive
layout of earlier versions (``<task>/<side>-vN.npz``) remains readable: the
first load that finds one migrates it to the chunked layout in place
(one-shot) and removes the flat archive.  Format-3 manifests (the chunked
layout without a mutation layer) are migrated to format 4 on first read.

Keying and invalidation rules
-----------------------------
Entries are keyed by ``(task.name, side, encoding_version)`` — the same
monotonic version token the in-memory store watches.  Because the token is
process-local, every manifest additionally embeds a *fingerprint* with two
parts: a **model** fingerprint (IR method, dimensions, seed and a CRC of the
VAE weights) and a **table** identity (record count plus a whole-table CRC
of record ids and values).  A full load only succeeds when both the key and
the complete fingerprint match; anything else — missing manifest, foreign
task, refit or differently-seeded model, resized or edited table, corrupt
or missing chunk, stale manifest — is a miss.  Bumping ``encoding_version``
therefore never serves stale encodings: the old entries simply stop being
addressed.

Row-identity mutation layer (format v4)
---------------------------------------
Format 4 manifests carry a per-row content map instead of only per-chunk
CRCs: ``row_crcs`` records one CRC per *stored* row (covering that record's
id and values alone), ``tombstones`` lists stored rows that have been
deleted from the table, and every chunk entry is ``[start, stop, crc,
generation]``.  The *stored* layout is append-only — a row keeps its stored
index forever; deletions tombstone it and edits write a *superseding
generation* of the chunk holding it (``chunk-a-b-gN.npz``) — while the
*live* view (stored rows minus tombstones, in stored order) always equals
the current table.

:meth:`PersistentEncodingCache.delta` diffs a manifest against the current
table *by record id*: surviving rows are matched by key, compared by row
CRC, and classified clean or dirty; vanished rows become tombstone
candidates; trailing new rows are the appended range.  The resulting
:class:`TableDelta` tells the store exactly which current rows need
encoding (``dirty_ranges`` + ``appended_range``) and which can be served
from disk (:meth:`PersistentEncodingCache.load_reused`).
:meth:`PersistentEncodingCache.patch` then writes the superseding chunk
generations and appended chunks first and the manifest last, so concurrent
readers see either the old complete entry or the new one, never a torn
state.  Old generations are swept by :meth:`prune`.

Lazy loads and memory mapping
-----------------------------
:meth:`PersistentEncodingCache.load_range` reads only the chunks overlapping
a ``[start, stop)`` *live*-row range — the warm-load path for
row-range-sharded consumers.  With ``mmap_mode`` set, chunk arrays are
memory-mapped straight out of the (uncompressed) ``.npz`` members instead of
copied into RAM; the mapping degrades silently to an eager read where it
cannot apply.  Chunk reads are reported through the ``chunk_loads`` counter
of whatever :class:`~repro.eval.timing.EngineCounters` the caller passes in.

Chunk reads go through a process-wide LRU of :class:`_ChunkHandle` objects
— one open descriptor, parsed member layout and metadata per archive — so a
warm load costs one zip-directory parse per chunk *ever*, not three opens
per read; handles are validated by stat identity and degrade to the plain
``np.load`` path for archives the raw reader cannot serve.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zipfile
import zlib
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.quant import CodecArray, params_from_json
from repro.nn.serialization import _META_KEY, load_metadata, save_state_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.representation import EntityRepresentationModel
    from repro.data.schema import Record, Table
    from repro.engine.store import TableEncodings
    from repro.eval.timing import EngineCounters

PathLike = Union[str, Path]

#: Bump when the on-disk layout changes; mismatching entries are treated as
#: misses, never as errors.  Version 5 adds the codec tier (a per-entry and
#: per-chunk ``codec`` field plus quantization params, so chunk arrays may
#: hold int8 codes instead of floats); version 4 added the row-identity
#: mutation layer (per-row CRCs, tombstones, chunk generations); version 3
#: had per-chunk content CRCs only.  Both older chunked formats are
#: migrated to the current one on first read.
CACHE_FORMAT_VERSION = 5

#: Format tag of the pre-codec mutation-layer layout (read for migration).
V4_FORMAT_VERSION = 4

#: Format tag of the pre-mutation chunked layout (read for migration).
V3_FORMAT_VERSION = 3

#: Format tag of the legacy flat single-archive layout (read for migration).
FLAT_FORMAT_VERSION = 1

#: Chunk formats the reader accepts: the codec formats plus the two older
#: chunked formats whose archives are binary-compatible for the raw codec
#: (migration rewrites manifests only, never chunk files).
_READABLE_CHUNK_FORMATS = (V3_FORMAT_VERSION, V4_FORMAT_VERSION, CACHE_FORMAT_VERSION)

#: The identity codec: entries without a codec field decode as plain floats.
RAW_CODEC = "raw"

#: Default rows per chunk archive.
DEFAULT_CHUNK_ROWS = 2048

MANIFEST_NAME = "manifest.json"

_ARRAY_KEYS = ("irs", "mu", "sigma")

_LOAD_ERRORS = (OSError, ValueError, KeyError, TypeError, zlib.error, zipfile.BadZipFile, struct.error)


def _slug(name: str) -> str:
    """Filesystem-safe task directory name."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
    return safe or "task"


def model_fingerprint(representation: "EntityRepresentationModel") -> Dict[str, Any]:
    """The model half of an entry's identity.

    The ``encoding_version`` key only covers changes *within* a process (it
    restarts from zero every run), so the fingerprint carries everything that
    determines what a record encodes to across processes: the architecture
    (IR method and dimensions), the training seed, and a CRC of the VAE
    weights — two models fitted with different seeds, epochs or data produce
    different weights and therefore different fingerprints, even though both
    sit at ``encoding_version == 1``.
    """
    state = representation.vae.state_dict()
    weights_crc = 0
    for name in sorted(state):
        weights_crc = zlib.crc32(name.encode("utf-8"), weights_crc)
        weights_crc = zlib.crc32(np.ascontiguousarray(state[name]).tobytes(), weights_crc)
    return {
        "ir_method": representation.ir_method,
        "ir_dim": int(representation.config.ir_dim),
        "hidden_dim": int(representation.config.hidden_dim),
        "latent_dim": int(representation.config.latent_dim),
        "seed": int(representation.config.seed),
        "weights_crc": int(weights_crc),
    }


def record_crc(record: "Record") -> int:
    """Independent CRC of one record's id and values.

    The row-identity primitive of the mutation layer: unlike the running
    :func:`row_range_crc`, each record's CRC stands alone, so a manifest
    storing one CRC per row can tell exactly *which* rows of a mutated table
    changed, not just that some range did.
    """
    crc = zlib.crc32(str(record.record_id).encode("utf-8"))
    for value in record.values:
        crc = zlib.crc32(value.encode("utf-8"), crc)
    return int(crc)


def table_row_crcs(table: "Table") -> List[int]:
    """Per-row :func:`record_crc` of every record, in table order."""
    return [record_crc(record) for record in table]


def row_range_crc(table: "Table", start: int, stop: int) -> int:
    """Running CRC of the record ids *and values* of rows ``[start, stop)``.

    The content-addressing primitive of the chunked cache: each chunk's CRC
    covers exactly its own row range (restarting from zero), so appending
    rows to a table leaves every existing chunk's CRC — and therefore its
    on-disk archive — valid.  Iterates the table in place (``islice`` over
    its record order) rather than copying the record list, since the delta
    probe calls this once per chunk.
    """
    crc = 0
    for record in islice(iter(table), start, stop):
        crc = zlib.crc32(str(record.record_id).encode("utf-8"), crc)
        for value in record.values:
            crc = zlib.crc32(value.encode("utf-8"), crc)
    return int(crc)


def _crc_of_ints(values: Iterable[int]) -> int:
    """CRC over a sequence of integers (chunk CRCs of patched generations).

    A superseding chunk generation may hold tombstoned rows with no backing
    record, so its CRC is derived from the manifest's per-row CRCs rather
    than from table content directly.
    """
    crc = zlib.crc32(b"row-crcs")
    for value in values:
        crc = zlib.crc32(int(value).to_bytes(8, "little", signed=True), crc)
    return int(crc)


def _keys_crc(keys: Sequence[object]) -> int:
    """Fallback chunk CRC over record keys alone.

    Used when :meth:`PersistentEncodingCache.save` is handed encodings with
    no backing table (synthetic benchmark entries).  Never matches a real
    :func:`row_range_crc`, so such entries serve full loads but are opaque
    to delta detection — the safe degradation.
    """
    crc = zlib.crc32(b"keys-only")
    for key in keys:
        crc = zlib.crc32(str(key).encode("utf-8"), crc)
    return int(crc)


def _encodings_codec(encodings: "TableEncodings") -> Tuple[str, Optional[Dict[str, Any]]]:
    """Codec name and JSON params of in-memory encodings.

    Encodings whose arrays are :class:`~repro.engine.quant.CodecArray`
    instances persist as code chunks (int8 affine codes or uint8 PQ codes)
    with their params — affine scale/offset or PQ codebooks — in the
    manifest; plain ndarrays persist as the ``raw`` codec.  Mixed arrays
    are a store bug, not a degradable condition.
    """
    arrays = {name: getattr(encodings, name) for name in _ARRAY_KEYS}
    coded = {name for name, array in arrays.items() if isinstance(array, CodecArray)}
    if not coded:
        return RAW_CODEC, None
    if coded != set(_ARRAY_KEYS):
        raise ValueError(f"mixed raw/coded encoding arrays: only {sorted(coded)} are coded")
    names = {arrays[name].params.codec_name for name in _ARRAY_KEYS}
    if len(names) != 1:
        raise ValueError(f"mixed codecs across encoding arrays: {sorted(names)}")
    return names.pop(), {name: arrays[name].params.to_json() for name in _ARRAY_KEYS}


def _stored_rows(array, start: int, stop: int) -> np.ndarray:
    """Rows ``[start, stop)`` of an encoding array in *stored* form.

    For a :class:`CodecArray` this is the int8 code rows (plain indexing
    would rehydrate floats — exactly what a chunk write must not do).
    """
    if isinstance(array, CodecArray):
        return array.codes[start:stop]
    return np.asarray(array[start:stop])


def _stored_row(array, position: int) -> np.ndarray:
    """One row of an encoding array in stored (code or float) form."""
    if isinstance(array, CodecArray):
        return array.codes[position]
    return array[position]


def _manifest_codec(manifest: Dict[str, Any]) -> Tuple[str, Optional[Dict[str, Any]]]:
    """``(name, params)`` of a normalised manifest's codec field."""
    codec = manifest.get("codec")
    if not isinstance(codec, dict):
        return RAW_CODEC, None
    name = codec.get("name", RAW_CODEC)
    params = codec.get("params")
    return str(name), params if isinstance(params, dict) else None


def encoding_fingerprint(representation: "EntityRepresentationModel", table: "Table") -> Dict[str, Any]:
    """Identity check binding an entry to the exact model and table state.

    Two parts: the nested ``model`` fingerprint (see :func:`model_fingerprint`)
    and the table identity — record count plus a whole-table CRC of record
    ids and values (renamed, resized or edited tables all miss a full load;
    *mutated* tables are recovered row-wise via
    :meth:`PersistentEncodingCache.delta`).
    """
    n = len(table)
    return {
        "model": model_fingerprint(representation),
        "n_records": int(n),
        "content_crc": row_range_crc(table, 0, n),
    }


# ----------------------------------------------------------------------
# Row-identity diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RowDiff:
    """Result of diffing an *old* row sequence against a current table, by id.

    All ``old`` positions index the old sequence; all ``new`` positions
    index the current table.  ``survivor_old[j]`` is the old position of the
    current row ``j`` (for ``j < len(survivor_old)``); rows past that are
    appended.  ``dirty_new`` is ``None`` when the old side carried no
    per-row CRCs (content comparison impossible — callers must treat every
    surviving row as potentially dirty at whatever granularity they can).
    """

    survivor_old: Tuple[int, ...]
    deleted_old: Tuple[int, ...]
    dirty_new: Optional[Tuple[int, ...]]
    total_rows: int

    @property
    def appended_range(self) -> Tuple[int, int]:
        return (len(self.survivor_old), self.total_rows)

    @property
    def appended_rows(self) -> int:
        return self.total_rows - len(self.survivor_old)


def diff_rows(
    old_keys: Sequence[object],
    old_row_crcs: Optional[Sequence[int]],
    table: "Table",
) -> Optional[RowDiff]:
    """Classify every row of ``table`` against an old key/CRC sequence.

    Mutation shapes resolved cheaply: in-place edits (same id, same
    position among survivors), deletions anywhere, and appends at the end.
    Rows that moved — a deleted id re-added later, or genuine reorders —
    degrade to delete + re-add: survivors are the old rows matched greedily
    at their (deletion-adjusted) positions, and any displaced row lands in
    the appended region, so the classification is *total* for tables with
    unique record ids (a reversed table keeps one survivor and rewrites the
    rest).  Returns ``None`` only for pathological inputs (duplicate old
    keys breaking the position invariant).
    """
    position_of: Dict[object, int] = {}
    for position, rid in enumerate(table.record_ids()):
        position_of[rid] = position
    survivor_old: List[int] = []
    deleted_old: List[int] = []
    displaced: List[Tuple[int, int]] = []
    for old_position, key in enumerate(old_keys):
        current = position_of.get(str(key))
        if current is None:
            deleted_old.append(old_position)
        elif current == len(survivor_old):
            survivor_old.append(old_position)
        else:
            displaced.append((old_position, current))
    survivors = len(survivor_old)
    for old_position, current in displaced:
        if current < survivors:
            return None  # genuine reorder among surviving rows
        # Landed in the appended region: treat as deleted + re-added.
        deleted_old.append(old_position)
    deleted_old.sort()
    dirty_new: Optional[Tuple[int, ...]]
    if old_row_crcs is None:
        dirty_new = None
    else:
        records = table.records()
        dirty = [
            new_position
            for new_position, old_position in enumerate(survivor_old)
            if record_crc(records[new_position]) != int(old_row_crcs[old_position])
        ]
        dirty_new = tuple(dirty)
    return RowDiff(
        survivor_old=tuple(survivor_old),
        deleted_old=tuple(deleted_old),
        dirty_new=dirty_new,
        total_rows=len(table),
    )


def group_ranges(positions: Sequence[int]) -> Tuple[Tuple[int, int], ...]:
    """Sorted positions grouped into maximal half-open ``[start, stop)`` runs."""
    ranges: List[Tuple[int, int]] = []
    for position in positions:
        if ranges and ranges[-1][1] == position:
            ranges[-1] = (ranges[-1][0], position + 1)
        else:
            ranges.append((position, position + 1))
    return tuple(ranges)


@dataclass(frozen=True)
class TableDelta:
    """Result of probing a cache entry against a (possibly mutated) table.

    Coordinates: *stored* indices address the manifest's append-only row
    layout (tombstoned rows included); *current* indices address the live
    table.  ``survivor_stored[j]`` is the stored index of current row ``j``
    for ``j < base_rows``.

    * ``valid_chunks`` — manifest chunk entries every one of whose rows is
      live, surviving and content-clean (fully reusable as-is);
    * ``dirty_ranges`` — current-row ranges whose content changed in place
      (must be re-encoded; their chunks need superseding generations);
    * ``appended_range`` — current-row range ``[base_rows, total_rows)`` of
      rows the manifest has never seen;
    * ``deleted_rows`` — stored indices whose records vanished from the
      table (tombstone candidates for :meth:`PersistentEncodingCache.patch`).
    """

    manifest: Dict[str, Any]
    valid_chunks: Tuple[Tuple[int, int, int, int], ...]
    dirty_ranges: Tuple[Tuple[int, int], ...]
    appended_range: Tuple[int, int]
    deleted_rows: Tuple[int, ...]
    survivor_stored: Tuple[int, ...]
    total_rows: int

    @property
    def base_rows(self) -> int:
        """Current rows covered by the stored entry (clean or dirty)."""
        return self.appended_range[0]

    @property
    def new_rows(self) -> int:
        return self.total_rows - self.base_rows

    @property
    def dirty_rows(self) -> int:
        return sum(stop - start for start, stop in self.dirty_ranges)

    @property
    def is_append_only(self) -> bool:
        return not self.dirty_ranges and not self.deleted_rows

    def dirty_positions(self) -> Tuple[int, ...]:
        return tuple(
            position
            for start, stop in self.dirty_ranges
            for position in range(start, stop)
        )

    def encode_positions(self) -> Tuple[int, ...]:
        """Current rows that must go through the encoder (dirty + appended)."""
        return self.dirty_positions() + tuple(range(*self.appended_range))

    def reused_rows(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(current positions, stored indices) of clean surviving rows."""
        dirty = set(self.dirty_positions())
        positions = [
            position for position in range(self.base_rows) if position not in dirty
        ]
        stored = [self.survivor_stored[position] for position in positions]
        return tuple(positions), tuple(stored)


#: Backwards-compatible alias (pre-mutation name of the probe result).
CacheDelta = TableDelta


#: One member's data layout inside an ``.npz``: (data offset, dtype, shape,
#: fortran order).  Enough to read or map the array without touching the
#: zip or npy headers again.
_MemberLayout = Tuple[int, np.dtype, Tuple[int, ...], bool]


def _parse_npz_member(handle, info: zipfile.ZipInfo) -> _MemberLayout:
    """Locate one uncompressed ``.npy`` member's raw data inside its archive.

    ``np.load`` silently ignores ``mmap_mode`` for ``.npz`` files, so the
    member's data offset (past the zip local header and the npy header) is
    found by hand.  Raises on anything unexpected — compressed members,
    object arrays, foreign npy versions — and the caller degrades to
    ``np.load``.
    """
    from numpy.lib import format as npy_format

    if info.compress_type != zipfile.ZIP_STORED:
        raise ValueError("compressed archive member cannot be raw-read")
    handle.seek(info.header_offset)
    local_header = handle.read(30)
    if local_header[:4] != b"PK\x03\x04":
        raise ValueError("malformed local file header")
    name_length = int.from_bytes(local_header[26:28], "little")
    extra_length = int.from_bytes(local_header[28:30], "little")
    handle.seek(info.header_offset + 30 + name_length + extra_length)
    version = npy_format.read_magic(handle)
    if version == (1, 0):
        shape, fortran, dtype = npy_format.read_array_header_1_0(handle)
    elif version == (2, 0):
        shape, fortran, dtype = npy_format.read_array_header_2_0(handle)
    else:
        raise ValueError(f"unsupported npy format version {version}")
    if dtype.hasobject:
        raise ValueError("object arrays cannot be raw-read")
    return handle.tell(), dtype, tuple(int(d) for d in shape), bool(fortran)


class _ChunkHandle:
    """One chunk archive held open with its member layout and metadata parsed.

    The warm-load hot path reads every chunk of an entry back to back; the
    naive path pays three opens and two zip-directory parses per chunk
    (``load_metadata``, ``zipfile.ZipFile``, then the data read).  A handle
    pays that once: the archive's file descriptor stays open, member data
    offsets and the parsed metadata dict are retained, and repeat loads —
    the chunked full-table warm path, range loads revisiting a chunk, delta
    reuse — are a seek-and-read per array.  Validity is tied to the stat
    identity ``(st_mtime_ns, st_size)`` captured at open; writers replace
    archives atomically (write-then-rename), so a stale handle can only see
    the complete old file, never a torn one.
    """

    __slots__ = ("path", "stat_key", "metadata", "members", "_file", "_lock")

    def __init__(self, path: Path) -> None:
        stat = path.stat()
        self.path = path
        self.stat_key = (int(stat.st_mtime_ns), int(stat.st_size))
        self._lock = threading.Lock()
        self._file = open(path, "rb")
        try:
            with zipfile.ZipFile(self._file) as archive:
                infos = {info.filename: info for info in archive.infolist()}
            members: Dict[str, _MemberLayout] = {}
            for name in _ARRAY_KEYS + (_META_KEY,):
                info = infos.get(name + ".npy")
                if info is None:
                    raise KeyError(f"archive member {name!r} missing")
                members[name] = _parse_npz_member(self._file, info)
            self.members = members
            offset, dtype, shape, _ = members[_META_KEY]
            raw = self._read_span(offset, dtype.itemsize * _element_count(shape))
            metadata = json.loads(bytes(raw).decode("utf-8"))
            if not isinstance(metadata, dict):
                raise ValueError("chunk metadata is not a mapping")
            self.metadata = metadata
        except BaseException:
            self._file.close()
            raise

    def _read_span(self, offset: int, nbytes: int) -> bytearray:
        buffer = bytearray(nbytes)
        with self._lock:
            self._file.seek(offset)
            read = self._file.readinto(buffer)
        if read != nbytes:
            raise ValueError("short read from chunk archive")
        return buffer

    def read_arrays(self) -> Dict[str, np.ndarray]:
        """Eagerly read the encoding arrays (writable, one copy, no reparse)."""
        arrays: Dict[str, np.ndarray] = {}
        for name in _ARRAY_KEYS:
            offset, dtype, shape, fortran = self.members[name]
            buffer = self._read_span(offset, dtype.itemsize * _element_count(shape))
            # frombuffer over a bytearray yields a *writable* array, matching
            # what np.load hands out, without an extra copy.
            arrays[name] = np.frombuffer(buffer, dtype=dtype).reshape(
                shape, order="F" if fortran else "C"
            )
        return arrays

    def mmap_arrays(self, mmap_mode: str) -> Dict[str, np.ndarray]:
        """Memory-map the encoding arrays from the cached member offsets."""
        return {
            name: np.memmap(
                self.path,
                dtype=dtype,
                mode=mmap_mode,
                offset=offset,
                shape=shape,
                order="F" if fortran else "C",
            )
            for name, (offset, dtype, shape, fortran) in self.members.items()
            if name != _META_KEY
        }

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:  # pragma: no cover - close of a dup'd/raced descriptor
            pass


def _element_count(shape: Tuple[int, ...]) -> int:
    count = 1
    for dim in shape:
        count *= int(dim)
    return count


#: Open chunk handles kept per process (LRU).  Sized for a handful of
#: concurrently-warm entries: a full-table load touches each chunk once in
#: order, so even 1 would serve it — the slack keeps interleaved range loads
#: of a few tables warm too.
CHUNK_HANDLE_CACHE = 64

_handles: "OrderedDict[str, _ChunkHandle]" = OrderedDict()
_handles_lock = threading.Lock()


def _chunk_handle(path: Path) -> Optional[_ChunkHandle]:
    """The cached handle of ``path``, (re)opened and stat-validated.

    ``None`` when the archive is missing or cannot be raw-read (compressed
    members, foreign layout) — callers degrade to the ``np.load`` path.
    """
    try:
        stat = path.stat()
    except OSError:
        with _handles_lock:
            stale = _handles.pop(str(path), None)
        if stale is not None:
            stale.close()
        return None
    stat_key = (int(stat.st_mtime_ns), int(stat.st_size))
    key = str(path)
    with _handles_lock:
        cached = _handles.get(key)
        if cached is not None:
            if cached.stat_key == stat_key:
                _handles.move_to_end(key)
                return cached
            del _handles[key]
            cached.close()
    try:
        handle = _ChunkHandle(path)
    except _LOAD_ERRORS:
        return None
    evicted: List[_ChunkHandle] = []
    with _handles_lock:
        previous = _handles.pop(key, None)
        if previous is not None:  # pragma: no cover - concurrent open race
            evicted.append(previous)
        _handles[key] = handle
        while len(_handles) > CHUNK_HANDLE_CACHE:
            _, old = _handles.popitem(last=False)
            evicted.append(old)
    for old in evicted:
        old.close()
    return handle


def close_chunk_handles() -> None:
    """Close every cached chunk handle (cache clears, test isolation)."""
    with _handles_lock:
        handles = list(_handles.values())
        _handles.clear()
    for handle in handles:
        handle.close()


def invalidate_chunk_handles(paths: Iterable[object]) -> int:
    """Eagerly close the cached handles of specific chunk archives.

    Called for chunk files that just became dead — superseded by a newer
    generation in :meth:`PersistentEncodingCache.patch`, or about to be
    unlinked by :meth:`PersistentEncodingCache.prune` — so a long-lived
    process does not pin stale archives (and their file descriptors) in the
    LRU until eviction.  Returns how many handles were closed.
    """
    keys = {str(path) for path in paths}
    closed: List[_ChunkHandle] = []
    with _handles_lock:
        for key in keys:
            handle = _handles.pop(key, None)
            if handle is not None:
                closed.append(handle)
    for handle in closed:
        handle.close()
    return len(closed)


class PersistentEncodingCache:
    """Directory-backed, row-range-chunked archive of table encodings.

    The cache is deliberately dumb storage: all counting (disk hits/misses,
    tables encoded, chunk loads) lives in the
    :class:`~repro.eval.timing.EngineCounters` callers pass into the load
    methods, so one cache directory can be shared by many stores without
    entangling their instrumentation.  The one exception is the *work
    report* of :meth:`patch`, returned to the caller for its own counters.

    Parameters
    ----------
    directory:
        Root of the cache tree.
    chunk_rows:
        Rows per chunk archive written by :meth:`save`; the last chunk of a
        table may be short.  Readers honour whatever chunking the manifest
        records, so caches written with different ``chunk_rows`` interoperate.
    mmap_mode:
        When set (e.g. ``"r"``), loaded chunk arrays are memory-mapped from
        the archives instead of read into RAM, where the archive permits it.
    """

    def __init__(
        self,
        directory: PathLike,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        mmap_mode: Optional[str] = None,
    ) -> None:
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        if mmap_mode not in (None, "r", "c"):
            # "r+" would let consumers write through to the shared cache and
            # "w+" would truncate chunks on open; only read-only ("r") and
            # copy-on-write ("c") mappings are safe for a cache.
            raise ValueError(f"mmap_mode must be None, 'r' or 'c', got {mmap_mode!r}")
        self.directory = Path(directory)
        self.chunk_rows = chunk_rows
        self.mmap_mode = mmap_mode

    # ------------------------------------------------------------------
    # Paths and layout
    # ------------------------------------------------------------------
    def dir_for(self, task_name: str, side: str, encoding_version: int) -> Path:
        """Chunk directory of the ``(task, side, version)`` key."""
        return self.directory / _slug(task_name) / f"{side}-v{int(encoding_version)}"

    def manifest_path(self, task_name: str, side: str, encoding_version: int) -> Path:
        """Manifest path of the ``(task, side, version)`` key."""
        return self.dir_for(task_name, side, encoding_version) / MANIFEST_NAME

    @staticmethod
    def chunk_name(start: int, stop: int, generation: int = 0) -> str:
        """Archive filename of one chunk generation."""
        if generation:
            return f"chunk-{int(start)}-{int(stop)}-g{int(generation)}.npz"
        return f"chunk-{int(start)}-{int(stop)}.npz"

    def chunk_path(
        self, task_name: str, side: str, encoding_version: int, start: int, stop: int,
        generation: int = 0,
    ) -> Path:
        """Archive path of one row-range chunk generation."""
        return self.dir_for(task_name, side, encoding_version) / self.chunk_name(start, stop, generation)

    def flat_path_for(self, task_name: str, side: str, encoding_version: int) -> Path:
        """Archive path the legacy flat layout used (migration read path)."""
        return self.directory / _slug(task_name) / f"{side}-v{int(encoding_version)}.npz"

    def entries(self) -> List[Path]:
        """Every logical entry: chunked-layout manifests plus legacy archives."""
        if not self.directory.is_dir():
            return []
        manifests = list(self.directory.glob(f"*/*/{MANIFEST_NAME}"))
        flats = list(self.directory.glob("*/*.npz"))
        return sorted(manifests + flats)

    def clear(self) -> int:
        """Delete every entry; returns how many logical entries were removed."""
        close_chunk_handles()
        removed = 0
        for entry in self.entries():
            removed += 1
            if entry.name == MANIFEST_NAME:
                self._remove_chunk_dir(entry.parent)
            else:
                entry.unlink()
        return removed

    @staticmethod
    def _remove_chunk_dir(chunk_dir: Path, dry_run: bool = False) -> int:
        """Delete one chunked entry directory; returns bytes (to be) removed."""
        removed_bytes = 0
        for path in list(chunk_dir.iterdir()):
            if path.is_file():
                removed_bytes += path.stat().st_size
                if not dry_run:
                    invalidate_chunk_handles([path])
                    path.unlink()
        if not dry_run:
            try:
                chunk_dir.rmdir()
            except OSError:  # pragma: no cover - foreign files left behind
                pass
        return removed_bytes

    @staticmethod
    def _parse_generation(stem: str) -> Optional[Tuple[str, int]]:
        """``side-vN`` -> (side, N); ``None`` for foreign names."""
        side, separator, version = stem.rpartition("-v")
        if not separator or not side or not version.isdigit():
            return None
        return side, int(version)

    def describe_entries(self) -> List[Dict[str, Any]]:
        """One summary row per logical entry (the ``repro cache list`` data).

        Chunked entries report live rows, tombstones, chunk count, the
        number of distinct chunk generations referenced by the manifest,
        on-disk bytes (stale generations included — what ``prune`` would
        reclaim) and the fingerprint CRCs; legacy flat archives report what
        their metadata carries.  Unreadable entries are listed with
        ``rows == None`` rather than skipped, so stale garbage is visible.
        """
        rows: List[Dict[str, Any]] = []
        for entry in self.entries():
            if entry.name == MANIFEST_NAME:
                chunk_dir = entry.parent
                task = chunk_dir.parent.name
                parsed = self._parse_generation(chunk_dir.name) or (chunk_dir.name, -1)
                side, version = parsed
                total_bytes = sum(p.stat().st_size for p in chunk_dir.glob("*.npz"))
                manifest = self._normalise_manifest(self._read_json(entry))
                if manifest is not None:
                    fingerprint = manifest.get("fingerprint", {})
                    chunks = manifest["chunks"]
                    # What the entry would occupy fully rehydrated: the
                    # float64 size of the stored shapes, codec-independent —
                    # against on-disk bytes it shows the compression ratio.
                    decoded_bytes = sum(
                        8 * _element_count(tuple(int(d) for d in shape))
                        for shape in manifest["shapes"].values()
                    )
                    rows.append({
                        "task": task, "side": side, "version": version, "layout": "chunked",
                        "rows": len(manifest["keys"]) - len(manifest["tombstones"]),
                        "tombstones": len(manifest["tombstones"]),
                        "chunks": len(chunks),
                        "generations": len({int(chunk[3]) for chunk in chunks}) if chunks else 0,
                        "bytes": total_bytes,
                        "codec": _manifest_codec(manifest)[0],
                        "decoded_bytes": decoded_bytes,
                        # Compression vs raw float64: decoded size over the
                        # stored chunk bytes (~1.0 for raw entries — npz
                        # framing only; >1 for coded entries).
                        "compression_ratio": (
                            round(decoded_bytes / total_bytes, 2) if total_bytes else None
                        ),
                        "content_crc": fingerprint.get("content_crc"),
                        "weights_crc": (fingerprint.get("model") or {}).get("weights_crc"),
                    })
                else:
                    rows.append({
                        "task": task, "side": side, "version": version, "layout": "chunked",
                        "rows": None, "tombstones": None, "chunks": None, "generations": None,
                        "bytes": total_bytes, "codec": None, "decoded_bytes": None,
                        "compression_ratio": None,
                        "content_crc": None, "weights_crc": None,
                    })
            else:
                task = entry.parent.name
                parsed = self._parse_generation(entry.stem) or (entry.stem, -1)
                side, version = parsed
                try:
                    metadata = load_metadata(entry) or {}
                    fingerprint = metadata.get("fingerprint") or {}
                    keys = metadata.get("keys")
                except _LOAD_ERRORS:
                    metadata, fingerprint, keys = {}, {}, None
                rows.append({
                    "task": task, "side": side, "version": version, "layout": "flat",
                    "rows": len(keys) if isinstance(keys, list) else None,
                    "tombstones": None, "chunks": None, "generations": None,
                    "bytes": entry.stat().st_size,
                    "codec": RAW_CODEC if metadata else None, "decoded_bytes": None,
                    "compression_ratio": None,
                    "content_crc": fingerprint.get("content_crc") if isinstance(fingerprint, dict) else None,
                    "weights_crc": (fingerprint.get("model") or {}).get("weights_crc")
                    if isinstance(fingerprint, dict) else None,
                })
        return rows

    def verify_entries(self) -> List[Dict[str, Any]]:
        """Audit manifests and chunk fingerprints (``repro cache verify``).

        Runs the exact validation :meth:`load` performs — structural
        manifest checks via ``_normalise_manifest``, then each referenced
        chunk's embedded metadata against the manifest's expectations
        (task, side, model fingerprint, row range, per-chunk CRC,
        generation, codec) — but *without* materialising any arrays, so an
        operator can audit a multi-gigabyte shared cache directory in
        manifest-and-header time.  Returns one report per logical entry::

            {"task", "side", "version", "layout",
             "chunks_checked", "ok", "problems": [...]}

        An entry with ``ok == False`` is exactly one that ``load`` would
        treat as a miss (and a distributed worker would refuse to attach).
        """
        reports: List[Dict[str, Any]] = []
        for entry in self.entries():
            if entry.name == MANIFEST_NAME:
                chunk_dir = entry.parent
                task_dir = chunk_dir.parent.name
                side, version = self._parse_generation(chunk_dir.name) or (chunk_dir.name, -1)
                problems: List[str] = []
                checked = 0
                manifest = self._normalise_manifest(self._read_json(entry))
                if manifest is None:
                    problems.append("manifest unreadable or structurally invalid")
                else:
                    task = manifest.get("task", task_dir)
                    fingerprint = manifest.get("fingerprint")
                    model = fingerprint.get("model") if isinstance(fingerprint, dict) else None
                    codec = _manifest_codec(manifest)[0]
                    if manifest.get("side") not in (None, side):
                        problems.append(
                            f"manifest side {manifest.get('side')!r} does not match "
                            f"directory {side!r}"
                        )
                    for start, stop, row_crc, generation in (
                        tuple(chunk) for chunk in manifest["chunks"]
                    ):
                        checked += 1
                        path = chunk_dir / self.chunk_name(start, stop, generation)
                        name = path.name
                        if not path.is_file():
                            problems.append(f"{name}: missing chunk archive")
                            continue
                        try:
                            metadata = load_metadata(path)
                        except _LOAD_ERRORS:
                            metadata = None
                        if metadata is None:
                            problems.append(f"{name}: chunk metadata unreadable (torn write?)")
                        elif not self._chunk_metadata_valid(
                            metadata, task, side, model, start, stop, row_crc, generation, codec
                        ):
                            problems.append(
                                f"{name}: chunk metadata does not match manifest "
                                "(fingerprint, row range, CRC, generation or codec)"
                            )
                reports.append({
                    "task": task_dir, "side": side, "version": version, "layout": "chunked",
                    "chunks_checked": checked, "ok": not problems, "problems": problems,
                })
            else:
                task_dir = entry.parent.name
                side, version = self._parse_generation(entry.stem) or (entry.stem, -1)
                problems = []
                try:
                    metadata = load_metadata(entry)
                except _LOAD_ERRORS:
                    metadata = None
                if metadata is None:
                    problems.append("flat archive metadata unreadable")
                elif metadata.get("format") != FLAT_FORMAT_VERSION:
                    problems.append(
                        f"flat archive format {metadata.get('format')!r} is not readable"
                    )
                reports.append({
                    "task": task_dir, "side": side, "version": version, "layout": "flat",
                    "chunks_checked": 0, "ok": not problems, "problems": problems,
                })
        return reports

    def prune(self, dry_run: bool = False) -> Dict[str, Any]:
        """Remove stale generations (the ``repro cache prune`` action).

        For each ``(task, side)`` only the highest ``-vN`` generation is
        kept (chunked preferred over flat at equal version); within kept
        chunked entries, chunk archives no longer referenced by the manifest
        — superseded chunk generations and leftovers of abandoned extensions
        — are removed too.  With ``dry_run`` nothing is deleted; the counts
        report what a real prune would remove.
        """
        generations: Dict[Tuple[str, str], List[Tuple[int, int, Path]]] = {}
        for entry in self.entries():
            if entry.name == MANIFEST_NAME:
                task, stem, preference = entry.parent.parent.name, entry.parent.name, 1
            else:
                task, stem, preference = entry.parent.name, entry.stem, 0
            parsed = self._parse_generation(stem)
            if parsed is None:
                continue
            side, version = parsed
            generations.setdefault((task, side), []).append((version, preference, entry))
        removed: Dict[str, Any] = {"entries": 0, "files": 0, "bytes": 0, "bytes_by_codec": {}}

        def _count_codec(codec: str, nbytes: int) -> None:
            by_codec = removed["bytes_by_codec"]
            by_codec[codec] = by_codec.get(codec, 0) + int(nbytes)

        for group in generations.values():
            group.sort()
            for version, preference, entry in group[:-1]:
                removed["entries"] += 1
                if entry.name == MANIFEST_NAME:
                    stale = self._normalise_manifest(self._read_json(entry))
                    codec = _manifest_codec(stale)[0] if stale is not None else "unknown"
                    removed["files"] += len(list(entry.parent.glob("*"))) if entry.parent.is_dir() else 0
                    reclaimed = self._remove_chunk_dir(entry.parent, dry_run=dry_run)
                    removed["bytes"] += reclaimed
                    _count_codec(codec, reclaimed)
                else:
                    size = entry.stat().st_size
                    removed["files"] += 1
                    removed["bytes"] += size
                    _count_codec(RAW_CODEC, size)
                    if not dry_run:
                        invalidate_chunk_handles([entry])
                        entry.unlink()
            # Sweep unreferenced chunk archives out of the surviving entry.
            _, _, kept = group[-1]
            if kept.name != MANIFEST_NAME:
                continue
            manifest = self._normalise_manifest(self._read_json(kept))
            if manifest is None:
                continue
            referenced = {
                self.chunk_name(int(a), int(b), int(gen))
                for a, b, _, gen in manifest["chunks"]
            }
            for chunk in kept.parent.glob("*.npz"):
                if chunk.name not in referenced:
                    size = chunk.stat().st_size
                    removed["files"] += 1
                    removed["bytes"] += size
                    _count_codec(_manifest_codec(manifest)[0], size)
                    if not dry_run:
                        invalidate_chunk_handles([chunk])
                        chunk.unlink()
        return removed

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        encodings: "TableEncodings",
        table: Optional["Table"] = None,
    ) -> Path:
        """Persist one table's encodings in row-range chunks; returns the manifest path.

        Chunks are written first (write-then-rename each), the manifest last,
        so concurrent readers (shared cache dirs across processes/nodes)
        never observe a partial entry: either the manifest is present and
        every chunk it references is complete, or the entry misses.

        ``table`` supplies the per-row and per-chunk content CRCs that make
        the entry delta-probeable; without it (synthetic encodings in tests
        and benchmarks) chunks are addressed by their keys alone and only
        serve full loads.
        """
        n = len(encodings)
        codec_name, codec_params = _encodings_codec(encodings)
        bounds = [
            (start, min(start + self.chunk_rows, n))
            for start in range(0, n, self.chunk_rows)
        ]
        chunks = [
            [start, stop, self._range_crc(table, encodings, start, stop), 0]
            for start, stop in bounds
        ]
        self._write_chunks(
            task_name, side, encoding_version, fingerprint, encodings, chunks, 0,
            codec=codec_name,
        )
        row_crcs = (
            table_row_crcs(table)
            if table is not None and len(table) == len(encodings)
            else None
        )
        manifest = {
            "format": CACHE_FORMAT_VERSION,
            "task": task_name,
            "side": side,
            "encoding_version": int(encoding_version),
            "fingerprint": fingerprint,
            "keys": [str(key) for key in encodings.keys],
            "row_crcs": row_crcs,
            "tombstones": [],
            "chunk_rows": int(self.chunk_rows),
            "chunks": chunks,
            "shapes": {name: list(getattr(encodings, name).shape) for name in _ARRAY_KEYS},
            "codec": {"name": codec_name, "params": codec_params},
        }
        return self._write_manifest(task_name, side, encoding_version, manifest)

    def extend(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        table: "Table",
        delta: "TableDelta",
        tail: "TableEncodings",
    ) -> Path:
        """Append-only extension of an entry whose base ``delta`` validated.

        ``tail`` holds the encodings of current rows ``[delta.base_rows, n)``
        only (locally indexed); they are written as *new* chunk archives
        after the existing stored rows and the manifest is rewritten last, so
        the old entry stays fully readable until the new manifest lands
        atomically.  No existing chunk is touched — the whole point of
        content-addressed chunks is that an append re-encodes and rewrites
        only the tail.  For deltas that also carry edits or deletions use
        :meth:`patch`.
        """
        if not delta.is_append_only:
            raise ValueError("extend() only handles append-only deltas; use patch()")
        old = delta.manifest
        old_codec, _ = _manifest_codec(old)
        tail_codec, tail_params = _encodings_codec(tail)
        if tail_codec != old_codec:
            raise ValueError(
                f"cannot extend a {old_codec!r}-codec entry with {tail_codec!r} encodings"
            )
        if tail_params is not None and tail_params != _manifest_codec(old)[1]:
            # Quantize-once: appended rows must be encoded with the entry's
            # fixed params, or old and new chunks would decode inconsistently.
            raise ValueError("appended encodings use different codec params than the entry")
        stored = len(old["keys"])
        appended = len(tail)
        bounds = [
            (start, min(start + self.chunk_rows, stored + appended))
            for start in range(stored, stored + appended, self.chunk_rows)
        ]
        # Appended stored rows [stored, stored + appended) are current rows
        # [base_rows, base_rows + appended) — contiguous at the table's tail.
        shift = delta.base_rows - stored
        new_chunks = [
            [start, stop, row_range_crc(table, start + shift, stop + shift), 0]
            for start, stop in bounds
        ]
        self._write_chunks(
            task_name, side, encoding_version, fingerprint, tail, new_chunks, stored,
            codec=tail_codec,
        )
        old_row_crcs = old.get("row_crcs")
        if old_row_crcs is None and not old["tombstones"]:
            # Migrated-v3 entry: the delta proved every stored row clean, so
            # the per-row CRCs are recoverable from the current table.
            records = table.records()
            old_row_crcs = [record_crc(records[j]) for j in range(delta.base_rows)]
        row_crcs = (
            list(old_row_crcs) + [record_crc(record) for record in table.records()[delta.base_rows:]]
            if old_row_crcs is not None
            else None
        )
        keys = [str(key) for key in old["keys"]] + [str(key) for key in tail.keys]
        shapes = {
            name: [stored + appended] + [int(d) for d in old["shapes"][name][1:]]
            for name in _ARRAY_KEYS
        }
        manifest = {
            "format": CACHE_FORMAT_VERSION,
            "task": task_name,
            "side": side,
            "encoding_version": int(encoding_version),
            "fingerprint": fingerprint,
            "keys": keys,
            "row_crcs": row_crcs,
            "tombstones": list(old["tombstones"]),
            "chunk_rows": int(self.chunk_rows),
            "chunks": [list(chunk) for chunk in old["chunks"]] + new_chunks,
            "shapes": shapes,
            "codec": dict(old.get("codec") or {"name": RAW_CODEC, "params": None}),
        }
        return self._write_manifest(task_name, side, encoding_version, manifest)

    def patch(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        table: "Table",
        delta: "TableDelta",
        encodings: "TableEncodings",
    ) -> Tuple[Path, Dict[str, int]]:
        """Write a mutated table state through to an existing entry.

        ``encodings`` are the *full current table's* encodings (live order).
        Three kinds of append-only writes happen, chunks before manifest:

        * chunks containing edited rows get a **superseding generation**
          (``chunk-a-b-gN.npz``) holding the updated rows — tombstoned rows
          inside them are zero-filled, they are never read again;
        * appended rows become new chunks after the stored rows, exactly as
          :meth:`extend` writes them;
        * deleted rows become **tombstone entries** in the manifest — no
          chunk is rewritten for a pure deletion, the old archive still
          serves the surviving rows.

        The manifest lands last (write-then-rename), so readers see the old
        complete entry or the new one, never a torn state; superseded chunk
        generations stay on disk until :meth:`prune` sweeps them.  Returns
        the manifest path and a work report (``chunks_patched``,
        ``rows_tombstoned``, ``chunks_appended``).
        """
        old = delta.manifest
        old_codec, old_params = _manifest_codec(old)
        patch_codec, patch_params = _encodings_codec(encodings)
        if patch_codec != old_codec:
            raise ValueError(
                f"cannot patch a {old_codec!r}-codec entry with {patch_codec!r} encodings"
            )
        if patch_params is not None and patch_params != old_params:
            raise ValueError("patched encodings use different codec params than the entry")
        stored = len(old["keys"])
        tombstones = set(int(t) for t in old["tombstones"])
        new_dead = [int(row) for row in delta.deleted_rows]
        tombstones.update(new_dead)

        # Stored index -> current position for every surviving row.
        current_of_stored: Dict[int, int] = {
            int(stored_index): position
            for position, stored_index in enumerate(delta.survivor_stored)
        }
        records = table.records()
        old_row_crcs = old.get("row_crcs")
        row_crcs: List[int] = []
        for stored_index in range(stored):
            position = current_of_stored.get(stored_index)
            if position is not None:
                row_crcs.append(record_crc(records[position]))
            elif old_row_crcs is not None:
                row_crcs.append(int(old_row_crcs[stored_index]))
            else:
                row_crcs.append(0)

        # Superseding generations for chunks holding dirty rows.
        dirty_stored = {
            int(delta.survivor_stored[position]) for position in delta.dirty_positions()
        }
        arity_shapes = {
            name: [int(d) for d in old["shapes"][name][1:]] for name in _ARRAY_KEYS
        }
        # Zero-fill templates in the entry's *stored* form: float chunks
        # stay float64 with the logical trailing shape, coded chunks keep
        # their code dtype and code trailing (for PQ that is ``(m,)``, not
        # the manifest's logical shape).
        stored_templates = {}
        for name in _ARRAY_KEYS:
            array = getattr(encodings, name)
            if isinstance(array, CodecArray):
                stored_templates[name] = (list(array.codes.shape[1:]), array.codes.dtype)
            else:
                stored_templates[name] = (
                    [int(d) for d in old["shapes"][name][1:]], np.dtype(np.float64)
                )
        chunks: List[List[int]] = []
        patched = 0
        superseded: List[Path] = []
        for chunk_start, chunk_stop, chunk_crc, generation in old["chunks"]:
            chunk_start, chunk_stop = int(chunk_start), int(chunk_stop)
            if dirty_stored.isdisjoint(range(chunk_start, chunk_stop)):
                chunks.append([chunk_start, chunk_stop, int(chunk_crc), int(generation)])
                continue
            superseded.append(self.chunk_path(
                task_name, side, encoding_version, chunk_start, chunk_stop, int(generation)
            ))
            new_generation = int(generation) + 1
            arrays: Dict[str, np.ndarray] = {
                name: np.zeros(
                    [chunk_stop - chunk_start] + stored_templates[name][0],
                    dtype=stored_templates[name][1],
                )
                for name in _ARRAY_KEYS
            }
            for stored_index in range(chunk_start, chunk_stop):
                position = current_of_stored.get(stored_index)
                if position is None:
                    continue  # tombstoned: zero-filled, never read again
                for name in _ARRAY_KEYS:
                    arrays[name][stored_index - chunk_start] = _stored_row(
                        getattr(encodings, name), position
                    )
            new_crc = _crc_of_ints(row_crcs[chunk_start:chunk_stop])
            self._write_chunk_arrays(
                task_name, side, encoding_version, fingerprint,
                chunk_start, chunk_stop, new_crc, new_generation, arrays,
                codec=patch_codec,
            )
            chunks.append([chunk_start, chunk_stop, new_crc, new_generation])
            patched += 1

        # Appended rows: new stored chunks after the existing layout.
        base, total = delta.appended_range
        appended = total - base
        appended_chunks: List[List[int]] = []
        if appended:
            shift = base - stored
            bounds = [
                (start, min(start + self.chunk_rows, stored + appended))
                for start in range(stored, stored + appended, self.chunk_rows)
            ]
            appended_chunks = [
                [start, stop, row_range_crc(table, start + shift, stop + shift), 0]
                for start, stop in bounds
            ]
            for start, stop, crc, generation in appended_chunks:
                arrays = {
                    name: _stored_rows(getattr(encodings, name), start + shift, stop + shift)
                    for name in _ARRAY_KEYS
                }
                self._write_chunk_arrays(
                    task_name, side, encoding_version, fingerprint,
                    start, stop, crc, generation, arrays,
                    codec=patch_codec,
                )
            row_crcs.extend(record_crc(record) for record in records[base:total])

        keys = [str(key) for key in old["keys"]] + [
            str(key) for key in encodings.keys[base:total]
        ]
        shapes = {
            name: [stored + appended] + arity_shapes[name] for name in _ARRAY_KEYS
        }
        manifest = {
            "format": CACHE_FORMAT_VERSION,
            "task": task_name,
            "side": side,
            "encoding_version": int(encoding_version),
            "fingerprint": fingerprint,
            "keys": keys,
            "row_crcs": row_crcs,
            "tombstones": sorted(tombstones),
            "chunk_rows": int(self.chunk_rows),
            "chunks": chunks + appended_chunks,
            "shapes": shapes,
            "codec": dict(old.get("codec") or {"name": RAW_CODEC, "params": None}),
        }
        path = self._write_manifest(task_name, side, encoding_version, manifest)
        # The old generations are dead the moment the manifest lands: no
        # future read resolves to them, so drop their cached handles now
        # rather than pinning stale archives until LRU eviction.
        invalidate_chunk_handles(superseded)
        return path, {
            "chunks_patched": patched,
            "rows_tombstoned": len(new_dead),
            "chunks_appended": len(appended_chunks),
        }

    @staticmethod
    def _range_crc(
        table: Optional["Table"], encodings: "TableEncodings", start: int, stop: int
    ) -> int:
        if table is not None and len(table) == len(encodings):
            return row_range_crc(table, start, stop)
        return _keys_crc(encodings.keys[start:stop])

    def _write_chunks(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        encodings: "TableEncodings",
        chunks: List[List[int]],
        offset: int,
        codec: str = RAW_CODEC,
    ) -> None:
        """Write chunk archives for ``chunks`` (global row ranges) from
        ``encodings`` indexed locally at ``offset``."""
        for start, stop, crc, generation in chunks:
            arrays = {
                name: _stored_rows(getattr(encodings, name), start - offset, stop - offset)
                for name in _ARRAY_KEYS
            }
            self._write_chunk_arrays(
                task_name, side, encoding_version, fingerprint,
                start, stop, crc, generation, arrays, codec=codec,
            )

    def _write_chunk_arrays(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        start: int,
        stop: int,
        crc: int,
        generation: int,
        arrays: Dict[str, np.ndarray],
        codec: str = RAW_CODEC,
    ) -> None:
        chunk_dir = self.dir_for(task_name, side, encoding_version)
        chunk_dir.mkdir(parents=True, exist_ok=True)
        model = fingerprint.get("model") if isinstance(fingerprint, dict) else None
        path = self.chunk_path(task_name, side, encoding_version, start, stop, generation)
        # The model fingerprint and row CRC ride in every chunk, not just
        # the manifest: concurrent writers of the same key (e.g.
        # differently-seeded models at the same version) overwrite chunk
        # paths in place, so a reader holding the *other* writer's
        # manifest must be able to reject a foreign chunk instead of
        # mixing encodings.  Deliberately *not* the whole-table CRC —
        # chunks must stay addressable after an append changes it.  The
        # codec name rides along for the same reason: a reader must never
        # decode int8 codes as floats or vice versa.
        metadata = {
            "format": CACHE_FORMAT_VERSION,
            "task": task_name,
            "side": side,
            "encoding_version": int(encoding_version),
            "model": model,
            "start": int(start),
            "stop": int(stop),
            "row_crc": int(crc),
            "generation": int(generation),
            "codec": str(codec),
        }
        # The temp name keeps the .npz suffix (np.savez appends it
        # otherwise) and the pid so parallel writers cannot collide.
        temporary = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
        save_state_dict(arrays, temporary, metadata=metadata)
        os.replace(temporary, path)

    def _write_manifest(
        self, task_name: str, side: str, encoding_version: int, manifest: Dict[str, Any]
    ) -> Path:
        manifest_path = self.manifest_path(task_name, side, encoding_version)
        manifest_path.parent.mkdir(parents=True, exist_ok=True)
        temporary = manifest_path.with_name(f".{MANIFEST_NAME}.{os.getpid()}.tmp")
        temporary.write_text(json.dumps(manifest))
        os.replace(temporary, manifest_path)
        return manifest_path

    def save_flat(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        encodings: "TableEncodings",
    ) -> Path:
        """Write an entry in the *legacy* flat single-archive layout.

        Retained so migration can be exercised end to end (tests, and the
        flat-vs-chunked load benchmark); new entries always go through
        :meth:`save`.
        """
        path = self.flat_path_for(task_name, side, encoding_version)
        metadata = {
            "format": FLAT_FORMAT_VERSION,
            "task": task_name,
            "side": side,
            "encoding_version": int(encoding_version),
            "fingerprint": fingerprint,
            "keys": [str(key) for key in encodings.keys],
        }
        state = {name: getattr(encodings, name) for name in _ARRAY_KEYS}
        temporary = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
        save_state_dict(state, temporary, metadata=metadata)
        os.replace(temporary, path)
        return path

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        counters: Optional["EngineCounters"] = None,
        table: Optional["Table"] = None,
    ) -> Optional["TableEncodings"]:
        """Load a matching entry in full, or ``None`` on any kind of miss.

        Corrupt or foreign entries are treated as misses rather than errors:
        a cache must never be able to fail a resolution run.  A legacy flat
        archive found under the key is migrated to the chunked layout on the
        way through; a format-3 manifest is rewritten as format 4 (one-shot)
        — when ``table`` is supplied, its per-row CRCs are recovered on the
        spot (the matched fingerprint proves the content identical), making
        the migrated entry fully delta-probeable.
        """
        manifest = self._read_manifest(task_name, side, encoding_version, fingerprint)
        if manifest is not None:
            if manifest.get("_migrated_from") in (V3_FORMAT_VERSION, V4_FORMAT_VERSION):
                manifest = self._migrate_manifest(task_name, side, encoding_version, manifest, table)
            live = len(manifest["keys"]) - len(manifest["tombstones"])
            return self._load_rows(manifest, task_name, side, encoding_version, 0, live, counters)
        return self._migrate_flat(task_name, side, encoding_version, fingerprint)

    def load_range(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        start: int,
        stop: int,
        counters: Optional["EngineCounters"] = None,
    ) -> Optional["TableEncodings"]:
        """Load only the live rows ``[start, stop)`` of a matching entry.

        Reads just the chunks overlapping the range — the lazy warm path for
        row-range-sharded consumers.  Row indices in the returned encodings
        are local to the range (0-based), mirroring
        :meth:`repro.engine.shard.ShardedEncodingStore.table_shard` views.
        Returns ``None`` on any miss, exactly like :meth:`load`.
        """
        if start < 0 or stop < start:
            raise ValueError(f"invalid row range [{start}, {stop})")
        manifest = self._read_manifest(task_name, side, encoding_version, fingerprint)
        if manifest is not None:
            live = len(manifest["keys"]) - len(manifest["tombstones"])
            stop = min(stop, live)
            return self._load_rows(manifest, task_name, side, encoding_version, start, stop, counters)
        migrated = self._migrate_flat(task_name, side, encoding_version, fingerprint)
        if migrated is None:
            return None
        return _slice_encodings(migrated, start, min(stop, len(migrated)))

    # ------------------------------------------------------------------
    # Delta probing (the incremental-resolution entry point)
    # ------------------------------------------------------------------
    def delta(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        fingerprint: Dict[str, Any],
        table: "Table",
    ) -> Optional["TableDelta"]:
        """Probe an entry against the *current* table state, row by row.

        Requires the model half of ``fingerprint`` to match the manifest's
        (a different model invalidates every chunk), then diffs the stored
        live rows against the table by record id: surviving rows are
        compared by per-row CRC (clean or *dirty*), vanished rows become
        ``deleted_rows``, and trailing new rows the ``appended_range``.
        Entries without per-row CRCs (migrated v3, keys-only saves) degrade
        to chunk-granular validation: a chunk with any deletion, or whose
        range CRC no longer matches, marks all its surviving rows dirty.
        Returns ``None`` when nothing is reusable (no clean surviving rows).
        """
        manifest = self._read_manifest_loose(task_name, side, encoding_version)
        if manifest is None:
            return None
        recorded = manifest.get("fingerprint")
        if not isinstance(recorded, dict):
            return None
        if recorded.get("model") != fingerprint.get("model"):
            return None
        tombstones = set(manifest["tombstones"])
        stored_keys = manifest["keys"]
        live_stored = [i for i in range(len(stored_keys)) if i not in tombstones]
        live_keys = [stored_keys[i] for i in live_stored]
        row_crcs = manifest.get("row_crcs")
        live_crcs = [row_crcs[i] for i in live_stored] if row_crcs is not None else None
        diff = diff_rows(live_keys, live_crcs, table)
        if diff is None:
            return None
        survivor_stored = tuple(live_stored[j] for j in diff.survivor_old)
        deleted_rows = tuple(live_stored[j] for j in diff.deleted_old)
        if diff.dirty_new is not None:
            dirty_positions = list(diff.dirty_new)
        else:
            dirty_positions = self._chunk_granular_dirty(
                manifest, table, survivor_stored, deleted_rows, tombstones
            )
        if len(dirty_positions) >= len(survivor_stored):
            return None  # nothing provably clean to reuse
        dirty_stored = {survivor_stored[position] for position in dirty_positions}
        unusable = tombstones | set(deleted_rows) | dirty_stored
        valid_chunks = tuple(
            (int(a), int(b), int(crc), int(gen))
            for a, b, crc, gen in manifest["chunks"]
            if unusable.isdisjoint(range(int(a), int(b)))
        )
        return TableDelta(
            manifest=manifest,
            valid_chunks=valid_chunks,
            dirty_ranges=group_ranges(sorted(dirty_positions)),
            appended_range=diff.appended_range,
            deleted_rows=deleted_rows,
            survivor_stored=survivor_stored,
            total_rows=len(table),
        )

    @staticmethod
    def _chunk_granular_dirty(
        manifest: Dict[str, Any],
        table: "Table",
        survivor_stored: Tuple[int, ...],
        deleted_rows: Tuple[int, ...],
        tombstones: set,
    ) -> List[int]:
        """Dirty current positions for entries without per-row CRCs.

        Chunk-level fallback: a chunk validates only when every stored row in
        it is live and surviving *and* the running CRC over the corresponding
        current rows matches the chunk CRC recorded at save time.  Any other
        chunk marks all its surviving rows dirty (a safe over-approximation —
        at worst chunk-aligned re-encoding instead of row-exact).
        """
        position_of_stored = {
            stored_index: position for position, stored_index in enumerate(survivor_stored)
        }
        dead = tombstones | set(deleted_rows)
        dirty: List[int] = []
        for chunk_start, chunk_stop, chunk_crc, _generation in manifest["chunks"]:
            chunk_start, chunk_stop = int(chunk_start), int(chunk_stop)
            rows = range(chunk_start, chunk_stop)
            surviving = [position_of_stored[i] for i in rows if i in position_of_stored]
            if not surviving:
                continue
            if dead.isdisjoint(rows) and len(surviving) == len(rows):
                # All rows present: surviving positions are contiguous.
                if row_range_crc(table, surviving[0], surviving[-1] + 1) == int(chunk_crc):
                    continue
            dirty.extend(surviving)
        return dirty

    def load_prefix(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        delta: "TableDelta",
        counters: Optional["EngineCounters"] = None,
    ) -> Optional["TableEncodings"]:
        """The first ``delta.base_rows`` live rows of a probed entry.

        The append-only reuse path (and its historical name): for a pure
        append the base rows are exactly the reusable prefix.  Reads only
        the chunks covering it; returns ``None`` if any chunk vanished or
        was overwritten since the probe (the usual degrade-to-miss
        contract).
        """
        return self._load_rows(
            delta.manifest, task_name, side, encoding_version, 0, delta.base_rows, counters
        )

    def load_reused(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        delta: "TableDelta",
        counters: Optional["EngineCounters"] = None,
    ) -> Optional[Tuple[Tuple[int, ...], "TableEncodings"]]:
        """The clean surviving rows of a probed entry, with their positions.

        Returns ``(current_positions, encodings)`` where row ``j`` of the
        encodings is the current table's row ``current_positions[j]`` —
        everything the store can serve from disk; dirty and appended rows
        must be encoded and spliced in by the caller.  Dirty chunks still
        serve their *clean* rows (the superseding generation has not been
        written yet at probe time).  ``None`` on any chunk-level miss.
        """
        positions, stored_indices = delta.reused_rows()
        loaded = self._load_stored_rows(
            delta.manifest, task_name, side, encoding_version, stored_indices, counters
        )
        if loaded is None:
            return None
        return positions, loaded

    # ------------------------------------------------------------------
    def _read_json(self, path: Path) -> Optional[Dict[str, Any]]:
        if not path.is_file():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def _read_manifest(
        self, task_name: str, side: str, encoding_version: int, fingerprint: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """The validated manifest of a key, or ``None`` on any mismatch."""
        manifest = self._read_manifest_loose(task_name, side, encoding_version)
        if manifest is None or manifest.get("fingerprint") != fingerprint:
            return None
        return manifest

    def _read_manifest_loose(
        self, task_name: str, side: str, encoding_version: int
    ) -> Optional[Dict[str, Any]]:
        """A structurally valid manifest of a key, *without* checking the
        table fingerprint — the delta probe validates content row-wise.

        Format-3 manifests are normalised to the v4 shape in memory (chunk
        generation 0, no tombstones, no per-row CRCs) and tagged with
        ``_migrated_from`` so :meth:`load` can persist the upgrade.
        """
        path = self.manifest_path(task_name, side, encoding_version)
        manifest = self._normalise_manifest(self._read_json(path))
        if manifest is None:
            return None
        if manifest.get("task") != task_name or manifest.get("side") != side:
            return None
        try:
            if int(manifest.get("encoding_version", -1)) != int(encoding_version):
                return None
        except (TypeError, ValueError):
            return None
        return manifest

    @staticmethod
    def _normalise_manifest(manifest: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
        """Structural validation plus in-memory v3/v4 -> v5 normalisation.

        Both older chunked formats normalise to the current shape without
        touching disk: v3 gains empty tombstones, chunk generations and (no)
        per-row CRCs; v3 and v4 alike gain the implicit ``raw`` codec their
        float chunks were written under.  The ``_migrated_from`` tag lets
        :meth:`load` persist the upgrade one-shot.
        """
        if not isinstance(manifest, dict):
            return None
        fmt = manifest.get("format")
        if fmt == V3_FORMAT_VERSION:
            chunks = manifest.get("chunks")
            if not isinstance(chunks, list):
                return None
            manifest = dict(
                manifest,
                chunks=[list(chunk) + [0] for chunk in chunks if isinstance(chunk, list)],
                row_crcs=None,
                tombstones=[],
                codec={"name": RAW_CODEC, "params": None},
                _migrated_from=V3_FORMAT_VERSION,
            )
        elif fmt == V4_FORMAT_VERSION:
            manifest = dict(
                manifest,
                codec={"name": RAW_CODEC, "params": None},
                _migrated_from=V4_FORMAT_VERSION,
            )
        elif fmt != CACHE_FORMAT_VERSION:
            return None
        codec = manifest.get("codec")
        if not (isinstance(codec, dict) and isinstance(codec.get("name"), str)):
            return None
        if codec["name"] != RAW_CODEC and not isinstance(codec.get("params"), dict):
            return None
        keys = manifest.get("keys")
        chunks = manifest.get("chunks")
        shapes = manifest.get("shapes")
        tombstones = manifest.get("tombstones")
        row_crcs = manifest.get("row_crcs")
        if not isinstance(keys, list) or not isinstance(chunks, list) or not isinstance(shapes, dict):
            return None
        if set(shapes) != set(_ARRAY_KEYS):
            return None
        if not isinstance(tombstones, list):
            return None
        if not all(isinstance(t, int) and 0 <= t < len(keys) for t in tombstones):
            return None
        if len(set(tombstones)) != len(tombstones):
            return None
        if row_crcs is not None and (
            not isinstance(row_crcs, list)
            or len(row_crcs) != len(keys)
            # A corrupt element would otherwise surface as a raise deep in
            # the delta probe — a cache must never fail a resolution run.
            or not all(isinstance(crc, int) for crc in row_crcs)
        ):
            return None
        # Chunks must tile [0, n) contiguously and in order — anything else
        # (hand-edited manifest, mixed-up files) is a stale manifest: miss.
        position = 0
        for chunk in chunks:
            if not (isinstance(chunk, list) and len(chunk) == 4):
                return None
            chunk_start, chunk_stop, chunk_crc, generation = chunk
            if not isinstance(chunk_crc, int) or not isinstance(generation, int):
                return None
            if chunk_start != position or chunk_stop <= chunk_start or generation < 0:
                return None
            position = chunk_stop
        if position != len(keys):
            return None
        return manifest

    def _migrate_manifest(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        manifest: Dict[str, Any],
        table: Optional["Table"],
    ) -> Dict[str, Any]:
        """Persist the v5 upgrade of a normalised v3/v4 manifest (one-shot).

        Chunk archives are untouched — only the manifest is rewritten, so
        the served arrays are byte-identical before and after migration
        (the implicit codec of both older formats is ``raw``).  For a v3
        entry whose per-row CRCs are missing, the caller has already
        matched the full fingerprint, so when the table is in hand its
        per-row CRCs describe the stored content exactly and the migrated
        entry becomes row-precisely probeable.
        """
        upgraded = {key: value for key, value in manifest.items() if key != "_migrated_from"}
        upgraded["format"] = CACHE_FORMAT_VERSION
        if upgraded.get("row_crcs") is None and table is not None and len(table) == len(manifest["keys"]):
            upgraded["row_crcs"] = table_row_crcs(table)
        self._write_manifest(task_name, side, encoding_version, upgraded)
        return upgraded

    def _live_stored_indices(self, manifest: Dict[str, Any]) -> List[int]:
        """Stored index of every live row, ascending (live -> stored map)."""
        tombstones = manifest["tombstones"]
        if not tombstones:
            return list(range(len(manifest["keys"])))
        dead = set(tombstones)
        return [i for i in range(len(manifest["keys"])) if i not in dead]

    def _load_rows(
        self,
        manifest: Dict[str, Any],
        task_name: str,
        side: str,
        encoding_version: int,
        start: int,
        stop: int,
        counters: Optional["EngineCounters"],
    ) -> Optional["TableEncodings"]:
        """Materialise live rows ``[start, stop)`` from the chunks covering them."""
        live = self._live_stored_indices(manifest)
        stop = min(stop, len(live))
        stored_indices = tuple(live[start:stop]) if start < stop else ()
        return self._load_stored_rows(
            manifest, task_name, side, encoding_version, stored_indices, counters
        )

    def _load_stored_rows(
        self,
        manifest: Dict[str, Any],
        task_name: str,
        side: str,
        encoding_version: int,
        stored_indices: Sequence[int],
        counters: Optional["EngineCounters"],
    ) -> Optional["TableEncodings"]:
        """Materialise the given stored rows (ascending) as local encodings.

        For quantized entries the materialised arrays are
        :class:`~repro.engine.quant.CodecArray` views over the int8 chunk
        data (memory-mapped where the cache maps) — floats are rehydrated
        only when a consumer gathers rows, so a cold table never builds its
        full float store.
        """
        from repro.engine.store import TableEncodings

        codec_name, codec_params = _manifest_codec(manifest)
        on_decode = counters.record_bytes_decoded if counters is not None else None

        def _finalise(name: str, array: np.ndarray):
            if codec_name == RAW_CODEC:
                return array
            params = params_from_json(codec_name, codec_params[name])
            if array.dtype != params.code_dtype:
                raise ValueError(
                    f"{codec_name} chunk holds {array.dtype}, expected {params.code_dtype}"
                )
            return CodecArray(array, params, on_decode=on_decode)

        def _empty_stored(name: str) -> np.ndarray:
            # The stored (code) trailing shape, which for PQ differs from
            # the manifest's logical shapes — ask the params.
            if codec_name == RAW_CODEC:
                trailing = [int(d) for d in manifest["shapes"][name][1:]]
                return np.zeros([0] + trailing, dtype=np.float64)
            params = params_from_json(codec_name, codec_params[name])
            return np.zeros((0,) + params.code_trailing, dtype=params.code_dtype)

        keys = tuple(manifest["keys"][i] for i in stored_indices)
        if not stored_indices:
            try:
                empty = {
                    name: _finalise(name, _empty_stored(name)) for name in _ARRAY_KEYS
                }
            except _LOAD_ERRORS:
                return None
            return TableEncodings(keys=keys, row_index={}, **empty)
        lo, hi = stored_indices[0], stored_indices[-1] + 1
        pieces: Dict[str, List[np.ndarray]] = {name: [] for name in _ARRAY_KEYS}
        model = manifest["fingerprint"].get("model")
        served = 0
        for chunk_start, chunk_stop, chunk_crc, generation in manifest["chunks"]:
            chunk_start, chunk_stop = int(chunk_start), int(chunk_stop)
            if chunk_stop <= lo or chunk_start >= hi:
                continue
            first = bisect_left(stored_indices, chunk_start)
            last = bisect_right(stored_indices, chunk_stop - 1)
            if first == last:
                continue
            local = [stored_indices[j] - chunk_start for j in range(first, last)]
            arrays = self._read_chunk(
                task_name, side, encoding_version, model,
                chunk_start, chunk_stop, int(chunk_crc), int(generation),
                codec=codec_name,
            )
            if arrays is None:
                return None
            if counters is not None:
                counters.record_chunk_load()
            contiguous = local[-1] - local[0] + 1 == len(local)
            gather = np.asarray(local, dtype=np.intp)
            for name in _ARRAY_KEYS:
                if arrays[name].shape[0] != chunk_stop - chunk_start:
                    return None
                if contiguous:
                    # A slice keeps zero-copy (possibly memory-mapped) views.
                    pieces[name].append(arrays[name][local[0] : local[-1] + 1])
                else:
                    pieces[name].append(np.asarray(arrays[name])[gather])
            served += len(local)
        if served != len(stored_indices):
            return None
        try:
            merged = {
                # A range served by a single chunk stays a zero-copy (possibly
                # memory-mapped) view; multi-chunk ranges concatenate.
                name: _finalise(name, parts[0] if len(parts) == 1 else np.concatenate(parts))
                for name, parts in pieces.items()
            }
        except _LOAD_ERRORS:
            return None
        if merged["irs"].shape[0] != len(keys):
            return None
        return TableEncodings(
            keys=keys,
            irs=merged["irs"],
            mu=merged["mu"],
            sigma=merged["sigma"],
            row_index={key: row for row, key in enumerate(keys)},
        )

    def _read_chunk(
        self,
        task_name: str,
        side: str,
        encoding_version: int,
        model: Optional[Dict[str, Any]],
        start: int,
        stop: int,
        row_crc: int,
        generation: int = 0,
        codec: str = RAW_CODEC,
    ) -> Optional[Dict[str, np.ndarray]]:
        """One chunk generation's arrays, validated against its metadata."""
        path = self.chunk_path(task_name, side, encoding_version, start, stop, generation)
        handle = _chunk_handle(path)
        if handle is not None:
            if not self._chunk_metadata_valid(
                handle.metadata, task_name, side, model, start, stop, row_crc, generation, codec
            ):
                return None
            if self.mmap_mode:
                try:
                    return handle.mmap_arrays(self.mmap_mode)
                except _LOAD_ERRORS:
                    pass  # degrade to an eager read of the same chunk
            try:
                return handle.read_arrays()
            except _LOAD_ERRORS:
                return None
        # Raw-read path unavailable (missing file, compressed or foreign
        # archive): fall through to the np.load reader.
        if not path.is_file():
            return None
        try:
            metadata = load_metadata(path)
            if metadata is None or not self._chunk_metadata_valid(
                metadata, task_name, side, model, start, stop, row_crc, generation, codec
            ):
                return None
            with np.load(path, allow_pickle=False) as archive:
                return {name: archive[name] for name in _ARRAY_KEYS}
        except _LOAD_ERRORS:
            # BadZipFile/struct.error cover truncated archives (killed
            # writer) whose zip header still looks plausible.
            return None

    @staticmethod
    def _chunk_metadata_valid(
        metadata: Dict[str, Any],
        task_name: str,
        side: str,
        model: Optional[Dict[str, Any]],
        start: int,
        stop: int,
        row_crc: int,
        generation: int,
        codec: str = RAW_CODEC,
    ) -> bool:
        """Whether one chunk's embedded metadata matches what the manifest expects."""
        try:
            if metadata.get("format") not in _READABLE_CHUNK_FORMATS:
                return False
            if metadata.get("task") != task_name or metadata.get("side") != side:
                return False
            if metadata.get("model") != model:
                return False
            if int(metadata.get("row_crc", -1)) != int(row_crc):
                return False
            if int(metadata.get("start", -1)) != start or int(metadata.get("stop", -1)) != stop:
                return False
            if int(metadata.get("generation", 0)) != int(generation):
                return False
            # Pre-codec chunks carry no codec tag: they are implicitly raw.
            if str(metadata.get("codec", RAW_CODEC)) != str(codec):
                return False
        except (TypeError, ValueError):
            return False
        return True

    # ------------------------------------------------------------------
    # Legacy flat layout: one-shot migration read path
    # ------------------------------------------------------------------
    def _migrate_flat(
        self, task_name: str, side: str, encoding_version: int, fingerprint: Dict[str, Any]
    ) -> Optional["TableEncodings"]:
        """Serve a legacy flat archive, rewriting it as a chunked entry.

        The migration has no table in hand, so the rewritten chunks carry
        keys-only CRCs: the entry serves full loads but stays opaque to
        delta probes until the next real (table-backed) save refreshes it.
        """
        encodings = self._load_flat(task_name, side, encoding_version, fingerprint)
        if encodings is None:
            return None
        self.save(task_name, side, encoding_version, fingerprint, encodings)
        try:
            self.flat_path_for(task_name, side, encoding_version).unlink()
        except OSError:  # pragma: no cover - concurrent migration already removed it
            pass
        return encodings

    def _load_flat(
        self, task_name: str, side: str, encoding_version: int, fingerprint: Dict[str, Any]
    ) -> Optional["TableEncodings"]:
        """Reader for the pre-chunking single-archive layout."""
        from repro.engine.store import TableEncodings

        path = self.flat_path_for(task_name, side, encoding_version)
        if not path.is_file():
            return None
        try:
            metadata = load_metadata(path)
            if metadata is None or metadata.get("format") != FLAT_FORMAT_VERSION:
                return None
            if metadata.get("task") != task_name or metadata.get("side") != side:
                return None
            if int(metadata.get("encoding_version", -1)) != int(encoding_version):
                return None
            if metadata.get("fingerprint") != fingerprint:
                return None
            keys = tuple(metadata["keys"])
            with np.load(path, allow_pickle=False) as archive:
                arrays = {name: archive[name] for name in _ARRAY_KEYS}
        except _LOAD_ERRORS:
            return None
        if len(keys) != arrays["irs"].shape[0]:
            return None
        return TableEncodings(
            keys=keys,
            irs=arrays["irs"],
            mu=arrays["mu"],
            sigma=arrays["sigma"],
            row_index={key: row for row, key in enumerate(keys)},
        )

    def __repr__(self) -> str:
        return (
            f"PersistentEncodingCache({str(self.directory)!r}, "
            f"chunk_rows={self.chunk_rows}, entries={len(self.entries())})"
        )


def _slice_encodings(encodings: "TableEncodings", start: int, stop: int) -> "TableEncodings":
    """Row-range view of in-memory encodings with a local row index.

    Codec-preserving: quantized arrays stay :class:`CodecArray` views over
    the sliced codes instead of decoding the range.
    """
    from repro.engine.store import TableEncodings

    def _rows(array):
        if isinstance(array, CodecArray):
            return array.row_slice(start, stop)
        return array[start:stop]

    keys = encodings.keys[start:stop]
    return TableEncodings(
        keys=keys,
        irs=_rows(encodings.irs),
        mu=_rows(encodings.mu),
        sigma=_rows(encodings.sigma),
        row_index={key: row for row, key in enumerate(keys)},
    )
