"""The batched encoding engine: one shared, invalidation-aware cache.

Every stage of the decoupled pipeline (blocking, matching, active learning,
evaluation) consumes the same two transferable artefacts of a fitted
representation model: the IR arrays of a table and the latent Gaussians
``(mu, sigma)`` its VAE encodes them to.  Historically each stage recomputed
both — the representation model was asked to re-tokenize, re-project and
re-encode whole tables per call, and candidate scoring walked per-pair Python
loops.

:class:`EncodingStore` computes each table's encodings exactly once, in one
batched pass, and hands shared read-only views to every consumer.  Candidate
pairs become *index arrays* into the row-major cached encodings, so pair
featurisation and scoring are pure gather-then-matmul operations:

* :meth:`pair_ir_arrays` — the matcher's (left, right, labels) input tensors;
* :meth:`pair_latent_distances` — the AL sampler's diversity distances;
* :meth:`pair_tuple_wasserstein` — Algorithm 1's bootstrap ranking distances.

The store is invalidation-aware: it watches the representation model's
``encoding_version`` token (bumped on every (re)fit, IR refit and weight
load) and transparently recomputes when the model changed, so transferred or
fine-tuned representations can never serve stale encodings.  Cache traffic is
reported through :class:`repro.eval.timing.EngineCounters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.pairs import LabeledPair, RecordPair
from repro.data.schema import ERTask, Table
from repro.eval.timing import EngineCounters, engine_counters

if TYPE_CHECKING:  # pragma: no cover - break the engine <-> core import cycle
    from repro.core.representation import EntityEncoding, EntityRepresentationModel
    from repro.engine.persist import PersistentEncodingCache

SIDES = ("left", "right")

#: Anything with ``left_id``/``right_id`` attributes addresses a pair.
PairLike = Union[RecordPair, LabeledPair]


@dataclass(frozen=True)
class TableEncodings:
    """Immutable batched encodings of one table.

    ``irs`` has shape (n_records, arity, ir_dim); ``mu`` and ``sigma`` have
    shape (n_records, arity, latent_dim).  ``row_index`` maps record ids to
    row positions, making record-id lookups O(1) and pair lookups gathers.
    """

    keys: Tuple[str, ...]
    irs: np.ndarray
    mu: np.ndarray
    sigma: np.ndarray
    row_index: Dict[str, int]

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def arity(self) -> int:
        return self.irs.shape[1]

    def rows(self, record_ids: Sequence[str]) -> np.ndarray:
        """Row positions of ``record_ids`` as an integer gather index."""
        index = self.row_index
        try:
            return np.fromiter((index[rid] for rid in record_ids), dtype=np.intp, count=len(record_ids))
        except KeyError as exc:
            raise KeyError(f"record {exc.args[0]!r} not present in cached encodings") from exc

    def flat_mu(self) -> np.ndarray:
        """Record-level vectors for LSH search: concatenated attribute means."""
        return self.mu.reshape(len(self), -1)

    def entity_encoding(self) -> "EntityEncoding":
        """The legacy :class:`EntityEncoding` view (shared arrays, not copies)."""
        from repro.core.representation import EntityEncoding

        return EntityEncoding(keys=self.keys, mu=self.mu, sigma=self.sigma)


class EncodingStore:
    """Keyed cache of a task's table encodings with vectorized pair scoring.

    Parameters
    ----------
    representation:
        A fitted (or transferred) :class:`EntityRepresentationModel`.
    task:
        The ER task whose two tables the store serves.
    counters:
        Instrumentation sink; defaults to the process-wide
        :func:`repro.eval.timing.engine_counters`.
    persistent:
        Optional :class:`repro.engine.persist.PersistentEncodingCache`.
        When set, in-memory misses probe the disk cache before encoding and
        computed encodings are written back, so repeated runs on the same
        task and representation skip table encoding entirely.
    """

    def __init__(
        self,
        representation: EntityRepresentationModel,
        task: ERTask,
        counters: Optional[EngineCounters] = None,
        persistent: Optional["PersistentEncodingCache"] = None,
    ) -> None:
        self.representation = representation
        self.task = task
        self.counters = counters if counters is not None else engine_counters()
        self.persistent = persistent
        self._cache: Dict[str, TableEncodings] = {}
        self._cached_version: Optional[int] = None
        #: Memoized table fingerprints: side -> (version, n_rows, fingerprint).
        #: Within a run, tables are treated as append-only — a fingerprint is
        #: recomputed when the model version or the row count changes, so
        #: repeated probes of an unchanged table never re-CRC its rows.
        self._fingerprints: Dict[str, Tuple[int, int, Dict[str, Any]]] = {}

    # ------------------------------------------------------------------
    # Cache lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop all cached encodings (next access recomputes)."""
        self._cache.clear()
        self._fingerprints.clear()
        self._cached_version = None

    def _check_version(self) -> None:
        version = self.representation.encoding_version
        if self._cached_version != version:
            self._cache.clear()
            self._fingerprints.clear()
            self._cached_version = version

    def table_fingerprint(self, side: str) -> Dict[str, Any]:
        """The (memoized) persistent-cache fingerprint of one side's table.

        Computing a fingerprint CRCs every row, so the result is cached per
        ``(side, encoding_version, row count)`` and the
        ``fingerprints_computed`` counter reports how many times the rows
        were actually walked.
        """
        from repro.engine.persist import encoding_fingerprint

        table = self._table_of(side)
        version = self.representation.encoding_version
        memo = self._fingerprints.get(side)
        if memo is not None and memo[0] == version and memo[1] == len(table):
            return memo[2]
        fingerprint = encoding_fingerprint(self.representation, table)
        self.counters.record_fingerprint()
        self._fingerprints[side] = (version, len(table), fingerprint)
        return fingerprint

    def _table_of(self, side: str) -> Table:
        if side == "left":
            return self.task.left
        if side == "right":
            return self.task.right
        raise ValueError(f"side must be one of {SIDES}, got {side!r}")

    def _lookup(self, side: str) -> Tuple[TableEncodings, bool]:
        """(encodings, served_from_cache) — computes on miss, never counts hits.

        On an in-memory miss the persistent cache (when attached) is probed
        first — an exact match, then a chunk-wise *delta* probe that serves
        the valid prefix of a grown table from disk and encodes only the new
        tail rows; only a full miss pays for the whole IR transform and VAE
        forward pass, and every computed result is written back to disk for
        the next run.  A cached table whose backing :class:`Table` grew since
        it was encoded is refreshed through the same append-only path.
        """
        self._check_version()
        cached = self._cache.get(side)
        if cached is not None:
            if len(cached) == len(self._table_of(side)):
                return cached, True
            refreshed = self._refresh_grown(side, cached)
            if refreshed is not None:
                self.counters.record_miss()
                self._cache[side] = refreshed
                return refreshed, False
            # Shrunk or edited in place: nothing provably reusable.
            del self._cache[side]
        self.counters.record_miss()
        table = self._table_of(side)
        encodings = self._load_persistent(side, table)
        if encodings is None:
            encodings = self._compute(side, table)
            self._save_persistent(side, table, encodings)
        self._cache[side] = encodings
        # Memoize the fingerprint at encode time: the append-only refresh
        # path above needs the previous table state's content CRC to prove
        # the prefix unchanged, and computing it now (one CRC pass) is cheap
        # next to the encode that just happened.
        self.table_fingerprint(side)
        return encodings, False

    def _encode_rows(self, table: Table) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(irs, mu, sigma) of one table-shaped record collection."""
        representation = self.representation
        irs = representation.ir_generator.transform_table(table)
        n, arity, _ = irs.shape
        if n == 0:
            latent = representation.config.latent_dim
            mu = np.zeros((0, arity, latent))
            sigma = np.zeros((0, arity, latent))
        else:
            flat_mu, flat_sigma = representation.vae.encode_numpy(irs.reshape(n * arity, -1))
            latent = flat_mu.shape[-1]
            mu = flat_mu.reshape(n, arity, latent)
            sigma = flat_sigma.reshape(n, arity, latent)
        return irs, mu, sigma

    def _compute(self, side: str, table: Table) -> TableEncodings:
        """Encode one table from scratch (the work both caches exist to avoid)."""
        irs, mu, sigma = self._encode_rows(table)
        self.counters.record_encode()
        keys = tuple(table.record_ids())
        return TableEncodings(
            keys=keys,
            irs=irs,
            mu=mu,
            sigma=sigma,
            row_index={key: row for row, key in enumerate(keys)},
        )

    def _compute_range(self, side: str, table: Table, start: int, stop: int) -> TableEncodings:
        """Encode only rows ``[start, stop)`` (the append-only delta path).

        Row encodings are independent of batch composition (per-value IR
        transform, row-wise VAE forward), so tail rows encoded here match
        what a whole-table encode would have produced for the same rows.
        Counts ``rows_reencoded``, *not* ``tables_encoded``.
        """
        records = table.records()[start:stop]
        tail_table = Table(table.name, table.attributes, records)
        irs, mu, sigma = self._encode_rows(tail_table)
        self.counters.record_rows_reencoded(len(records))
        keys = tuple(record.record_id for record in records)
        return TableEncodings(
            keys=keys,
            irs=irs,
            mu=mu,
            sigma=sigma,
            row_index={key: row for row, key in enumerate(keys)},
        )

    def _refresh_grown(self, side: str, cached: TableEncodings) -> Optional[TableEncodings]:
        """Append-only refresh of an in-memory table whose backing table grew.

        Requires the memoized fingerprint of the *previous* table state to
        prove the prefix rows unchanged (their CRC must match); returns
        ``None`` when the table shrank, was edited, or the prefix cannot be
        verified — the caller then falls back to the cold path.
        """
        from repro.engine.persist import row_range_crc

        table = self._table_of(side)
        n_old, n_new = len(cached), len(table)
        if n_new <= n_old:
            return None
        version = self.representation.encoding_version
        memo = self._fingerprints.get(side)
        if memo is None or memo[0] != version or memo[1] != n_old:
            return None
        if row_range_crc(table, 0, n_old) != memo[2]["content_crc"]:
            return None
        tail = self._compute_range(side, table, n_old, n_new)
        merged = _concat_encodings(cached, tail)
        fingerprint = self.table_fingerprint(side)  # recomputed for the new length
        self._extend_persistent(side, table, merged, fingerprint)
        return merged

    def _load_persistent(self, side: str, table: Table) -> Optional[TableEncodings]:
        if self.persistent is None:
            return None
        fingerprint = self.table_fingerprint(side)
        loaded = self.persistent.load(
            self.task.name,
            side,
            self.representation.encoding_version,
            fingerprint,
            counters=self.counters,
        )
        if loaded is None:
            loaded = self._load_persistent_delta(side, table, fingerprint)
        if loaded is None:
            self.counters.record_disk_miss()
        else:
            self.counters.record_disk_hit()
        return loaded

    def _load_persistent_delta(
        self, side: str, table: Table, fingerprint: Dict[str, Any]
    ) -> Optional[TableEncodings]:
        """Serve a grown table from its valid on-disk prefix plus a tail encode.

        The chunk-wise probe finds the longest content-valid prefix; only
        the rows past it are pushed through the encoder, and the entry is
        extended in place (append-only, manifest last) so the next run gets
        an exact hit.
        """
        assert self.persistent is not None
        version = self.representation.encoding_version
        delta = self.persistent.delta(self.task.name, side, version, fingerprint, table)
        if delta is None:
            return None
        prefix = self.persistent.load_prefix(
            self.task.name, side, version, delta, counters=self.counters
        )
        if prefix is None:
            return None
        tail = self._compute_range(side, table, delta.base_rows, delta.total_rows)
        merged = _concat_encodings(prefix, tail)
        self.persistent.extend(
            self.task.name, side, version, fingerprint, table, delta, tail
        )
        return merged

    def _save_persistent(self, side: str, table: Table, encodings: TableEncodings) -> None:
        if self.persistent is None:
            return
        self.persistent.save(
            self.task.name,
            side,
            self.representation.encoding_version,
            self.table_fingerprint(side),
            encodings,
            table=table,
        )

    def _extend_persistent(
        self, side: str, table: Table, merged: TableEncodings, fingerprint: Dict[str, Any]
    ) -> None:
        """Write an in-memory append through to the persistent cache.

        The disk entry may lag the in-memory state (or not exist at all), so
        the probe decides: extend from whatever prefix is valid on disk, or
        fall back to a full save.
        """
        if self.persistent is None:
            return
        version = self.representation.encoding_version
        delta = self.persistent.delta(self.task.name, side, version, fingerprint, table)
        if delta is not None and delta.base_rows < len(merged):
            from repro.engine.persist import _slice_encodings

            self.persistent.extend(
                self.task.name,
                side,
                version,
                fingerprint,
                table,
                delta,
                _slice_encodings(merged, delta.base_rows, len(merged)),
            )
        elif delta is None:
            self.persistent.save(
                self.task.name, side, version, fingerprint, merged, table=table
            )

    def _serve(self, side: str, records: Optional[int] = None) -> TableEncodings:
        """Serve one side, counting a cache hit when no compute was needed.

        ``records`` is what the legacy path would have re-encoded for this
        operation (the whole table when omitted, the referenced pair records
        for gathers); it feeds the ``encodes_avoided`` counter so the counter
        measures work actually saved, not raw cache accesses.
        """
        encodings, from_cache = self._lookup(side)
        if from_cache:
            self.counters.record_hit(
                records_served=len(encodings) if records is None else records
            )
        return encodings

    def table_encodings(self, side: str) -> TableEncodings:
        """Cached batched encodings of one side, computing them on first use."""
        return self._serve(side)

    # ------------------------------------------------------------------
    # Table-level views
    # ------------------------------------------------------------------
    def keys(self, side: str) -> Tuple[str, ...]:
        return self.table_encodings(side).keys

    def irs(self, side: str) -> np.ndarray:
        return self.table_encodings(side).irs

    def mu(self, side: str) -> np.ndarray:
        return self.table_encodings(side).mu

    def sigma(self, side: str) -> np.ndarray:
        return self.table_encodings(side).sigma

    def flat_mu(self, side: str) -> np.ndarray:
        return self.table_encodings(side).flat_mu()

    def entity_encoding(self, side: str) -> EntityEncoding:
        """Legacy-shaped view for consumers built on :class:`EntityEncoding`."""
        return self.table_encodings(side).entity_encoding()

    def encode_task(self) -> Dict[str, EntityEncoding]:
        """Both sides as legacy encodings (mirrors the representation API)."""
        return {side: self.entity_encoding(side) for side in SIDES}

    # ------------------------------------------------------------------
    # Pair indexing and gathering
    # ------------------------------------------------------------------
    def pair_rows(self, pairs: Sequence[PairLike]) -> Tuple[np.ndarray, np.ndarray]:
        """(left rows, right rows) gather indices of a pair sequence.

        Pure indexing — does not count as serving encodings.
        """
        left = self._lookup("left")[0].rows([p.left_id for p in pairs])
        right = self._lookup("right")[0].rows([p.right_id for p in pairs])
        return left, right

    def gather_pair_irs(self, pairs: Sequence[PairLike]) -> Tuple[np.ndarray, np.ndarray]:
        """IR input tensors of a pair sequence, each (n, arity, ir_dim)."""
        pairs = list(pairs)
        if not pairs:
            arity = self.task.arity
            dim = self.representation.config.ir_dim
            empty = np.zeros((0, arity, dim))
            return empty, empty.copy()
        # The legacy path re-encoded the referenced pair records per call.
        left = self._serve("left", records=len(pairs))
        right = self._serve("right", records=len(pairs))
        left_rows = left.rows([p.left_id for p in pairs])
        right_rows = right.rows([p.right_id for p in pairs])
        self.counters.record_pairs(len(pairs))
        return left.irs[left_rows], right.irs[right_rows]

    def pair_ir_arrays(self, pairs: Sequence[PairLike]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(left IRs, right IRs, labels): the matcher's featurisation input.

        Unlabeled pairs (plain :class:`RecordPair`) get label 0, matching the
        legacy convention for candidate featurisation.
        """
        pairs = list(pairs)
        left, right = self.gather_pair_irs(pairs)
        labels = np.array([getattr(p, "label", 0) for p in pairs], dtype=np.float64)
        return left, right, labels

    def gather_pair_latents(
        self, pairs: Sequence[PairLike]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(mu_left, sigma_left, mu_right, sigma_right), each (n, arity, latent)."""
        pairs = list(pairs)
        if not pairs:
            arity = self.task.arity
            latent = self.representation.config.latent_dim
            empty = np.zeros((0, arity, latent))
            return empty, empty.copy(), empty.copy(), empty.copy()
        left = self._serve("left", records=len(pairs))
        right = self._serve("right", records=len(pairs))
        left_rows = left.rows([p.left_id for p in pairs])
        right_rows = right.rows([p.right_id for p in pairs])
        return left.mu[left_rows], left.sigma[left_rows], right.mu[right_rows], right.sigma[right_rows]

    # ------------------------------------------------------------------
    # Vectorized pair scoring
    # ------------------------------------------------------------------
    def pair_latent_distances(self, pairs: Sequence[PairLike]) -> np.ndarray:
        """Expected latent distance per pair (the AL diversity statistic).

        Mean over attributes of the Euclidean distance between posterior
        means — the vectorized equivalent of the per-pair loop formerly in
        :func:`repro.core.active.sampler.pair_latent_distances`.
        """
        pairs = list(pairs)
        if not pairs:
            return np.zeros(0)
        mu_left, _, mu_right, _ = self.gather_pair_latents(pairs)
        self.counters.record_pairs(len(pairs))
        return np.sqrt(((mu_left - mu_right) ** 2).sum(axis=-1)).mean(axis=-1)

    def pair_tuple_wasserstein(self, pairs: Sequence[PairLike]) -> np.ndarray:
        """Tuple-level W2^2 per pair (Algorithm 1's bootstrap ranking).

        Vectorized equivalent of calling
        :func:`repro.core.distances.tuple_wasserstein` pair by pair.
        """
        pairs = list(pairs)
        if not pairs:
            return np.zeros(0)
        mu_left, sigma_left, mu_right, sigma_right = self.gather_pair_latents(pairs)
        self.counters.record_pairs(len(pairs))
        per_attribute = ((mu_left - mu_right) ** 2 + (sigma_left - sigma_right) ** 2).sum(axis=-1)
        return per_attribute.mean(axis=-1)

    def record_external_gather(self, n_pairs: int) -> None:
        """Counter bookkeeping for gathers performed outside the store.

        Sharded resolution hands row indices to pool workers which gather
        directly from the shared cached arrays; this mirrors the accounting
        :meth:`gather_pair_irs` would have done (one logical hit per side
        plus the scored pairs) so streamed and sharded runs report
        comparable counters.
        """
        if n_pairs <= 0:
            return
        self.counters.record_hit(records_served=n_pairs)
        self.counters.record_hit(records_served=n_pairs)
        self.counters.record_pairs(n_pairs)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Defensive snapshot of the attached counters.

        The returned dict is a fresh copy on every call: mutating it (or
        holding it across further store operations) cannot perturb the live
        counters, so harnesses can diff successive snapshots safely.
        """
        return dict(self.counters.as_dict())

    def __repr__(self) -> str:
        cached = ",".join(sorted(self._cache)) or "empty"
        return f"EncodingStore(task={self.task.name!r}, cached=[{cached}])"


def _concat_encodings(prefix: TableEncodings, tail: TableEncodings) -> TableEncodings:
    """Stitch a reused prefix and a freshly encoded tail into one table.

    The delta path's merge point: ``prefix`` rows came from the in-memory or
    on-disk cache, ``tail`` rows from an append-only encode; the result is
    indistinguishable from a whole-table encode of the grown table.
    """
    if len(tail) == 0:
        return prefix
    keys = tuple(prefix.keys) + tuple(tail.keys)
    return TableEncodings(
        keys=keys,
        irs=np.concatenate([np.asarray(prefix.irs), tail.irs]),
        mu=np.concatenate([np.asarray(prefix.mu), tail.mu]),
        sigma=np.concatenate([np.asarray(prefix.sigma), tail.sigma]),
        row_index={key: row for row, key in enumerate(keys)},
    )
