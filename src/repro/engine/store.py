"""The batched encoding engine: one shared, invalidation-aware cache.

Every stage of the decoupled pipeline (blocking, matching, active learning,
evaluation) consumes the same two transferable artefacts of a fitted
representation model: the IR arrays of a table and the latent Gaussians
``(mu, sigma)`` its VAE encodes them to.  Historically each stage recomputed
both — the representation model was asked to re-tokenize, re-project and
re-encode whole tables per call, and candidate scoring walked per-pair Python
loops.

:class:`EncodingStore` computes each table's encodings exactly once, in one
batched pass, and hands shared read-only views to every consumer.  Candidate
pairs become *index arrays* into the row-major cached encodings, so pair
featurisation and scoring are pure gather-then-matmul operations:

* :meth:`pair_ir_arrays` — the matcher's (left, right, labels) input tensors;
* :meth:`pair_latent_distances` — the AL sampler's diversity distances;
* :meth:`pair_tuple_wasserstein` — Algorithm 1's bootstrap ranking distances.

The store is invalidation-aware: it watches the representation model's
``encoding_version`` token (bumped on every (re)fit, IR refit and weight
load) and transparently recomputes when the model changed, so transferred or
fine-tuned representations can never serve stale encodings.  Cache traffic is
reported through :class:`repro.eval.timing.EngineCounters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.pairs import LabeledPair, RecordPair
from repro.data.schema import ERTask, Table
from repro.eval.timing import EngineCounters, engine_counters

if TYPE_CHECKING:  # pragma: no cover - break the engine <-> core import cycle
    from repro.core.representation import EntityEncoding, EntityRepresentationModel
    from repro.engine.persist import PersistentEncodingCache

SIDES = ("left", "right")

#: Anything with ``left_id``/``right_id`` attributes addresses a pair.
PairLike = Union[RecordPair, LabeledPair]


@dataclass(frozen=True)
class TableEncodings:
    """Immutable batched encodings of one table.

    ``irs`` has shape (n_records, arity, ir_dim); ``mu`` and ``sigma`` have
    shape (n_records, arity, latent_dim).  ``row_index`` maps record ids to
    row positions, making record-id lookups O(1) and pair lookups gathers.
    """

    keys: Tuple[str, ...]
    irs: np.ndarray
    mu: np.ndarray
    sigma: np.ndarray
    row_index: Dict[str, int]

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def arity(self) -> int:
        return self.irs.shape[1]

    def rows(self, record_ids: Sequence[str]) -> np.ndarray:
        """Row positions of ``record_ids`` as an integer gather index."""
        index = self.row_index
        try:
            return np.fromiter((index[rid] for rid in record_ids), dtype=np.intp, count=len(record_ids))
        except KeyError as exc:
            raise KeyError(f"record {exc.args[0]!r} not present in cached encodings") from exc

    def flat_mu(self) -> np.ndarray:
        """Record-level vectors for LSH search: concatenated attribute means."""
        return self.mu.reshape(len(self), -1)

    def entity_encoding(self) -> "EntityEncoding":
        """The legacy :class:`EntityEncoding` view (shared arrays, not copies)."""
        from repro.core.representation import EntityEncoding

        return EntityEncoding(keys=self.keys, mu=self.mu, sigma=self.sigma)


class EncodingStore:
    """Keyed cache of a task's table encodings with vectorized pair scoring.

    Parameters
    ----------
    representation:
        A fitted (or transferred) :class:`EntityRepresentationModel`.
    task:
        The ER task whose two tables the store serves.
    counters:
        Instrumentation sink; defaults to the process-wide
        :func:`repro.eval.timing.engine_counters`.
    persistent:
        Optional :class:`repro.engine.persist.PersistentEncodingCache`.
        When set, in-memory misses probe the disk cache before encoding and
        computed encodings are written back, so repeated runs on the same
        task and representation skip table encoding entirely.
    """

    def __init__(
        self,
        representation: EntityRepresentationModel,
        task: ERTask,
        counters: Optional[EngineCounters] = None,
        persistent: Optional["PersistentEncodingCache"] = None,
    ) -> None:
        self.representation = representation
        self.task = task
        self.counters = counters if counters is not None else engine_counters()
        self.persistent = persistent
        self._cache: Dict[str, TableEncodings] = {}
        self._cached_version: Optional[int] = None

    # ------------------------------------------------------------------
    # Cache lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop all cached encodings (next access recomputes)."""
        self._cache.clear()
        self._cached_version = None

    def _check_version(self) -> None:
        version = self.representation.encoding_version
        if self._cached_version != version:
            self._cache.clear()
            self._cached_version = version

    def _table_of(self, side: str) -> Table:
        if side == "left":
            return self.task.left
        if side == "right":
            return self.task.right
        raise ValueError(f"side must be one of {SIDES}, got {side!r}")

    def _lookup(self, side: str) -> Tuple[TableEncodings, bool]:
        """(encodings, served_from_cache) — computes on miss, never counts hits.

        On an in-memory miss the persistent cache (when attached) is probed
        first; only a double miss pays for the IR transform and VAE forward
        pass, and its result is written back to disk for the next run.
        """
        self._check_version()
        cached = self._cache.get(side)
        if cached is not None:
            return cached, True
        self.counters.record_miss()
        table = self._table_of(side)
        encodings = self._load_persistent(side, table)
        if encodings is None:
            encodings = self._compute(side, table)
            self._save_persistent(side, table, encodings)
        self._cache[side] = encodings
        return encodings, False

    def _compute(self, side: str, table: Table) -> TableEncodings:
        """Encode one table from scratch (the work both caches exist to avoid)."""
        representation = self.representation
        irs = representation.ir_generator.transform_table(table)
        n, arity, _ = irs.shape
        if n == 0:
            latent = representation.config.latent_dim
            mu = np.zeros((0, arity, latent))
            sigma = np.zeros((0, arity, latent))
        else:
            flat_mu, flat_sigma = representation.vae.encode_numpy(irs.reshape(n * arity, -1))
            latent = flat_mu.shape[-1]
            mu = flat_mu.reshape(n, arity, latent)
            sigma = flat_sigma.reshape(n, arity, latent)
        self.counters.record_encode()
        keys = tuple(table.record_ids())
        return TableEncodings(
            keys=keys,
            irs=irs,
            mu=mu,
            sigma=sigma,
            row_index={key: row for row, key in enumerate(keys)},
        )

    def _load_persistent(self, side: str, table: Table) -> Optional[TableEncodings]:
        if self.persistent is None:
            return None
        from repro.engine.persist import encoding_fingerprint

        loaded = self.persistent.load(
            self.task.name,
            side,
            self.representation.encoding_version,
            encoding_fingerprint(self.representation, table),
            counters=self.counters,
        )
        if loaded is None:
            self.counters.record_disk_miss()
        else:
            self.counters.record_disk_hit()
        return loaded

    def _save_persistent(self, side: str, table: Table, encodings: TableEncodings) -> None:
        if self.persistent is None:
            return
        from repro.engine.persist import encoding_fingerprint

        self.persistent.save(
            self.task.name,
            side,
            self.representation.encoding_version,
            encoding_fingerprint(self.representation, table),
            encodings,
        )

    def _serve(self, side: str, records: Optional[int] = None) -> TableEncodings:
        """Serve one side, counting a cache hit when no compute was needed.

        ``records`` is what the legacy path would have re-encoded for this
        operation (the whole table when omitted, the referenced pair records
        for gathers); it feeds the ``encodes_avoided`` counter so the counter
        measures work actually saved, not raw cache accesses.
        """
        encodings, from_cache = self._lookup(side)
        if from_cache:
            self.counters.record_hit(
                records_served=len(encodings) if records is None else records
            )
        return encodings

    def table_encodings(self, side: str) -> TableEncodings:
        """Cached batched encodings of one side, computing them on first use."""
        return self._serve(side)

    # ------------------------------------------------------------------
    # Table-level views
    # ------------------------------------------------------------------
    def keys(self, side: str) -> Tuple[str, ...]:
        return self.table_encodings(side).keys

    def irs(self, side: str) -> np.ndarray:
        return self.table_encodings(side).irs

    def mu(self, side: str) -> np.ndarray:
        return self.table_encodings(side).mu

    def sigma(self, side: str) -> np.ndarray:
        return self.table_encodings(side).sigma

    def flat_mu(self, side: str) -> np.ndarray:
        return self.table_encodings(side).flat_mu()

    def entity_encoding(self, side: str) -> EntityEncoding:
        """Legacy-shaped view for consumers built on :class:`EntityEncoding`."""
        return self.table_encodings(side).entity_encoding()

    def encode_task(self) -> Dict[str, EntityEncoding]:
        """Both sides as legacy encodings (mirrors the representation API)."""
        return {side: self.entity_encoding(side) for side in SIDES}

    # ------------------------------------------------------------------
    # Pair indexing and gathering
    # ------------------------------------------------------------------
    def pair_rows(self, pairs: Sequence[PairLike]) -> Tuple[np.ndarray, np.ndarray]:
        """(left rows, right rows) gather indices of a pair sequence.

        Pure indexing — does not count as serving encodings.
        """
        left = self._lookup("left")[0].rows([p.left_id for p in pairs])
        right = self._lookup("right")[0].rows([p.right_id for p in pairs])
        return left, right

    def gather_pair_irs(self, pairs: Sequence[PairLike]) -> Tuple[np.ndarray, np.ndarray]:
        """IR input tensors of a pair sequence, each (n, arity, ir_dim)."""
        pairs = list(pairs)
        if not pairs:
            arity = self.task.arity
            dim = self.representation.config.ir_dim
            empty = np.zeros((0, arity, dim))
            return empty, empty.copy()
        # The legacy path re-encoded the referenced pair records per call.
        left = self._serve("left", records=len(pairs))
        right = self._serve("right", records=len(pairs))
        left_rows = left.rows([p.left_id for p in pairs])
        right_rows = right.rows([p.right_id for p in pairs])
        self.counters.record_pairs(len(pairs))
        return left.irs[left_rows], right.irs[right_rows]

    def pair_ir_arrays(self, pairs: Sequence[PairLike]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(left IRs, right IRs, labels): the matcher's featurisation input.

        Unlabeled pairs (plain :class:`RecordPair`) get label 0, matching the
        legacy convention for candidate featurisation.
        """
        pairs = list(pairs)
        left, right = self.gather_pair_irs(pairs)
        labels = np.array([getattr(p, "label", 0) for p in pairs], dtype=np.float64)
        return left, right, labels

    def gather_pair_latents(
        self, pairs: Sequence[PairLike]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(mu_left, sigma_left, mu_right, sigma_right), each (n, arity, latent)."""
        pairs = list(pairs)
        if not pairs:
            arity = self.task.arity
            latent = self.representation.config.latent_dim
            empty = np.zeros((0, arity, latent))
            return empty, empty.copy(), empty.copy(), empty.copy()
        left = self._serve("left", records=len(pairs))
        right = self._serve("right", records=len(pairs))
        left_rows = left.rows([p.left_id for p in pairs])
        right_rows = right.rows([p.right_id for p in pairs])
        return left.mu[left_rows], left.sigma[left_rows], right.mu[right_rows], right.sigma[right_rows]

    # ------------------------------------------------------------------
    # Vectorized pair scoring
    # ------------------------------------------------------------------
    def pair_latent_distances(self, pairs: Sequence[PairLike]) -> np.ndarray:
        """Expected latent distance per pair (the AL diversity statistic).

        Mean over attributes of the Euclidean distance between posterior
        means — the vectorized equivalent of the per-pair loop formerly in
        :func:`repro.core.active.sampler.pair_latent_distances`.
        """
        pairs = list(pairs)
        if not pairs:
            return np.zeros(0)
        mu_left, _, mu_right, _ = self.gather_pair_latents(pairs)
        self.counters.record_pairs(len(pairs))
        return np.sqrt(((mu_left - mu_right) ** 2).sum(axis=-1)).mean(axis=-1)

    def pair_tuple_wasserstein(self, pairs: Sequence[PairLike]) -> np.ndarray:
        """Tuple-level W2^2 per pair (Algorithm 1's bootstrap ranking).

        Vectorized equivalent of calling
        :func:`repro.core.distances.tuple_wasserstein` pair by pair.
        """
        pairs = list(pairs)
        if not pairs:
            return np.zeros(0)
        mu_left, sigma_left, mu_right, sigma_right = self.gather_pair_latents(pairs)
        self.counters.record_pairs(len(pairs))
        per_attribute = ((mu_left - mu_right) ** 2 + (sigma_left - sigma_right) ** 2).sum(axis=-1)
        return per_attribute.mean(axis=-1)

    def record_external_gather(self, n_pairs: int) -> None:
        """Counter bookkeeping for gathers performed outside the store.

        Sharded resolution hands row indices to pool workers which gather
        directly from the shared cached arrays; this mirrors the accounting
        :meth:`gather_pair_irs` would have done (one logical hit per side
        plus the scored pairs) so streamed and sharded runs report
        comparable counters.
        """
        if n_pairs <= 0:
            return
        self.counters.record_hit(records_served=n_pairs)
        self.counters.record_hit(records_served=n_pairs)
        self.counters.record_pairs(n_pairs)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Defensive snapshot of the attached counters.

        The returned dict is a fresh copy on every call: mutating it (or
        holding it across further store operations) cannot perturb the live
        counters, so harnesses can diff successive snapshots safely.
        """
        return dict(self.counters.as_dict())

    def __repr__(self) -> str:
        cached = ",".join(sorted(self._cache)) or "empty"
        return f"EncodingStore(task={self.task.name!r}, cached=[{cached}])"
