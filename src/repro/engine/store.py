"""The batched encoding engine: one shared, invalidation-aware cache.

Every stage of the decoupled pipeline (blocking, matching, active learning,
evaluation) consumes the same two transferable artefacts of a fitted
representation model: the IR arrays of a table and the latent Gaussians
``(mu, sigma)`` its VAE encodes them to.  Historically each stage recomputed
both — the representation model was asked to re-tokenize, re-project and
re-encode whole tables per call, and candidate scoring walked per-pair Python
loops.

:class:`EncodingStore` computes each table's encodings exactly once, in one
batched pass, and hands shared read-only views to every consumer.  Candidate
pairs become *index arrays* into the row-major cached encodings, so pair
featurisation and scoring are pure gather-then-matmul operations:

* :meth:`pair_ir_arrays` — the matcher's (left, right, labels) input tensors;
* :meth:`pair_latent_distances` — the AL sampler's diversity distances;
* :meth:`pair_tuple_wasserstein` — Algorithm 1's bootstrap ranking distances.

The store is invalidation-aware: it watches the representation model's
``encoding_version`` token (bumped on every (re)fit, IR refit and weight
load) and transparently recomputes when the model changed, so transferred or
fine-tuned representations can never serve stale encodings.  Cache traffic is
reported through :class:`repro.eval.timing.EngineCounters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.pairs import LabeledPair, RecordPair
from repro.data.schema import ERTask, Table
from repro.engine.quant import CodecArray, CodecParams, get_codec, resolve_codec_name
from repro.eval.timing import EngineCounters, engine_counters

if TYPE_CHECKING:  # pragma: no cover - break the engine <-> core import cycle
    from repro.core.representation import EntityEncoding, EntityRepresentationModel
    from repro.engine.persist import PersistentEncodingCache

SIDES = ("left", "right")

#: The three encoded arrays a :class:`TableEncodings` carries.
_ARRAY_FIELDS = ("irs", "mu", "sigma")

#: Anything with ``left_id``/``right_id`` attributes addresses a pair.
PairLike = Union[RecordPair, LabeledPair]

#: Optional hook encoding a whole (sub-)table outside the store — the delta
#: executor installs a pooled implementation so large mutation tails fan out
#: across workers; ``None`` encodes inline.
RangeEncoder = Callable[[Table], Tuple[np.ndarray, np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class _SideState:
    """Memoized identity of one side's table at its last encode/fingerprint.

    ``row_crcs`` (one :func:`repro.engine.persist.record_crc` per row) is
    what lets a later access diff the *mutated* table against the state the
    cached encodings describe — by record id, not position.
    """

    version: int
    n_rows: int
    revision: int
    fingerprint: Dict[str, Any]
    row_crcs: Tuple[int, ...]


@dataclass(frozen=True)
class TableEncodings:
    """Immutable batched encodings of one table.

    ``irs`` has shape (n_records, arity, ir_dim); ``mu`` and ``sigma`` have
    shape (n_records, arity, latent_dim).  ``row_index`` maps record ids to
    row positions, making record-id lookups O(1) and pair lookups gathers.
    """

    keys: Tuple[str, ...]
    irs: np.ndarray
    mu: np.ndarray
    sigma: np.ndarray
    row_index: Dict[str, int]

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def arity(self) -> int:
        return self.irs.shape[1]

    def rows(self, record_ids: Sequence[str]) -> np.ndarray:
        """Row positions of ``record_ids`` as an integer gather index."""
        index = self.row_index
        try:
            return np.fromiter((index[rid] for rid in record_ids), dtype=np.intp, count=len(record_ids))
        except KeyError as exc:
            raise KeyError(f"record {exc.args[0]!r} not present in cached encodings") from exc

    def flat_mu(self) -> np.ndarray:
        """Record-level vectors for LSH search: concatenated attribute means."""
        return self.mu.reshape(len(self), -1)

    def entity_encoding(self) -> "EntityEncoding":
        """The legacy :class:`EntityEncoding` view (shared arrays, not copies)."""
        from repro.core.representation import EntityEncoding

        return EntityEncoding(keys=self.keys, mu=self.mu, sigma=self.sigma)


class EncodingStore:
    """Keyed cache of a task's table encodings with vectorized pair scoring.

    Parameters
    ----------
    representation:
        A fitted (or transferred) :class:`EntityRepresentationModel`.
    task:
        The ER task whose two tables the store serves.
    counters:
        Instrumentation sink; defaults to the process-wide
        :func:`repro.eval.timing.engine_counters`.
    persistent:
        Optional :class:`repro.engine.persist.PersistentEncodingCache`.
        When set, in-memory misses probe the disk cache before encoding and
        computed encodings are written back, so repeated runs on the same
        task and representation skip table encoding entirely.
    codec:
        Encoding codec name (``"raw"`` or ``"int8"``); ``None`` resolves
        through ``REPRO_ENGINE_CODEC`` and defaults to ``raw``.  With a
        quantized codec the resident arrays are
        :class:`~repro.engine.quant.CodecArray` code views — one byte per
        dimension — and floats are rehydrated only for gathered rows
        (surviving pairs, ranked candidates).  Quantization params are
        fitted once per table at the first full encode and reused for
        every mutation re-encode, so codes splice consistently across
        chunks and generations.  The codec rides in the persistent-cache
        fingerprint, so raw and quantized entries never serve each other.
    """

    def __init__(
        self,
        representation: EntityRepresentationModel,
        task: ERTask,
        counters: Optional[EngineCounters] = None,
        persistent: Optional["PersistentEncodingCache"] = None,
        codec: Optional[str] = None,
    ) -> None:
        self.representation = representation
        self.task = task
        self.counters = counters if counters is not None else engine_counters()
        self.persistent = persistent
        self.codec_name = resolve_codec_name(codec)
        self._codec = get_codec(self.codec_name)
        #: Fixed quantization params per side (quantize-once): fitted at the
        #: first full encode of an entry, adopted from disk on a warm load,
        #: reused for every delta re-encode.
        self._codec_params: Dict[str, Dict[str, CodecParams]] = {}
        self._cache: Dict[str, TableEncodings] = {}
        self._cached_version: Optional[int] = None
        #: Memoized table identities: side -> :class:`_SideState`.  A state
        #: is recomputed when the model version, the row count or the
        #: table's mutation ``revision`` changes, so repeated probes of an
        #: unchanged table never re-CRC its rows while any in-place edit or
        #: deletion (which bumps the revision) invalidates immediately.
        self._fingerprints: Dict[str, _SideState] = {}
        #: See :data:`RangeEncoder`; installed by the delta executor to fan
        #: large tail/dirty encodes across its worker pool.
        self.range_encoder: Optional[RangeEncoder] = None

    # ------------------------------------------------------------------
    # Cache lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop all cached encodings (next access recomputes)."""
        self._cache.clear()
        self._fingerprints.clear()
        self._codec_params.clear()
        self._cached_version = None

    def _check_version(self) -> None:
        version = self.representation.encoding_version
        if self._cached_version != version:
            self._cache.clear()
            self._fingerprints.clear()
            self._codec_params.clear()
            self._cached_version = version

    def table_fingerprint(self, side: str) -> Dict[str, Any]:
        """The (memoized) persistent-cache fingerprint of one side's table.

        Computing a fingerprint CRCs every row, so the result is cached per
        ``(side, encoding_version, row count, table revision)`` and the
        ``fingerprints_computed`` counter reports how many times the rows
        were actually walked.
        """
        return self._side_state(side).fingerprint

    def _side_state(self, side: str) -> _SideState:
        """Memoized fingerprint *and* per-row CRCs of one side's table."""
        from repro.engine.persist import table_row_crcs

        table = self._table_of(side)
        version = self.representation.encoding_version
        memo = self._fingerprints.get(side)
        if (
            memo is not None
            and memo.version == version
            and memo.n_rows == len(table)
            and memo.revision == table.revision
        ):
            return memo
        state = _SideState(
            version=version,
            n_rows=len(table),
            revision=table.revision,
            fingerprint=self._fingerprint_of(table),
            row_crcs=tuple(table_row_crcs(table)),
        )
        self.counters.record_fingerprint()
        self._fingerprints[side] = state
        return state

    def _fingerprint_of(self, table: Table) -> Dict[str, Any]:
        """The persistent-cache fingerprint, codec-gated when quantized.

        Quantized entries store int8 codes on disk and raw entries store
        floats — the two are not interchangeable, so a non-raw codec rides
        inside the ``model`` fingerprint and makes both the exact-load and
        the row-wise delta probes miss across codecs.  Raw fingerprints
        carry no codec key at all, keeping them byte-identical to pre-codec
        output (and pre-codec cache entries warm).
        """
        from repro.engine.persist import encoding_fingerprint

        fingerprint = encoding_fingerprint(self.representation, table)
        if not self._codec.is_identity:
            fingerprint = dict(
                fingerprint,
                model=dict(fingerprint["model"], codec=self.codec_name),
            )
        return fingerprint

    def _table_of(self, side: str) -> Table:
        if side == "left":
            return self.task.left
        if side == "right":
            return self.task.right
        raise ValueError(f"side must be one of {SIDES}, got {side!r}")

    def _lookup(self, side: str) -> Tuple[TableEncodings, bool]:
        """(encodings, served_from_cache) — computes on miss, never counts hits.

        A cached table is a hit only while the backing :class:`Table` is
        bit-for-bit the state it was encoded from (same length *and* same
        mutation revision).  A mutated table — rows appended, edited in
        place or deleted — is refreshed through the row-identity diff:
        unchanged rows are reused from the cached arrays, dirty and appended
        rows re-encoded, deleted rows dropped.  On a true in-memory miss the
        persistent cache (when attached) is probed first — an exact match,
        then the row-wise *delta* probe that serves every clean surviving
        row from disk; only a full miss pays for the whole IR transform and
        VAE forward pass, and every computed result is written back to disk
        for the next run.
        """
        self._check_version()
        table = self._table_of(side)
        cached = self._cache.get(side)
        if cached is not None:
            memo = self._fingerprints.get(side)
            if (
                memo is not None
                and memo.version == self.representation.encoding_version
                and memo.n_rows == len(table)
                and memo.revision == table.revision
            ):
                return cached, True
            refreshed = self._refresh_mutated(side, cached)
            if refreshed is not None:
                self.counters.record_miss()
                self._cache[side] = refreshed
                return refreshed, False
            # Reordered (or untracked) mutation: nothing provably reusable.
            del self._cache[side]
        self.counters.record_miss()
        encodings = self._load_persistent(side, table)
        if encodings is None:
            encodings = self._compute(side, table)
            self._save_persistent(side, table, encodings)
        self._cache[side] = encodings
        # Memoize the identity at encode time: the mutation refresh above
        # needs the previous table state's per-row CRCs to classify rows,
        # and computing them now (one CRC pass) is cheap next to the encode
        # that just happened.
        self._side_state(side)
        return encodings, False

    def _encode_rows(self, table: Table) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(irs, mu, sigma) of one table-shaped record collection."""
        return encode_table_rows(self.representation, table)

    def _compute(self, side: str, table: Table) -> TableEncodings:
        """Encode one table from scratch (the work both caches exist to avoid)."""
        irs, mu, sigma = self._encode_rows(table)
        self.counters.record_encode()
        keys = tuple(table.record_ids())
        encodings = TableEncodings(
            keys=keys,
            irs=irs,
            mu=mu,
            sigma=sigma,
            row_index={key: row for row, key in enumerate(keys)},
        )
        # A from-scratch encode starts a new cache entry, so new params.
        return self._quantize(side, encodings, fit=True)

    def _encode_subtable(self, sub_table: Table) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode a record subset, through the pooled hook when installed."""
        if self.range_encoder is not None:
            return self.range_encoder(sub_table)
        return self._encode_rows(sub_table)

    def _compute_records(self, side: str, table: Table, positions: Sequence[int]) -> TableEncodings:
        """Encode only the rows at ``positions`` (the delta re-encode path).

        Row encodings are independent of batch composition (per-value IR
        transform, row-wise VAE forward), so rows encoded here match what a
        whole-table encode would have produced for the same rows.  Counts
        ``rows_reencoded``, *not* ``tables_encoded``.
        """
        all_records = table.records()
        records = [all_records[position] for position in positions]
        sub_table = Table(table.name, table.attributes, records)
        irs, mu, sigma = self._encode_subtable(sub_table)
        self.counters.record_rows_reencoded(len(records))
        keys = tuple(record.record_id for record in records)
        encodings = TableEncodings(
            keys=keys,
            irs=irs,
            mu=mu,
            sigma=sigma,
            row_index={key: row for row, key in enumerate(keys)},
        )
        # Delta rows splice into an existing entry: quantize with its fixed
        # params (quantize-once) so codes stay chunk-compatible.
        return self._quantize(side, encodings, fit=False)

    def _compute_range(self, side: str, table: Table, start: int, stop: int) -> TableEncodings:
        """Encode only rows ``[start, stop)`` (the append-only delta path)."""
        return self._compute_records(side, table, range(start, stop))

    def _quantize(self, side: str, encodings: TableEncodings, fit: bool) -> TableEncodings:
        """Wrap freshly encoded float arrays into the codec's resident form.

        ``fit=True`` derives new params (a from-scratch table encode starts
        a new entry); ``fit=False`` reuses the side's fixed params so delta
        rows splice into existing code chunks bit-compatibly.  The ``raw``
        codec only does the ``bytes_stored`` accounting.
        """
        if self._codec.is_identity:
            self.counters.record_bytes_stored(
                sum(np.asarray(getattr(encodings, name)).nbytes for name in _ARRAY_FIELDS)
            )
            return encodings
        params_by = self._codec_params.get(side)
        if fit or params_by is None:
            params_by = {
                name: self._codec.fit(np.asarray(getattr(encodings, name)))
                for name in _ARRAY_FIELDS
            }
            self._codec_params[side] = params_by
        coded: Dict[str, CodecArray] = {}
        for name in _ARRAY_FIELDS:
            array = self._codec.encode(
                np.asarray(getattr(encodings, name)),
                params_by[name],
                on_decode=self.counters.record_bytes_decoded,
            )
            self.counters.record_bytes_stored(array.codes.nbytes)
            coded[name] = array
        return TableEncodings(
            keys=encodings.keys,
            irs=coded["irs"],
            mu=coded["mu"],
            sigma=coded["sigma"],
            row_index=encodings.row_index,
        )

    def _adopt_params(self, side: str, encodings: TableEncodings) -> None:
        """Fix the side's quantization params to those of ``encodings``.

        Called when a quantized table arrives from outside ``_compute`` —
        a persistent load or an in-memory refresh base — so subsequent
        delta re-encodes quantize with the params the existing codes carry.
        """
        if self._codec.is_identity or not isinstance(encodings.irs, CodecArray):
            return
        self._codec_params[side] = {
            name: getattr(encodings, name).params for name in _ARRAY_FIELDS
        }

    def _refresh_mutated(self, side: str, cached: TableEncodings) -> Optional[TableEncodings]:
        """Row-identity refresh of an in-memory table whose backing table mutated.

        Diffs the current table against the memoized per-row CRCs of the
        state ``cached`` was encoded from: unchanged rows are reused from the
        cached arrays by key, dirty (edited) and appended rows are pushed
        through the encoder, deleted rows are dropped.  Returns ``None``
        when surviving rows were reordered or the previous state cannot be
        verified — the caller then falls back to the cold path.
        """
        from repro.engine.persist import diff_rows

        table = self._table_of(side)
        version = self.representation.encoding_version
        memo = self._fingerprints.get(side)
        if memo is None or memo.version != version or memo.n_rows != len(cached):
            return None
        diff = diff_rows(cached.keys, memo.row_crcs, table)
        if diff is None:
            return None
        assert diff.dirty_new is not None  # memo always carries row CRCs
        self._adopt_params(side, cached)
        base, total = diff.appended_range
        encode_positions = list(diff.dirty_new) + list(range(base, total))
        fresh = (
            self._compute_records(side, table, encode_positions)
            if encode_positions
            else None
        )
        self.counters.record_rows_tombstoned(len(diff.deleted_old))
        dirty = set(diff.dirty_new)
        if not dirty and not diff.deleted_old:
            merged = _concat_encodings(cached, fresh) if fresh is not None else cached
        else:
            reused_positions = [p for p in range(base) if p not in dirty]
            reused_old = [diff.survivor_old[p] for p in reused_positions]
            merged = _splice_encodings(
                keys=tuple(table.record_ids()),
                reused_positions=reused_positions,
                reused=cached,
                reused_rows=reused_old,
                fresh_positions=encode_positions,
                fresh=fresh,
            )
        fingerprint = self.table_fingerprint(side)  # recomputed for the new state
        self._sync_persistent(side, table, merged, fingerprint)
        return merged

    def _load_persistent(self, side: str, table: Table) -> Optional[TableEncodings]:
        if self.persistent is None:
            return None
        fingerprint = self.table_fingerprint(side)
        loaded = self.persistent.load(
            self.task.name,
            side,
            self.representation.encoding_version,
            fingerprint,
            counters=self.counters,
            table=table,
        )
        if loaded is not None:
            self._adopt_params(side, loaded)
        else:
            loaded = self._load_persistent_delta(side, table, fingerprint)
        if loaded is None:
            self.counters.record_disk_miss()
        else:
            self.counters.record_disk_hit()
        return loaded

    def _load_persistent_delta(
        self, side: str, table: Table, fingerprint: Dict[str, Any]
    ) -> Optional[TableEncodings]:
        """Serve a mutated table from its clean on-disk rows plus a re-encode.

        The row-wise probe classifies every current row; clean surviving
        rows are read from the chunks covering them, dirty and appended rows
        are pushed through the encoder, and the entry is patched in place
        (superseding chunk generations + tombstones + appended chunks,
        manifest last) so the next run gets an exact hit.
        """
        assert self.persistent is not None
        version = self.representation.encoding_version
        delta = self.persistent.delta(self.task.name, side, version, fingerprint, table)
        if delta is None:
            return None
        reused = self.persistent.load_reused(
            self.task.name, side, version, delta, counters=self.counters
        )
        if reused is None:
            return None
        positions, base = reused
        self._adopt_params(side, base)
        encode_positions = delta.encode_positions()
        fresh = (
            self._compute_records(side, table, encode_positions)
            if encode_positions
            else None
        )
        self.counters.record_rows_tombstoned(len(delta.deleted_rows))
        if delta.is_append_only:
            merged = _concat_encodings(base, fresh) if fresh is not None else base
            if fresh is not None:
                self.persistent.extend(
                    self.task.name, side, version, fingerprint, table, delta, fresh
                )
            return merged
        merged = _splice_encodings(
            keys=tuple(table.record_ids()),
            reused_positions=positions,
            reused=base,
            reused_rows=range(len(base)),
            fresh_positions=encode_positions,
            fresh=fresh,
        )
        _, stats = self.persistent.patch(
            self.task.name, side, version, fingerprint, table, delta, merged
        )
        self.counters.record_chunks_patched(stats["chunks_patched"])
        return merged

    def _save_persistent(self, side: str, table: Table, encodings: TableEncodings) -> None:
        if self.persistent is None:
            return
        self.persistent.save(
            self.task.name,
            side,
            self.representation.encoding_version,
            self.table_fingerprint(side),
            encodings,
            table=table,
        )

    def _sync_persistent(
        self, side: str, table: Table, merged: TableEncodings, fingerprint: Dict[str, Any]
    ) -> None:
        """Write an in-memory mutation refresh through to the persistent cache.

        The disk entry may lag the in-memory state (or not exist at all), so
        the probe decides: extend or patch from whatever is valid on disk,
        or fall back to a full save.
        """
        if self.persistent is None:
            return
        version = self.representation.encoding_version
        delta = self.persistent.delta(self.task.name, side, version, fingerprint, table)
        if delta is None:
            self.persistent.save(
                self.task.name, side, version, fingerprint, merged, table=table
            )
            return
        if delta.is_append_only:
            if delta.base_rows < len(merged):
                from repro.engine.persist import _slice_encodings

                self.persistent.extend(
                    self.task.name,
                    side,
                    version,
                    fingerprint,
                    table,
                    delta,
                    _slice_encodings(merged, delta.base_rows, len(merged)),
                )
            return
        _, stats = self.persistent.patch(
            self.task.name, side, version, fingerprint, table, delta, merged
        )
        self.counters.record_chunks_patched(stats["chunks_patched"])

    def _serve(self, side: str, records: Optional[int] = None) -> TableEncodings:
        """Serve one side, counting a cache hit when no compute was needed.

        ``records`` is what the legacy path would have re-encoded for this
        operation (the whole table when omitted, the referenced pair records
        for gathers); it feeds the ``encodes_avoided`` counter so the counter
        measures work actually saved, not raw cache accesses.
        """
        encodings, from_cache = self._lookup(side)
        if from_cache:
            self.counters.record_hit(
                records_served=len(encodings) if records is None else records
            )
        return encodings

    def table_encodings(self, side: str) -> TableEncodings:
        """Cached batched encodings of one side, computing them on first use."""
        return self._serve(side)

    # ------------------------------------------------------------------
    # Table-level views
    # ------------------------------------------------------------------
    def keys(self, side: str) -> Tuple[str, ...]:
        return self.table_encodings(side).keys

    def irs(self, side: str) -> np.ndarray:
        return self.table_encodings(side).irs

    def mu(self, side: str) -> np.ndarray:
        return self.table_encodings(side).mu

    def sigma(self, side: str) -> np.ndarray:
        return self.table_encodings(side).sigma

    def flat_mu(self, side: str) -> np.ndarray:
        return self.table_encodings(side).flat_mu()

    def entity_encoding(self, side: str) -> EntityEncoding:
        """Legacy-shaped view for consumers built on :class:`EntityEncoding`."""
        return self.table_encodings(side).entity_encoding()

    def encode_task(self) -> Dict[str, EntityEncoding]:
        """Both sides as legacy encodings (mirrors the representation API)."""
        return {side: self.entity_encoding(side) for side in SIDES}

    # ------------------------------------------------------------------
    # Pair indexing and gathering
    # ------------------------------------------------------------------
    def pair_rows(self, pairs: Sequence[PairLike]) -> Tuple[np.ndarray, np.ndarray]:
        """(left rows, right rows) gather indices of a pair sequence.

        Pure indexing — does not count as serving encodings.
        """
        left = self._lookup("left")[0].rows([p.left_id for p in pairs])
        right = self._lookup("right")[0].rows([p.right_id for p in pairs])
        return left, right

    def gather_pair_irs(self, pairs: Sequence[PairLike]) -> Tuple[np.ndarray, np.ndarray]:
        """IR input tensors of a pair sequence, each (n, arity, ir_dim)."""
        pairs = list(pairs)
        if not pairs:
            arity = self.task.arity
            dim = self.representation.config.ir_dim
            empty = np.zeros((0, arity, dim))
            return empty, empty.copy()
        # The legacy path re-encoded the referenced pair records per call.
        left = self._serve("left", records=len(pairs))
        right = self._serve("right", records=len(pairs))
        left_rows = left.rows([p.left_id for p in pairs])
        right_rows = right.rows([p.right_id for p in pairs])
        self.counters.record_pairs(len(pairs))
        return left.irs[left_rows], right.irs[right_rows]

    def pair_ir_arrays(self, pairs: Sequence[PairLike]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(left IRs, right IRs, labels): the matcher's featurisation input.

        Unlabeled pairs (plain :class:`RecordPair`) get label 0, matching the
        legacy convention for candidate featurisation.
        """
        pairs = list(pairs)
        left, right = self.gather_pair_irs(pairs)
        labels = np.array([getattr(p, "label", 0) for p in pairs], dtype=np.float64)
        return left, right, labels

    def gather_pair_latents(
        self, pairs: Sequence[PairLike]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(mu_left, sigma_left, mu_right, sigma_right), each (n, arity, latent)."""
        pairs = list(pairs)
        if not pairs:
            arity = self.task.arity
            latent = self.representation.config.latent_dim
            empty = np.zeros((0, arity, latent))
            return empty, empty.copy(), empty.copy(), empty.copy()
        left = self._serve("left", records=len(pairs))
        right = self._serve("right", records=len(pairs))
        left_rows = left.rows([p.left_id for p in pairs])
        right_rows = right.rows([p.right_id for p in pairs])
        return left.mu[left_rows], left.sigma[left_rows], right.mu[right_rows], right.sigma[right_rows]

    # ------------------------------------------------------------------
    # Vectorized pair scoring
    # ------------------------------------------------------------------
    def pair_latent_distances(self, pairs: Sequence[PairLike]) -> np.ndarray:
        """Expected latent distance per pair (the AL diversity statistic).

        Mean over attributes of the Euclidean distance between posterior
        means — the vectorized equivalent of the per-pair loop formerly in
        :func:`repro.core.active.sampler.pair_latent_distances`.
        """
        pairs = list(pairs)
        if not pairs:
            return np.zeros(0)
        mu_left, _, mu_right, _ = self.gather_pair_latents(pairs)
        self.counters.record_pairs(len(pairs))
        return np.sqrt(((mu_left - mu_right) ** 2).sum(axis=-1)).mean(axis=-1)

    def pair_tuple_wasserstein(self, pairs: Sequence[PairLike]) -> np.ndarray:
        """Tuple-level W2^2 per pair (Algorithm 1's bootstrap ranking).

        Vectorized equivalent of calling
        :func:`repro.core.distances.tuple_wasserstein` pair by pair.
        """
        pairs = list(pairs)
        if not pairs:
            return np.zeros(0)
        mu_left, sigma_left, mu_right, sigma_right = self.gather_pair_latents(pairs)
        self.counters.record_pairs(len(pairs))
        per_attribute = ((mu_left - mu_right) ** 2 + (sigma_left - sigma_right) ** 2).sum(axis=-1)
        return per_attribute.mean(axis=-1)

    def record_external_gather(self, n_pairs: int) -> None:
        """Counter bookkeeping for gathers performed outside the store.

        Sharded resolution hands row indices to pool workers which gather
        directly from the shared cached arrays; this mirrors the accounting
        :meth:`gather_pair_irs` would have done (one logical hit per side
        plus the scored pairs) so streamed and sharded runs report
        comparable counters.
        """
        if n_pairs <= 0:
            return
        self.counters.record_hit(records_served=n_pairs)
        self.counters.record_hit(records_served=n_pairs)
        self.counters.record_pairs(n_pairs)

    # ------------------------------------------------------------------
    def resident_bytes(self) -> int:
        """Bytes held by the resident encodings of all cached sides.

        For the ``raw`` codec this is the float array footprint; for a
        quantized codec the code footprint (plus the tiny params) — the
        number the serve daemon's ``/stats`` reports as its working set.
        """
        total = 0
        for encodings in self._cache.values():
            for name in _ARRAY_FIELDS:
                total += int(getattr(encodings, name).nbytes)
        return total

    def stats(self) -> Dict[str, int]:
        """Defensive snapshot of the attached counters.

        The returned dict is a fresh copy on every call: mutating it (or
        holding it across further store operations) cannot perturb the live
        counters, so harnesses can diff successive snapshots safely.
        """
        return dict(self.counters.as_dict())

    def __repr__(self) -> str:
        cached = ",".join(sorted(self._cache)) or "empty"
        return f"EncodingStore(task={self.task.name!r}, cached=[{cached}])"


def encode_table_rows(
    representation: "EntityRepresentationModel", table: Table
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(irs, mu, sigma) of one table-shaped record collection.

    Standalone so pool workers — which receive the representation through a
    shared-memory published state (:mod:`repro.engine.sharedmem`), or share
    it outright on the threaded path — can encode row ranges without
    constructing a store: the per-value IR transform and row-wise VAE
    forward make each row's encoding independent of which batch it rides
    in, which is what lets delta paths and pooled tail encodes splice rows
    encoded at different times into one table.
    """
    irs = representation.ir_generator.transform_table(table)
    n, arity, _ = irs.shape
    if n == 0:
        latent = representation.config.latent_dim
        mu = np.zeros((0, arity, latent))
        sigma = np.zeros((0, arity, latent))
    else:
        flat_mu, flat_sigma = representation.vae.encode_numpy(irs.reshape(n * arity, -1))
        latent = flat_mu.shape[-1]
        mu = flat_mu.reshape(n, arity, latent)
        sigma = flat_sigma.reshape(n, arity, latent)
    return irs, mu, sigma


def _splice_encodings(
    keys: Tuple[str, ...],
    reused_positions: Sequence[int],
    reused: TableEncodings,
    reused_rows: Sequence[int],
    fresh_positions: Sequence[int],
    fresh: Optional[TableEncodings],
) -> TableEncodings:
    """Assemble a mutated table's encodings from reused and fresh rows.

    ``reused_positions[i]`` (a current-table row) is filled from row
    ``reused_rows[i]`` of ``reused``; ``fresh_positions[j]`` from row ``j``
    of ``fresh``.  Together the two position sets must tile ``range(len(
    keys))`` — the result is indistinguishable from a whole-table encode of
    the current table.
    """
    n = len(keys)
    reference = fresh if fresh is not None else reused
    out: Dict[str, np.ndarray] = {}
    for name in _ARRAY_FIELDS:
        reused_array = getattr(reused, name)
        fresh_array = getattr(fresh, name) if fresh is not None else None
        if isinstance(reused_array, CodecArray):
            # Code-space splice: scatter int8 codes, never decode. Fresh
            # rows were quantized with the entry's fixed params, so their
            # codes drop straight in.
            codes = np.empty(
                (n,) + reused_array.codes.shape[1:], dtype=reused_array.codes.dtype
            )
            if len(reused_positions):
                codes[np.asarray(reused_positions, dtype=np.intp)] = reused_array.codes[
                    np.asarray(reused_rows, dtype=np.intp)
                ]
            if fresh_array is not None and len(fresh_positions):
                codes[np.asarray(fresh_positions, dtype=np.intp)] = (
                    fresh_array.codes
                    if isinstance(fresh_array, CodecArray)
                    else reused_array.encode_rows(fresh_array)
                )
            out[name] = CodecArray(
                codes, reused_array.params, on_decode=reused_array.on_decode
            )
            continue
        sample = np.asarray(getattr(reference, name))
        array = np.empty((n,) + sample.shape[1:], dtype=sample.dtype)
        if len(reused_positions):
            array[np.asarray(reused_positions, dtype=np.intp)] = np.asarray(
                reused_array
            )[np.asarray(reused_rows, dtype=np.intp)]
        if fresh_array is not None and len(fresh_positions):
            array[np.asarray(fresh_positions, dtype=np.intp)] = fresh_array
        out[name] = array
    return TableEncodings(
        keys=keys,
        irs=out["irs"],
        mu=out["mu"],
        sigma=out["sigma"],
        row_index={key: row for row, key in enumerate(keys)},
    )


def _concat_encodings(prefix: TableEncodings, tail: TableEncodings) -> TableEncodings:
    """Stitch a reused prefix and a freshly encoded tail into one table.

    The delta path's merge point: ``prefix`` rows came from the in-memory or
    on-disk cache, ``tail`` rows from an append-only encode; the result is
    indistinguishable from a whole-table encode of the grown table.
    """
    if len(tail) == 0:
        return prefix
    keys = tuple(prefix.keys) + tuple(tail.keys)

    def _cat(head, rows):
        if isinstance(head, CodecArray):
            return head.concat_rows(rows)  # code-space append, no decode
        return np.concatenate([np.asarray(head), rows])

    return TableEncodings(
        keys=keys,
        irs=_cat(prefix.irs, tail.irs),
        mu=_cat(prefix.mu, tail.mu),
        sigma=_cat(prefix.sigma, tail.sigma),
        row_index={key: row for row, key in enumerate(keys)},
    )
