"""Row-range sharding and the worker pool shared by the resolve stages.

This module owns two building blocks the planner-driven engine
(:mod:`repro.engine.plan`) distributes work with:

* :class:`ShardedEncodingStore` — an :class:`~repro.engine.store.EncodingStore`
  that additionally exposes its cached IR/latent arrays as row-range shard
  views (zero-copy slices), the unit of distribution for parallel work.
  Shard *bounds* are derived from the task's table sizes, so planning never
  forces an encode; :meth:`ShardedEncodingStore.load_shard` serves a single
  shard lazily from the chunked persistent cache when the table is not in
  memory yet.
* the persistent worker pool — :func:`acquire_pool`/:func:`release_pool`
  over a single-slot cache, :func:`make_pool` (instrumented by
  :data:`POOL_SPAWNS`), and the :func:`publish_worker_state` registry that
  hands stage state to pool workers (via shared memory for process pools).

:func:`resolve_sharded` — the parallel counterpart of
:func:`~repro.engine.stream.resolve_stream` — is a thin front-end over the
:class:`~repro.engine.plan.ResolutionExecutor`: candidate pairs are
enumerated with *exactly* the same chunking and batch packing as the
streamed path (so the two are bit-identical), blocking and scoring fan out
across the pool, and results merge back deterministically by
``(batch_index, pair_index)`` regardless of completion order.

Worker strategy
---------------
On Linux the pool is fork-based and *persistent*: one pool survives the
encode → block → score stages of a resolve and is cached across resolves
(delta rounds reuse it), so pool spawn cost is paid once, not per stage.
Because the pool can predate any given stage's state, forked workers no
longer rely on copy-on-write inheritance; instead each stage *publishes* its
state — encoded arrays, the LSH index, the matcher — into
``multiprocessing.shared_memory`` segments (:mod:`repro.engine.sharedmem`)
that workers map as zero-copy NumPy views, attached once per stage and
memoized.  Tasks still ship only small index ranges; results ship only
candidate pairs or probability vectors.  Where fork or shared memory is
unavailable the pool falls back to threads (NumPy's BLAS releases the GIL in
the kernels that dominate), and ``REPRO_ENGINE_POOL=fork|thread|serial``
forces the choice.  Work is deterministic on every path: workers run the
same NumPy ops on the same arrays, so merged results are byte-identical to a
single-process run over the same store.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import sys
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.blocking.neighbours import NearestNeighbourSearch
from repro.config import BlockingConfig
from repro.data.pairs import RecordPair
from repro.engine.quant import CodecArray
from repro.engine.store import EncodingStore, TableEncodings
from repro.engine.stream import (
    ResolutionBatch,
    ScoredPairs,
    guard_store_version,
    pin_store_version,
    query_chunk_for,
)
from repro.eval.timing import ShardTimings, StageTimings

#: Default number of rows per table shard.
DEFAULT_SHARD_ROWS = 2048


def shard_bounds_for(side: str, n_rows: int, shard_rows: int) -> List["ShardBounds"]:
    """Row ranges covering ``n_rows`` rows of one side, in row order."""
    if shard_rows <= 0:
        raise ValueError("shard_rows must be positive")
    if n_rows <= 0:
        return []
    return [
        ShardBounds(side=side, index=i, start=start, stop=min(start + shard_rows, n_rows))
        for i, start in enumerate(range(0, n_rows, shard_rows))
    ]


# ----------------------------------------------------------------------
# Row-range sharding of cached encodings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardBounds:
    """Half-open row range ``[start, stop)`` of one shard of a table."""

    side: str
    index: int
    start: int
    stop: int

    @property
    def rows(self) -> int:
        return self.stop - self.start


class ShardedEncodingStore(EncodingStore):
    """An encoding store whose cached tables are addressable in row shards.

    Sharding is a *view* concern: the underlying cache still holds one
    contiguous array per table (so gathers spanning shards stay a single
    fancy-index), and :meth:`table_shard` hands out zero-copy row-range
    slices for consumers that distribute work — the parallel resolver, the
    scaling benchmark, per-shard diagnostics.

    Parameters
    ----------
    shard_rows:
        Target rows per shard; the last shard of a table may be short.
    codec:
        Passed through to :class:`EncodingStore` — with a quantized codec,
        shard views stay code views (one byte per dimension).
    """

    def __init__(
        self,
        representation,
        task,
        counters=None,
        persistent=None,
        shard_rows: int = DEFAULT_SHARD_ROWS,
        codec: Optional[str] = None,
    ) -> None:
        super().__init__(
            representation, task, counters=counters, persistent=persistent, codec=codec
        )
        if shard_rows <= 0:
            raise ValueError("shard_rows must be positive")
        self.shard_rows = shard_rows

    # ------------------------------------------------------------------
    def shard_bounds(self, side: str) -> List[ShardBounds]:
        """Row ranges covering one side, in row order.

        Derived from the task's table size (a table's encodings always carry
        one row per record), so planning shard layouts never forces an
        encode or a disk load.
        """
        return shard_bounds_for(side, len(self._table_of(side)), self.shard_rows)

    def num_shards(self, side: str) -> int:
        return len(self.shard_bounds(side))

    def table_shard(self, side: str, index: int) -> TableEncodings:
        """Zero-copy row-range view of one shard of a table's encodings.

        The returned object is a full :class:`TableEncodings` (local row
        index included) whose arrays are slices sharing memory with the
        cached table, so handing shards to workers does not duplicate data.
        """
        bounds = self.shard_bounds(side)
        if not 0 <= index < len(bounds):
            raise IndexError(f"shard {index} out of range for side {side!r} ({len(bounds)} shards)")
        b = bounds[index]
        full = self.table_encodings(side)
        keys = full.keys[b.start : b.stop]

        def _slice(array):
            # Keep quantized shards as code views: a plain slice of a
            # CodecArray would decode the whole shard eagerly.
            if isinstance(array, CodecArray):
                return array.row_slice(b.start, b.stop)
            return array[b.start : b.stop]

        return TableEncodings(
            keys=keys,
            irs=_slice(full.irs),
            mu=_slice(full.mu),
            sigma=_slice(full.sigma),
            row_index={key: row for row, key in enumerate(keys)},
        )

    def load_shard(self, side: str, index: int) -> TableEncodings:
        """One shard's encodings without materialising the whole table.

        Serving priority mirrors the store's cache hierarchy: an in-memory
        table serves a zero-copy view; otherwise, when a persistent cache is
        attached, only the chunks overlapping the shard's row range are read
        (counted via ``chunk_loads``); only when both miss is the full table
        computed and the view sliced from it.
        """
        self._check_version()
        bounds = self.shard_bounds(side)
        if not 0 <= index < len(bounds):
            raise IndexError(f"shard {index} out of range for side {side!r} ({len(bounds)} shards)")
        if side in self._cache or self.persistent is None:
            return self.table_shard(side, index)
        b = bounds[index]
        loaded = self.persistent.load_range(
            self.task.name,
            side,
            self.representation.encoding_version,
            # Memoized: repeated shard loads of one table CRC its rows once.
            self.table_fingerprint(side),
            b.start,
            b.stop,
            counters=self.counters,
        )
        if loaded is not None:
            self.counters.record_disk_hit()
            return loaded
        # Miss: fall back to materialising the whole table.  That path runs
        # the store's own persistent probe, which does the miss accounting —
        # counting here too would double-book one logical probe.
        return self.table_shard(side, index)

    def iter_shards(self, side: str) -> Iterator[TableEncodings]:
        """All shards of one side, in row order."""
        for bounds in self.shard_bounds(side):
            yield self.table_shard(side, bounds.index)

    def __repr__(self) -> str:
        cached = ",".join(sorted(self._cache)) or "empty"
        return (
            f"ShardedEncodingStore(task={self.task.name!r}, cached=[{cached}], "
            f"shard_rows={self.shard_rows})"
        )


# ----------------------------------------------------------------------
# Worker-pool plumbing
# ----------------------------------------------------------------------
#: Pools spawned since import — the observable cost the persistent-pool
#: cache exists to minimise.  Regression tests pin this: one full pooled
#: resolve must spawn exactly one pool, and delta rounds must spawn none.
POOL_SPAWNS = 0

#: Parent-side state registry, keyed by a token unique to each published
#: stage state so concurrent runs can never cross wires.  Thread pools (and
#: the publishing parent itself) resolve states here; forked workers of the
#: persistent pool resolve them via the shared-memory spec carried on the
#: :class:`StateHandle` instead, because the pool may predate the state.
_WORKER_STATES: Dict[str, object] = {}
_PUBLICATIONS: Dict[str, object] = {}
_POOL_TOKENS = itertools.count()


def new_pool_token() -> str:
    """A process-unique token for one published worker state."""
    return f"{os.getpid()}-{next(_POOL_TOKENS)}"


def release_pool_token(token: str) -> None:
    """Drop a token's parent-side state."""
    _WORKER_STATES.pop(token, None)


@dataclass(frozen=True)
class StateHandle:
    """Small picklable reference to one published stage state.

    Carries the registry token (enough for thread pools, which share the
    parent's address space) plus, for process pools, the shared-memory
    :class:`~repro.engine.sharedmem.StateSpec` a worker attaches on first
    use.
    """

    token: str
    spec: Optional[object] = None


def worker_state(ref) -> object:
    """Resolve a :class:`StateHandle` (or bare token) to its state.

    In the publishing process — and in thread-pool workers — the parent
    registry answers directly.  In a forked pool worker the registry misses
    (the pool predates the state), so the handle's shared-memory spec is
    attached instead; the attachment is memoized per process, so only the
    first task of a stage pays the unpickle.  A spec that carries its own
    ``attach`` method — the distributed runner's artifact-backed specs —
    resolves through it instead, so remote worker processes that share
    nothing but a filesystem can still reach published stage state.
    """
    token = ref if isinstance(ref, str) else ref.token
    try:
        return _WORKER_STATES[token]
    except KeyError:
        if isinstance(ref, str) or ref.spec is None:
            raise
    attach = getattr(ref.spec, "attach", None)
    if attach is not None:
        return attach()
    from repro.engine import sharedmem

    return sharedmem.attach_state(ref.spec)


def publish_worker_state(state: object, pool: Optional["WorkerPool"]) -> StateHandle:
    """Register a stage state and return the handle tasks should carry.

    The state always lands in the parent registry; when ``pool`` is a
    process pool it is additionally published to shared memory (large
    arrays hoisted into segments, zero-copy on both sides) so the
    persistent pool's pre-existing workers can reach it.
    """
    token = new_pool_token()
    _WORKER_STATES[token] = state
    spec = None
    publish = getattr(pool, "publish_state", None)
    if publish is not None:
        # Pools with their own transport (the distributed runner publishes
        # state as content-addressed artifacts on the shared directory)
        # produce the spec themselves; the parent registry entry above
        # still serves in-process consumers.
        spec = publish(token, state)
    elif pool is not None and pool.kind == "fork":
        from repro.engine import sharedmem

        publication = sharedmem.publish_state(token, state)
        _PUBLICATIONS[token] = publication
        spec = publication.spec
    return StateHandle(token=token, spec=spec)


def release_worker_state(handle: StateHandle) -> None:
    """Unregister a published state and unlink its shared-memory segments."""
    _WORKER_STATES.pop(handle.token, None)
    publication = _PUBLICATIONS.pop(handle.token, None)
    if publication is not None:
        publication.close()


@contextmanager
def published_state(pool: Optional["WorkerPool"], state: object) -> Iterator[StateHandle]:
    """Publish ``state`` for the duration of a ``with`` block."""
    handle = publish_worker_state(state, pool)
    try:
        yield handle
    finally:
        release_worker_state(handle)


class WorkerPool:
    """One persistent executor plus the metadata the cache keys on.

    ``broken`` is set by callers that observed the pool die (a worker
    segfault raises :class:`concurrent.futures.BrokenExecutor`); a broken
    pool is never cached and its ``shutdown`` is idempotent, so the failure
    path is: mark broken → release → the executor is torn down and the next
    acquire spawns fresh — while the caller falls back to the serial
    schedule for the remainder of its run.
    """

    def __init__(self, executor: Executor, kind: str, workers: int) -> None:
        self.executor = executor
        self.kind = kind
        self.workers = workers
        self.broken = False
        self._shut_down = False

    def submit(self, fn, /, *args, **kwargs):
        return self.executor.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        if self._shut_down:
            return
        self._shut_down = True
        # A broken process pool can raise from shutdown; the pool is being
        # discarded either way.
        try:
            self.executor.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - depends on how the pool died
            pass

    def __repr__(self) -> str:
        return f"WorkerPool(kind={self.kind!r}, workers={self.workers}, broken={self.broken})"


def pool_kind_default() -> str:
    """Which pool transport this process should use: fork, thread or serial.

    ``REPRO_ENGINE_POOL`` overrides (``fork``/``thread``/``serial``).
    Otherwise fork is chosen on Linux when shared-memory segments work —
    the persistent pool ships stage state through shared memory, so without
    segments the process path would have to pickle arrays per task and the
    threaded path (NumPy releases the GIL in the kernels that dominate) is
    the better fallback.  Fork stays gated off on macOS: forking after the
    parent has touched Accelerate/BLAS aborts the children, which is why
    CPython made ``spawn`` the macOS default.
    """
    if _POOL_OVERRIDE is not None and not _POOL_OVERRIDE.broken:
        # An installed override (the distributed runner) claims every pooled
        # stage for the duration of its ``pool_override`` block, including
        # on hosts where the env would otherwise force the serial schedule.
        # A broken override falls through: the rest of the run degrades to
        # whatever local transport this host would normally use.
        return _POOL_OVERRIDE.kind
    forced = os.environ.get("REPRO_ENGINE_POOL", "").strip().lower()
    if forced in ("fork", "thread", "serial"):
        return forced
    if forced:
        raise ValueError(
            f"REPRO_ENGINE_POOL={forced!r} is not one of 'fork', 'thread', 'serial'"
        )
    from repro.engine.sharedmem import shared_memory_available

    if (
        sys.platform.startswith("linux")
        and "fork" in multiprocessing.get_all_start_methods()
        and shared_memory_available()
    ):
        return "fork"
    return "thread"


def make_pool(workers: int, kind: Optional[str] = None) -> WorkerPool:
    """Spawn a new worker pool (callers normally want :func:`acquire_pool`).

    Workers are stateless at spawn time — stage state arrives later through
    :func:`publish_worker_state` — which is what makes one pool reusable
    across encode → block → score and across delta rounds.
    """
    global POOL_SPAWNS
    kind = kind or pool_kind_default()
    if kind == "serial":
        raise ValueError("serial schedules do not use a pool")
    POOL_SPAWNS += 1
    if kind == "fork":
        context = multiprocessing.get_context("fork")
        executor: Executor = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    else:
        executor = ThreadPoolExecutor(max_workers=workers)
    return WorkerPool(executor, kind, workers)


#: Single-slot pool cache: the released pool of the last parallel run,
#: handed back verbatim when the next run wants the same shape.  One slot is
#: deliberate — resolves run one at a time in this engine, and a second
#: cached pool would only pin idle processes.
_CACHED_POOL: Optional[WorkerPool] = None

#: When set, :func:`acquire_pool` hands out this pool instead of a local
#: one — the hook the distributed runner uses to route every pooled stage
#: (build, query, score, tail encode) of the existing executors through its
#: coordinator/queue transport without touching their control flow.
_POOL_OVERRIDE: Optional[WorkerPool] = None


@contextmanager
def pool_override(pool: WorkerPool) -> Iterator[WorkerPool]:
    """Route :func:`acquire_pool` to ``pool`` for the duration of the block.

    Overrides do not nest (the engine runs one resolve at a time), and the
    override is never cached, shut down or replaced by
    :func:`release_pool`/:func:`shutdown_pools` — its owner manages its
    lifetime.  A pool marked broken inside the block stops being handed
    out, so the executors' serial-tail fallback degrades exactly as it
    does for a crashed local pool.
    """
    global _POOL_OVERRIDE
    if _POOL_OVERRIDE is not None:
        raise RuntimeError("a pool override is already active")
    _POOL_OVERRIDE = pool
    try:
        yield pool
    finally:
        _POOL_OVERRIDE = None


def acquire_pool(workers: int, kind: Optional[str] = None) -> WorkerPool:
    """A pool of the requested shape — cached if compatible, else fresh.

    A cached pool of a different shape (or one marked broken) is shut down
    *before* the replacement spawns, so forked children never inherit a live
    executor.  With an active (unbroken) :func:`pool_override` that pool is
    returned verbatim, whatever shape was requested.
    """
    global _CACHED_POOL
    if _POOL_OVERRIDE is not None and not _POOL_OVERRIDE.broken:
        return _POOL_OVERRIDE
    kind = kind or pool_kind_default()
    pool, _CACHED_POOL = _CACHED_POOL, None
    if pool is not None:
        if pool.kind == kind and pool.workers == workers and not pool.broken:
            return pool
        pool.shutdown()
    return make_pool(workers, kind)


def release_pool(pool: WorkerPool) -> None:
    """Return a pool to the cache (broken pools are shut down instead)."""
    global _CACHED_POOL
    if pool is _POOL_OVERRIDE:
        # Override pools are owned by whoever installed them; the engine
        # neither caches nor tears them down (broken or not).
        return
    if pool.broken:
        pool.shutdown()
        return
    if _CACHED_POOL is None:
        _CACHED_POOL = pool
    elif _CACHED_POOL is not pool:
        pool.shutdown()


def shutdown_pools() -> None:
    """Tear down the cached pool (idempotent; registered atexit)."""
    global _CACHED_POOL
    pool, _CACHED_POOL = _CACHED_POOL, None
    if pool is not None:
        pool.shutdown()


def release_engine_resources() -> None:
    """Release everything a long-lived process holds between resolve tasks.

    A batch CLI run can lean on the ``atexit`` hook below, but a daemon
    that stops serving one task (or goes idle) must not keep the persistent
    fork pool, published shared-memory segments, worker-state registry
    entries or open chunk-archive handles alive for hours.  Idempotent and
    safe to call between tasks: the next resolve simply re-acquires a pool
    and re-opens handles on demand.
    """
    shutdown_pools()
    # Leaked publications: states published but never released (an abandoned
    # run that errored between publish and release).  Closing unlinks the
    # shared-memory segments.
    for token in list(_PUBLICATIONS):
        publication = _PUBLICATIONS.pop(token, None)
        if publication is not None:
            publication.close()
    _WORKER_STATES.clear()
    from repro.engine import sharedmem
    from repro.engine.persist import close_chunk_handles

    sharedmem.detach_all()
    close_chunk_handles()


atexit.register(release_engine_resources)


# ----------------------------------------------------------------------
# Parallel resolution (front-end over the planner engine)
# ----------------------------------------------------------------------
def resolve_sharded(
    store: EncodingStore,
    matcher,
    blocking: Optional[BlockingConfig] = None,
    k: int = 10,
    batch_size: int = 2048,
    threshold: float = 0.5,
    workers: int = 2,
    shard_timings: Optional[ShardTimings] = None,
    stage_timings: Optional[StageTimings] = None,
) -> Iterator[ResolutionBatch]:
    """Resolve the candidate stream across a worker pool.

    Yields the *same* :class:`ResolutionBatch` sequence as
    :func:`~repro.engine.stream.resolve_stream` over the same store — same
    candidate enumeration, same batch packing, byte-identical probabilities —
    but the LSH blocking queries *and* the per-batch scoring run concurrently
    on ``workers`` pool workers, re-merged in deterministic order, so
    downstream consumers cannot observe scheduling nondeterminism.

    This is a thin front-end over the plan/execute engine: a
    :class:`~repro.engine.plan.ResolutionPlanner` partitions the work into
    row-range shards and a :class:`~repro.engine.plan.ResolutionExecutor`
    runs the encode → block → score stage graph.  ``workers=1`` runs the
    single-process serial schedule (recording per-batch timings when a sink
    is supplied).  Validation is eager; pools are created lazily on first
    iteration and torn down when the iterator is exhausted or closed.
    """
    from repro.engine.plan import ResolutionExecutor, ResolutionPlanner

    plan = ResolutionPlanner.from_store(
        store, blocking=blocking, k=k, batch_size=batch_size, workers=workers
    ).plan()
    return ResolutionExecutor(
        plan,
        store,
        matcher,
        threshold=threshold,
        shard_timings=shard_timings,
        stage_timings=stage_timings,
    ).run()


def query_shard_pairs(
    search: NearestNeighbourSearch,
    flat: np.ndarray,
    keys,
    start: int,
    stop: int,
    k: int,
    query_chunk: int,
) -> List[RecordPair]:
    """Top-K candidate pairs of one row range, queried chunk by chunk.

    The one query loop shared by every enumerator — the sharded serial
    enumeration below and the planner's pool tasks — so the chunk walk that
    underpins the byte-identity contract has a single definition.
    """
    pairs: List[RecordPair] = []
    for chunk_start in range(start, stop, query_chunk):
        chunk_stop = min(chunk_start + query_chunk, stop)
        pairs.extend(
            search.candidate_pairs(flat[chunk_start:chunk_stop], keys[chunk_start:chunk_stop], k=k)
        )
    return pairs


def iter_sharded_candidate_batches(
    store: ShardedEncodingStore,
    blocking: Optional[BlockingConfig] = None,
    k: int = 10,
    batch_size: int = 2048,
) -> Iterator[Tuple[int, List[RecordPair]]]:
    """Candidate batches enumerated shard by shard over the left table.

    Yields exactly the ``(batch_index, pairs)`` sequence of
    :func:`repro.engine.stream.iter_candidate_batches`: LSH top-K queries
    are independent per query row, so walking the left table in row order —
    shard view by shard view, chunk by chunk within a shard — produces the
    identical pair stream, and batch packing depends only on that stream.
    The row-range shard views are the unit of enumeration here and the unit
    of distribution for the planner's parallel blocking stage.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    pinned = pin_store_version(store)

    def generate() -> Iterator[Tuple[int, List[RecordPair]]]:
        search = NearestNeighbourSearch.from_store(store, config=blocking)
        query_chunk = query_chunk_for(batch_size, k)
        buffer: List[RecordPair] = []
        batch_index = 0
        for bounds in store.shard_bounds("left"):
            guard_store_version(store, pinned)
            shard = store.table_shard("left", bounds.index)
            buffer.extend(
                query_shard_pairs(search, shard.flat_mu(), shard.keys, 0, len(shard), k, query_chunk)
            )
            while len(buffer) >= batch_size:
                head, buffer = buffer[:batch_size], buffer[batch_size:]
                yield batch_index, head
                batch_index += 1
        if buffer:
            yield batch_index, buffer

    return generate()


def merge_scored_batches(batches: Iterable[ScoredPairs]) -> ScoredPairs:
    """Concatenate scored batches into one :class:`ScoredPairs`.

    Batches carrying a ``batch_index`` are ordered by it (then by position
    within the batch — pair order inside a batch is preserved), so merging
    the out-of-order output of a future-based consumer is deterministic.
    An empty input merges to an empty result with threshold 0.5.
    """
    materialized = list(batches)
    indexed = sorted(
        enumerate(materialized),
        key=lambda item: (getattr(item[1], "batch_index", item[0]), item[0]),
    )
    pairs: List[RecordPair] = []
    chunks: List[np.ndarray] = []
    threshold: Optional[float] = None
    for _, batch in indexed:
        pairs.extend(batch.pairs)
        chunks.append(np.asarray(batch.probabilities))
        if threshold is None:
            threshold = batch.threshold
        elif batch.threshold != threshold:
            raise ValueError("cannot merge scored batches with differing thresholds")
    probabilities = np.concatenate(chunks) if chunks else np.zeros(0)
    return ScoredPairs(pairs=pairs, probabilities=probabilities, threshold=0.5 if threshold is None else threshold)
