"""Sharded parallel resolution: multi-worker scoring over the encoding store.

This module closes the seam :mod:`repro.engine.stream` left open: the cached
table encodings are split into row-range *shards* and candidate slices are
scored across a pool of workers instead of serially in the calling process.

Two pieces:

* :class:`ShardedEncodingStore` — an :class:`~repro.engine.store.EncodingStore`
  that additionally exposes its cached IR/latent arrays as row-range shard
  views (zero-copy slices), the unit of distribution for parallel work;
* :func:`resolve_sharded` — the parallel counterpart of
  :func:`~repro.engine.stream.resolve_stream`: candidate pairs are enumerated
  with *exactly* the same chunking and batch packing as the streamed path
  (so the two are bit-identical), but each batch's gather-and-score runs on a
  worker pool, and results are merged back deterministically by
  ``(batch_index, pair_index)`` regardless of completion order.

Worker strategy
---------------
On platforms with ``fork`` (Linux), workers are forked processes that inherit
the cached encoding arrays and the matcher by copy-on-write — nothing large
is ever pickled; tasks ship only ``(batch_index, row indices)`` and results
ship only the probability vector.  Where ``fork`` is unavailable the pool
falls back to threads (NumPy's BLAS releases the GIL during the matmuls that
dominate scoring).  Scoring is deterministic either way: workers run the same
NumPy ops on the same arrays, so the merged probabilities are byte-identical
to a single-process :func:`resolve_stream` over the same store.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.blocking.neighbours import NearestNeighbourSearch
from repro.config import BlockingConfig
from repro.data.pairs import RecordPair
from repro.engine.store import EncodingStore, TableEncodings
from repro.engine.stream import (
    ResolutionBatch,
    ScoredPairs,
    guard_store_version,
    iter_candidate_batches,
    pin_store_version,
    resolve_stream,
)
from repro.eval.timing import ShardTimings

#: Default number of rows per table shard.
DEFAULT_SHARD_ROWS = 2048


# ----------------------------------------------------------------------
# Row-range sharding of cached encodings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardBounds:
    """Half-open row range ``[start, stop)`` of one shard of a table."""

    side: str
    index: int
    start: int
    stop: int

    @property
    def rows(self) -> int:
        return self.stop - self.start


class ShardedEncodingStore(EncodingStore):
    """An encoding store whose cached tables are addressable in row shards.

    Sharding is a *view* concern: the underlying cache still holds one
    contiguous array per table (so gathers spanning shards stay a single
    fancy-index), and :meth:`table_shard` hands out zero-copy row-range
    slices for consumers that distribute work — the parallel resolver, the
    scaling benchmark, per-shard diagnostics.

    Parameters
    ----------
    shard_rows:
        Target rows per shard; the last shard of a table may be short.
    """

    def __init__(
        self,
        representation,
        task,
        counters=None,
        persistent=None,
        shard_rows: int = DEFAULT_SHARD_ROWS,
    ) -> None:
        super().__init__(representation, task, counters=counters, persistent=persistent)
        if shard_rows <= 0:
            raise ValueError("shard_rows must be positive")
        self.shard_rows = shard_rows

    # ------------------------------------------------------------------
    def shard_bounds(self, side: str) -> List[ShardBounds]:
        """Row ranges covering one side's cached encodings, in row order."""
        n = len(self.table_encodings(side))
        if n == 0:
            return []
        return [
            ShardBounds(side=side, index=i, start=start, stop=min(start + self.shard_rows, n))
            for i, start in enumerate(range(0, n, self.shard_rows))
        ]

    def num_shards(self, side: str) -> int:
        return len(self.shard_bounds(side))

    def table_shard(self, side: str, index: int) -> TableEncodings:
        """Zero-copy row-range view of one shard of a table's encodings.

        The returned object is a full :class:`TableEncodings` (local row
        index included) whose arrays are slices sharing memory with the
        cached table, so handing shards to workers does not duplicate data.
        """
        bounds = self.shard_bounds(side)
        if not 0 <= index < len(bounds):
            raise IndexError(f"shard {index} out of range for side {side!r} ({len(bounds)} shards)")
        b = bounds[index]
        full = self.table_encodings(side)
        keys = full.keys[b.start : b.stop]
        return TableEncodings(
            keys=keys,
            irs=full.irs[b.start : b.stop],
            mu=full.mu[b.start : b.stop],
            sigma=full.sigma[b.start : b.stop],
            row_index={key: row for row, key in enumerate(keys)},
        )

    def iter_shards(self, side: str) -> Iterator[TableEncodings]:
        """All shards of one side, in row order."""
        for bounds in self.shard_bounds(side):
            yield self.table_shard(side, bounds.index)

    def __repr__(self) -> str:
        cached = ",".join(sorted(self._cache)) or "empty"
        return (
            f"ShardedEncodingStore(task={self.task.name!r}, cached=[{cached}], "
            f"shard_rows={self.shard_rows})"
        )


# ----------------------------------------------------------------------
# Worker-pool plumbing
# ----------------------------------------------------------------------
#: Per-pool worker state, keyed by a token unique to each resolve run so
#: concurrent resolves (and stale fork inheritances) can never cross wires.
#: Process pools populate it in each forked child via the pool initializer
#: (the state arrives by copy-on-write, not pickling); thread pools populate
#: the parent's own copy.  The parent removes its entry when the pool closes.
_WORKER_STATES: Dict[str, Tuple[TableEncodings, TableEncodings, object]] = {}
_POOL_TOKENS = itertools.count()


def _init_worker(token: str, state: Tuple[TableEncodings, TableEncodings, object]) -> None:
    _WORKER_STATES[token] = state


def _score_task(token: str, batch_index: int, left_rows: np.ndarray, right_rows: np.ndarray):
    """Worker task: gather one batch's IRs from the shared arrays and score.

    Returns ``(batch_index, probabilities, seconds)`` — the index makes the
    merge order-independent, the timing feeds per-shard diagnostics.
    """
    left, right, matcher = _WORKER_STATES[token]
    start = time.perf_counter()
    probabilities = matcher.predict_proba(left.irs[left_rows], right.irs[right_rows])
    return batch_index, probabilities, time.perf_counter() - start


def _make_executor(workers: int, token: str, state) -> Tuple[Executor, str]:
    """Process pool via fork on Linux, thread pool otherwise.

    Fork is gated on the platform, not just on availability: macOS lists
    ``fork`` but forking after the parent has touched Accelerate/BLAS (it
    has — the encodings were just computed) aborts the children, which is
    why CPython made ``spawn`` the macOS default.
    """
    if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
        executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=context,
            initializer=_init_worker, initargs=(token, state),
        )
        return executor, "fork"
    executor = ThreadPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(token, state)
    )
    return executor, "thread"


# ----------------------------------------------------------------------
# Parallel resolution
# ----------------------------------------------------------------------
def resolve_sharded(
    store: EncodingStore,
    matcher,
    blocking: Optional[BlockingConfig] = None,
    k: int = 10,
    batch_size: int = 2048,
    threshold: float = 0.5,
    workers: int = 2,
    shard_timings: Optional[ShardTimings] = None,
) -> Iterator[ResolutionBatch]:
    """Score the candidate stream across a worker pool.

    Yields the *same* :class:`ResolutionBatch` sequence as
    :func:`~repro.engine.stream.resolve_stream` over the same store — same
    candidate enumeration, same batch packing, byte-identical probabilities —
    but batches are scored concurrently by ``workers`` pool workers and
    re-merged in ``(batch_index, pair_index)`` order, so downstream consumers
    cannot observe scheduling nondeterminism.

    ``workers=1`` delegates to the single-process streamed path (recording
    per-batch timings when a sink is supplied).  Validation is eager; the
    pool is created lazily on first iteration and torn down when the
    iterator is exhausted or closed.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if workers <= 0:
        raise ValueError("workers must be positive")
    if workers == 1:
        return _resolve_serial(
            store, matcher, blocking=blocking, k=k, batch_size=batch_size,
            threshold=threshold, shard_timings=shard_timings,
        )
    return _resolve_parallel(
        store, matcher, blocking=blocking, k=k, batch_size=batch_size,
        threshold=threshold, workers=workers, shard_timings=shard_timings,
    )


def _resolve_serial(
    store: EncodingStore,
    matcher,
    blocking: Optional[BlockingConfig],
    k: int,
    batch_size: int,
    threshold: float,
    shard_timings: Optional[ShardTimings],
) -> Iterator[ResolutionBatch]:
    stream = resolve_stream(
        store, matcher, blocking=blocking, k=k, batch_size=batch_size, threshold=threshold
    )
    if shard_timings is None:
        return stream

    def generate() -> Iterator[ResolutionBatch]:
        iterator = iter(stream)
        while True:
            start = time.perf_counter()
            try:
                batch = next(iterator)
            except StopIteration:
                return
            # Serial timing folds blocking + gather + score into one figure
            # per batch — the honest single-process cost of that slice.
            shard_timings.record(batch.batch_index, len(batch), time.perf_counter() - start)
            yield batch

    return generate()


def iter_sharded_candidate_batches(
    store: ShardedEncodingStore,
    blocking: Optional[BlockingConfig] = None,
    k: int = 10,
    batch_size: int = 2048,
) -> Iterator[Tuple[int, List[RecordPair]]]:
    """Candidate batches enumerated shard by shard over the left table.

    Yields exactly the ``(batch_index, pairs)`` sequence of
    :func:`repro.engine.stream.iter_candidate_batches`: LSH top-K queries
    are independent per query row, so walking the left table in row order —
    shard view by shard view, chunk by chunk within a shard — produces the
    identical pair stream, and batch packing depends only on that stream.
    The row-range shard views are the unit of enumeration here (and the
    natural unit of distribution once blocking itself is parallelised).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    pinned = pin_store_version(store)

    def generate() -> Iterator[Tuple[int, List[RecordPair]]]:
        search = NearestNeighbourSearch.from_store(store, config=blocking)
        query_chunk = max(1, batch_size // max(1, k))
        buffer: List[RecordPair] = []
        batch_index = 0
        for bounds in store.shard_bounds("left"):
            shard = store.table_shard("left", bounds.index)
            flat = shard.flat_mu()
            for start in range(0, len(shard), query_chunk):
                guard_store_version(store, pinned)
                stop = start + query_chunk
                chunk = search.candidate_pairs(flat[start:stop], shard.keys[start:stop], k=k)
                buffer.extend(chunk)
                while len(buffer) >= batch_size:
                    head, buffer = buffer[:batch_size], buffer[batch_size:]
                    yield batch_index, head
                    batch_index += 1
        if buffer:
            yield batch_index, buffer

    return generate()


def _resolve_parallel(
    store: EncodingStore,
    matcher,
    blocking: Optional[BlockingConfig],
    k: int,
    batch_size: int,
    threshold: float,
    workers: int,
    shard_timings: Optional[ShardTimings],
) -> Iterator[ResolutionBatch]:
    def generate() -> Iterator[ResolutionBatch]:
        # Pin the version BEFORE warming: if a refit lands between the two
        # table encodes below, the guard catches it instead of silently
        # pairing a version-N left table with a version-N+1 right table.
        pinned = pin_store_version(store)
        # Warm both sides *before* the pool exists so forked children inherit
        # the cached arrays instead of recomputing (or re-reading disk).
        left = store.table_encodings("left")
        right = store.table_encodings("right")
        guard_store_version(store, pinned)
        token = f"{os.getpid()}-{next(_POOL_TOKENS)}"
        executor, _ = _make_executor(workers, token, (left, right, matcher))
        try:
            with executor:
                yield from _score_batches(
                    executor, store, left, right, token,
                    blocking=blocking, k=k, batch_size=batch_size,
                    threshold=threshold, workers=workers,
                    pinned=pinned, shard_timings=shard_timings,
                )
        finally:
            _WORKER_STATES.pop(token, None)  # thread pools share our dict

    return generate()


def _score_batches(
    executor: Executor,
    store: EncodingStore,
    left: TableEncodings,
    right: TableEncodings,
    token: str,
    blocking: Optional[BlockingConfig],
    k: int,
    batch_size: int,
    threshold: float,
    workers: int,
    pinned: int,
    shard_timings: Optional[ShardTimings],
) -> Iterator[ResolutionBatch]:
    """Submit batches with bounded in-flight depth; emit in index order.

    Backpressure counts both unfinished futures *and* finished-but-unemitted
    results: when one early batch is slow, later completions park in ``done``
    until it lands, and without counting them the parent would keep
    submitting and buffer the whole stream — the unbounded materialization
    this layer exists to avoid.  Total parked work is therefore capped at
    ``max_inflight`` batches.
    """
    max_inflight = max(2, workers * 2)
    inflight: Dict[object, int] = {}
    pending_pairs: Dict[int, List[RecordPair]] = {}
    done: Dict[int, Tuple[np.ndarray, float]] = {}
    next_emit = 0

    def collect(block: bool) -> None:
        if not inflight:
            return
        completed, _ = wait(
            list(inflight), timeout=None if block else 0, return_when=FIRST_COMPLETED
        )
        for future in completed:
            inflight.pop(future)
            batch_index, probabilities, seconds = future.result()
            done[batch_index] = (probabilities, seconds)

    def emit_ready() -> Iterator[ResolutionBatch]:
        nonlocal next_emit
        while next_emit in done:
            probabilities, seconds = done.pop(next_emit)
            pairs = pending_pairs.pop(next_emit)
            if shard_timings is not None:
                shard_timings.record(next_emit, len(pairs), seconds)
            store.record_external_gather(len(pairs))
            yield ResolutionBatch(
                pairs=pairs, probabilities=probabilities,
                threshold=threshold, batch_index=next_emit,
            )
            next_emit += 1

    # Sharded stores enumerate through their row-range shard views; a plain
    # store falls back to the streamed enumeration.  Both produce the same
    # (batch_index, pairs) sequence.
    if isinstance(store, ShardedEncodingStore):
        batches = iter_sharded_candidate_batches(store, blocking=blocking, k=k, batch_size=batch_size)
    else:
        batches = iter_candidate_batches(store, blocking=blocking, k=k, batch_size=batch_size)
    for batch_index, pairs in batches:
        guard_store_version(store, pinned)
        left_rows = left.rows([p.left_id for p in pairs])
        right_rows = right.rows([p.right_id for p in pairs])
        pending_pairs[batch_index] = pairs
        inflight[executor.submit(_score_task, token, batch_index, left_rows, right_rows)] = batch_index
        while len(inflight) + len(done) >= max_inflight:
            collect(block=True)
            yield from emit_ready()
        collect(block=False)
        yield from emit_ready()
    while inflight:
        collect(block=True)
        yield from emit_ready()
    guard_store_version(store, pinned)


def merge_scored_batches(batches: Iterable[ScoredPairs]) -> ScoredPairs:
    """Concatenate scored batches into one :class:`ScoredPairs`.

    Batches carrying a ``batch_index`` are ordered by it (then by position
    within the batch — pair order inside a batch is preserved), so merging
    the out-of-order output of a future-based consumer is deterministic.
    An empty input merges to an empty result with threshold 0.5.
    """
    materialized = list(batches)
    indexed = sorted(
        enumerate(materialized),
        key=lambda item: (getattr(item[1], "batch_index", item[0]), item[0]),
    )
    pairs: List[RecordPair] = []
    chunks: List[np.ndarray] = []
    threshold: Optional[float] = None
    for _, batch in indexed:
        pairs.extend(batch.pairs)
        chunks.append(np.asarray(batch.probabilities))
        if threshold is None:
            threshold = batch.threshold
        elif batch.threshold != threshold:
            raise ValueError("cannot merge scored batches with differing thresholds")
    probabilities = np.concatenate(chunks) if chunks else np.zeros(0)
    return ScoredPairs(pairs=pairs, probabilities=probabilities, threshold=0.5 if threshold is None else threshold)
