"""Plan/execute layer: one engine behind every resolve front-end.

Resolution is three stages — *encode* the two tables, *block* (LSH index
build + top-K queries) to enumerate candidate pairs, *score* the candidates
in batches — and every earlier entry point special-cased its own slice of
that flow.  This module owns the whole of it:

* :class:`ResolutionPlanner` partitions the work into row-range shards
  (the same bounds :class:`~repro.engine.shard.ShardedEncodingStore` views
  expose) and emits a deterministic stage graph — pure metadata, computed
  from table sizes alone, so a plan can be printed or inspected without
  encoding a single record (``repro plan`` does exactly that);
* :class:`ResolutionExecutor` runs the stages.  With ``workers == 1`` it
  runs the exact serial schedule :func:`~repro.engine.stream.resolve_stream`
  always had.  With a pool, the LSH hash tables are built from per-shard
  partial maps computed in workers, left-table query shards fan out across
  the pool, and scoring batches overlap with blocking — all merged back
  deterministically: candidate order by (shard, row, neighbour rank), scored
  batches by ``(batch_index, pair_index)``, so the yielded stream is
  byte-identical to the serial one regardless of scheduling.

:func:`~repro.engine.stream.resolve_stream` and
:func:`~repro.engine.shard.resolve_sharded` are thin front-ends over this
engine; blocking-only consumers (benchmarks, equivalence tests) can call
:func:`build_index_sharded` / :func:`sharded_candidate_pairs` directly.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocking.lsh import EuclideanLSHIndex
from repro.blocking.neighbours import NearestNeighbourSearch
from repro.config import BlockingConfig
from repro.data.pairs import RecordPair
from repro.data.schema import ERTask
from repro.engine.shard import (
    DEFAULT_SHARD_ROWS,
    ShardBounds,
    make_pool,
    new_pool_token,
    query_shard_pairs,
    release_pool_token,
    shard_bounds_for,
    worker_state,
)
from repro.engine.store import EncodingStore, TableEncodings
from repro.engine.stream import (
    DEFAULT_BATCH_SIZE,
    ResolutionBatch,
    guard_store_version,
    iter_candidate_batches,
    pin_store_version,
    query_chunk_for,
)
from repro.eval.timing import ShardTimings, StageTimings

#: Pair-probability key used for baseline score reuse across delta resolves.
PairKey = Tuple[str, str]


# ----------------------------------------------------------------------
# The plan: a deterministic stage graph over row-range shards
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageUnit:
    """One schedulable unit of work within a stage."""

    name: str
    rows: int = 0
    detail: str = ""


@dataclass(frozen=True)
class Stage:
    """One stage of the resolve graph and the stages it depends on."""

    name: str
    depends_on: Tuple[str, ...]
    units: Tuple[StageUnit, ...]

    @property
    def num_units(self) -> int:
        return len(self.units)


@dataclass(frozen=True)
class DeltaBounds:
    """Row counts separating reusable base rows from new rows, per side."""

    base_left_rows: int
    base_right_rows: int

    def new_rows(self, side: str, total: int) -> int:
        base = self.base_left_rows if side == "left" else self.base_right_rows
        return max(0, total - base)


@dataclass(frozen=True)
class ResolutionPlan:
    """Deterministic description of one resolve run.

    Pure metadata: the plan is computed from table sizes and knobs alone
    (no encoding, no disk access), so it can be printed, compared or
    shipped to a remote runner before any expensive work starts.  A *delta*
    plan additionally records, via ``delta``, how many rows per side are
    covered by the baseline run — its encode stage covers only the tails.
    """

    task_name: str
    left_rows: int
    right_rows: int
    k: int
    batch_size: int
    workers: int
    shard_rows: int
    query_chunk: int
    blocking: Optional[BlockingConfig]
    query_bounds: Tuple[ShardBounds, ...]
    build_bounds: Tuple[ShardBounds, ...]
    stages: Tuple[Stage, ...] = field(default=())
    delta: Optional[DeltaBounds] = None

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"plan has no stage {name!r}")

    def max_batches(self) -> int:
        """Upper bound on scored batches (dedup can only shrink it)."""
        if self.left_rows == 0:
            return 0
        return (self.left_rows * self.k + self.batch_size - 1) // self.batch_size

    def describe(self, max_units: int = 8) -> str:
        """Human-readable stage graph (the ``repro plan`` output)."""
        lines = [
            f"resolution plan for task {self.task_name!r}",
            f"  knobs: workers={self.workers} shard_rows={self.shard_rows} "
            f"k={self.k} batch_size={self.batch_size} query_chunk={self.query_chunk}",
            f"  tables: left={self.left_rows} rows ({len(self.query_bounds)} shards), "
            f"right={self.right_rows} rows ({len(self.build_bounds)} shards)",
        ]
        if self.delta is not None:
            lines.append(
                f"  delta: left +{self.delta.new_rows('left', self.left_rows)} rows "
                f"(base {self.delta.base_left_rows}), "
                f"right +{self.delta.new_rows('right', self.right_rows)} rows "
                f"(base {self.delta.base_right_rows})"
            )
        for position, stage in enumerate(self.stages, start=1):
            dependency = f" <- {', '.join(stage.depends_on)}" if stage.depends_on else ""
            lines.append(f"  [{position}] {stage.name}{dependency} — {stage.num_units} unit(s)")
            for unit in stage.units[:max_units]:
                rows = f" ({unit.rows} rows)" if unit.rows else ""
                detail = f": {unit.detail}" if unit.detail else ""
                lines.append(f"        {unit.name}{rows}{detail}")
            hidden = stage.num_units - max_units
            if hidden > 0:
                lines.append(f"        ... (+{hidden} more)")
        return "\n".join(lines)


class ResolutionPlanner:
    """Partition a task's resolve run into a stage graph over row shards.

    Parameters mirror the resolve knobs; ``shard_rows`` fixes the row-range
    partitioning shared by the blocking fan-out, the sharded store views and
    the chunked persistent cache.
    """

    def __init__(
        self,
        task: ERTask,
        blocking: Optional[BlockingConfig] = None,
        k: int = 10,
        batch_size: int = 2048,
        workers: int = 1,
        shard_rows: int = DEFAULT_SHARD_ROWS,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if workers <= 0:
            raise ValueError("workers must be positive")
        if shard_rows <= 0:
            raise ValueError("shard_rows must be positive")
        self.task = task
        self.blocking = blocking
        self.k = k
        self.batch_size = batch_size
        self.workers = workers
        self.shard_rows = shard_rows

    @classmethod
    def from_store(
        cls,
        store: EncodingStore,
        blocking: Optional[BlockingConfig] = None,
        k: int = 10,
        batch_size: int = 2048,
        workers: int = 1,
    ) -> "ResolutionPlanner":
        """Planner over a store's task, adopting the store's shard layout."""
        shard_rows = getattr(store, "shard_rows", DEFAULT_SHARD_ROWS)
        return cls(
            store.task,
            blocking=blocking,
            k=k,
            batch_size=batch_size,
            workers=workers,
            shard_rows=shard_rows,
        )

    def plan(self) -> ResolutionPlan:
        """The deterministic stage graph for the current knobs."""
        left_rows = len(self.task.left)
        right_rows = len(self.task.right)
        query_bounds = tuple(shard_bounds_for("left", left_rows, self.shard_rows))
        build_bounds = tuple(shard_bounds_for("right", right_rows, self.shard_rows))
        query_chunk = query_chunk_for(self.batch_size, self.k)

        encode = Stage(
            name="encode",
            depends_on=(),
            units=(
                StageUnit(name="left", rows=left_rows, detail="IR transform + VAE forward"),
                StageUnit(name="right", rows=right_rows, detail="IR transform + VAE forward"),
            ),
        )
        block_units = [
            StageUnit(name=f"build right[{b.index}]", rows=b.rows, detail=f"hash rows {b.start}..{b.stop}")
            for b in build_bounds
        ] + [
            StageUnit(name=f"query left[{b.index}]", rows=b.rows, detail=f"top-{self.k} rows {b.start}..{b.stop}")
            for b in query_bounds
        ]
        block = Stage(name="block", depends_on=("encode",), units=tuple(block_units))
        plan_without_score = ResolutionPlan(
            task_name=self.task.name,
            left_rows=left_rows,
            right_rows=right_rows,
            k=self.k,
            batch_size=self.batch_size,
            workers=self.workers,
            shard_rows=self.shard_rows,
            query_chunk=query_chunk,
            blocking=self.blocking,
            query_bounds=query_bounds,
            build_bounds=build_bounds,
        )
        score = Stage(
            name="score",
            depends_on=("block",),
            units=(
                StageUnit(
                    name="batches",
                    detail=(
                        f"streaming, <={plan_without_score.max_batches()} batches "
                        f"of <={self.batch_size} pairs"
                    ),
                ),
            ),
        )
        return ResolutionPlan(
            task_name=self.task.name,
            left_rows=left_rows,
            right_rows=right_rows,
            k=self.k,
            batch_size=self.batch_size,
            workers=self.workers,
            shard_rows=self.shard_rows,
            query_chunk=query_chunk,
            blocking=self.blocking,
            query_bounds=query_bounds,
            build_bounds=build_bounds,
            stages=(encode, block, score),
        )

    def plan_delta(
        self,
        base_left_rows: int = 0,
        base_right_rows: int = 0,
        index_reusable: bool = False,
    ) -> ResolutionPlan:
        """The stage graph of an *incremental* resolve against a baseline.

        ``base_*_rows`` are the per-side row counts the baseline run already
        covers (0 = nothing reusable: the plan degenerates to a cold run).
        The encode stage schedules only the new tail ranges; the block stage
        *extends* the baseline LSH index with the new right rows when
        ``index_reusable`` (no rebuild) and re-queries every left shard
        (top-K answers can change when the index grows); the score stage
        restricts matcher work to pairs involving new rows, reusing baseline
        probabilities for the rest.  Like :meth:`plan`, pure metadata.
        Delta execution is serial (``workers`` is ignored by design — the
        tail work is small; see :class:`DeltaResolutionExecutor`).
        """
        left_rows = len(self.task.left)
        right_rows = len(self.task.right)
        base_left = max(0, min(int(base_left_rows), left_rows))
        base_right = max(0, min(int(base_right_rows), right_rows))
        query_bounds = tuple(shard_bounds_for("left", left_rows, self.shard_rows))
        build_bounds = tuple(shard_bounds_for("right", right_rows, self.shard_rows))
        query_chunk = query_chunk_for(self.batch_size, self.k)

        encode_units = []
        for side, base, total in (("left", base_left, left_rows), ("right", base_right, right_rows)):
            if total > base:
                encode_units.append(StageUnit(
                    name=f"{side} tail",
                    rows=total - base,
                    detail=f"append-only encode rows {base}..{total}",
                ))
            else:
                encode_units.append(StageUnit(
                    name=side, rows=0, detail="cached (no new rows)"
                ))
        encode = Stage(name="encode", depends_on=(), units=tuple(encode_units))

        if index_reusable and base_right < right_rows:
            build_unit = StageUnit(
                name="extend right",
                rows=right_rows - base_right,
                detail=f"hash rows {base_right}..{right_rows} into existing buckets",
            )
        elif index_reusable:
            build_unit = StageUnit(name="reuse right index", rows=0, detail="no new rows")
        else:
            build_unit = StageUnit(
                name="build right", rows=right_rows, detail="no baseline index: full build"
            )
        block_units = [build_unit] + [
            StageUnit(name=f"query left[{b.index}]", rows=b.rows, detail=f"top-{self.k} rows {b.start}..{b.stop}")
            for b in query_bounds
        ]
        block = Stage(name="block", depends_on=("encode",), units=tuple(block_units))
        score = Stage(
            name="score",
            depends_on=("block",),
            units=(
                StageUnit(
                    name="batches",
                    detail=(
                        "streaming; matcher runs only on pairs involving new rows, "
                        "baseline probabilities reused for the rest"
                    ),
                ),
            ),
        )
        return ResolutionPlan(
            task_name=self.task.name,
            left_rows=left_rows,
            right_rows=right_rows,
            k=self.k,
            batch_size=self.batch_size,
            workers=1,
            shard_rows=self.shard_rows,
            query_chunk=query_chunk,
            blocking=self.blocking,
            query_bounds=query_bounds,
            build_bounds=build_bounds,
            stages=(encode, block, score),
            delta=DeltaBounds(base_left_rows=base_left, base_right_rows=base_right),
        )


# ----------------------------------------------------------------------
# Worker tasks (run inside the pool; state arrives by fork, not pickling)
# ----------------------------------------------------------------------
@dataclass
class _PlanState:
    """Everything a pool worker needs, registered under the pool's token."""

    flat: np.ndarray  # record-level query vectors of the left table
    keys: Sequence[object]  # aligned query keys
    search: NearestNeighbourSearch
    left: Optional[TableEncodings] = None
    right: Optional[TableEncodings] = None
    matcher: object = None


def _hash_task(token: str, start: int, stop: int):
    """Build stage: per-table partial bucket maps of one row range."""
    (index,) = worker_state(token)
    started = time.perf_counter()
    partial = index.hash_rows(start, stop)
    return start, partial, time.perf_counter() - started


def _query_task(token: str, shard_index: int, start: int, stop: int, k: int, query_chunk: int):
    """Block stage: top-K candidate pairs of one left-table query shard.

    Rows are walked through :func:`repro.engine.shard.query_shard_pairs`,
    the chunk-walk definition every enumerator shares, so the concatenation
    of shard results in shard order reproduces the serial candidate stream
    pair for pair.
    """
    state: _PlanState = worker_state(token)
    started = time.perf_counter()
    pairs = query_shard_pairs(state.search, state.flat, state.keys, start, stop, k, query_chunk)
    return shard_index, pairs, time.perf_counter() - started


def _score_task(token: str, batch_index: int, left_rows: np.ndarray, right_rows: np.ndarray):
    """Score stage: gather one batch's IRs from the shared arrays and score."""
    state: _PlanState = worker_state(token)
    started = time.perf_counter()
    probabilities = state.matcher.predict_proba(
        state.left.irs[left_rows], state.right.irs[right_rows]
    )
    return batch_index, probabilities, time.perf_counter() - started


# ----------------------------------------------------------------------
# Parallel blocking primitives (also used standalone by benchmarks/tests)
# ----------------------------------------------------------------------
def build_index_sharded(
    vectors: np.ndarray,
    keys: Sequence[object],
    blocking: Optional[BlockingConfig] = None,
    workers: int = 1,
    shard_rows: int = DEFAULT_SHARD_ROWS,
) -> EuclideanLSHIndex:
    """Build an LSH index with per-shard hash maps computed in workers.

    The projections are fixed once in the parent; each worker hashes one
    row-range shard into partial bucket maps and the parent merges them in
    row order, so bucket membership — and therefore every query answer — is
    identical to a serial :meth:`EuclideanLSHIndex.build`.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    config = blocking or BlockingConfig()
    index = EuclideanLSHIndex(
        num_tables=config.num_tables,
        hash_size=config.hash_size,
        bucket_width=config.bucket_width,
        seed=config.seed,
    )
    index.prepare(vectors, keys)
    bounds = shard_bounds_for("right", index.size, shard_rows)
    if workers == 1 or len(bounds) <= 1:
        index.install_tables([index.hash_rows(0, index.size)])
        return index
    token = new_pool_token()
    pool, _ = make_pool(min(workers, len(bounds)), token, (index,))
    try:
        with pool:
            futures = [pool.submit(_hash_task, token, b.start, b.stop) for b in bounds]
            results = sorted(future.result() for future in futures)
    finally:
        release_pool_token(token)
    index.install_tables([partial for _, partial, _ in results])
    return index


def sharded_candidate_pairs(
    vectors: np.ndarray,
    keys: Sequence[object],
    query_vectors: np.ndarray,
    query_keys: Sequence[object],
    blocking: Optional[BlockingConfig] = None,
    k: int = 10,
    workers: int = 1,
    shard_rows: int = DEFAULT_SHARD_ROWS,
    query_chunk: Optional[int] = None,
    stage_timings: Optional[StageTimings] = None,
) -> List[RecordPair]:
    """Blocking alone, sharded end to end: build in workers, query in workers.

    Returns the full candidate-pair list in serial enumeration order —
    shard results are merged by ascending shard index, each shard's pairs
    ordered by (row, neighbour rank).  With ``workers == 1`` every step runs
    serially in the calling process; any worker count yields the identical
    pair list.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    query_vectors = np.asarray(query_vectors, dtype=np.float64)
    query_keys = list(query_keys)
    if query_chunk is None:
        # Mirror the resolve path's chunking at its default batch size, so
        # standalone blocking walks the left table in the same strides.
        query_chunk = query_chunk_for(DEFAULT_BATCH_SIZE, k)
    if query_chunk <= 0:
        raise ValueError("query_chunk must be positive")
    started = time.perf_counter()
    index = build_index_sharded(
        vectors, keys, blocking=blocking, workers=workers, shard_rows=shard_rows
    )
    if stage_timings is not None:
        stage_timings.record("block-build", time.perf_counter() - started)
    search = NearestNeighbourSearch.from_index(index, blocking)
    bounds = shard_bounds_for("left", len(query_vectors), shard_rows)
    chunk = query_chunk
    started = time.perf_counter()
    if workers == 1 or len(bounds) <= 1:
        pairs: List[RecordPair] = []
        for b in bounds:
            pairs.extend(
                query_shard_pairs(search, query_vectors, query_keys, b.start, b.stop, k, chunk)
            )
        if stage_timings is not None:
            stage_timings.record("block-query", time.perf_counter() - started, units=len(bounds))
        return pairs
    token = new_pool_token()
    state = _PlanState(flat=query_vectors, keys=query_keys, search=search)
    pool, _ = make_pool(min(workers, len(bounds)), token, state)
    try:
        with pool:
            futures = [
                pool.submit(_query_task, token, b.index, b.start, b.stop, k, chunk)
                for b in bounds
            ]
            results = sorted(
                (future.result() for future in futures), key=lambda item: item[0]
            )
    finally:
        release_pool_token(token)
    if stage_timings is not None:
        for _, _, seconds in results:
            stage_timings.record("block-query", seconds)
    return [pair for _, shard_pairs, _ in results for pair in shard_pairs]


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class ResolutionExecutor:
    """Run a :class:`ResolutionPlan` against a store and matcher.

    ``workers == 1`` executes the serial schedule
    (:func:`~repro.engine.stream.resolve_stream`'s historical behaviour,
    batch for batch and byte for byte).  With a pool, blocking and scoring
    overlap: query shards and score batches are in flight together, with
    bounded in-flight depth in both stages, and batches are emitted strictly
    in ``batch_index`` order.
    """

    def __init__(
        self,
        plan: ResolutionPlan,
        store: EncodingStore,
        matcher,
        threshold: float = 0.5,
        shard_timings: Optional[ShardTimings] = None,
        stage_timings: Optional[StageTimings] = None,
    ) -> None:
        self.plan = plan
        self.store = store
        self.matcher = matcher
        self.threshold = threshold
        self.shard_timings = shard_timings
        self.stage_timings = stage_timings

    # ------------------------------------------------------------------
    def run(self) -> Iterator[ResolutionBatch]:
        """The scored batch stream; validation and version pinning are eager."""
        pinned = pin_store_version(self.store)
        if self.plan.workers == 1:
            return self._run_serial(pinned)
        return self._run_parallel(pinned)

    # ------------------------------------------------------------------
    def _record_stage(self, stage: str, seconds: float, units: int = 1) -> None:
        if self.stage_timings is not None:
            self.stage_timings.record(stage, seconds, units=units)

    def _run_serial(self, pinned: int) -> Iterator[ResolutionBatch]:
        plan, store, matcher = self.plan, self.store, self.matcher

        def generate() -> Iterator[ResolutionBatch]:
            if self.stage_timings is not None:
                # Warm both sides only when encode is being timed — without a
                # sink the serial schedule encodes lazily inside enumeration,
                # preserving the historical counter traces.
                started = time.perf_counter()
                store.table_encodings("left")
                store.table_encodings("right")
                guard_store_version(store, pinned)
                self._record_stage("encode", time.perf_counter() - started, units=2)
            iterator = iter(
                iter_candidate_batches(
                    store, blocking=plan.blocking, k=plan.k, batch_size=plan.batch_size
                )
            )
            while True:
                started = time.perf_counter()
                try:
                    batch_index, pairs = next(iterator)
                except StopIteration:
                    return
                block_seconds = time.perf_counter() - started
                guard_store_version(store, pinned)
                started = time.perf_counter()
                left, right = store.gather_pair_irs(pairs)
                probabilities = matcher.predict_proba(left, right)
                score_seconds = time.perf_counter() - started
                self._record_stage("block", block_seconds)
                self._record_stage("score", score_seconds)
                if self.shard_timings is not None:
                    self.shard_timings.record(batch_index, len(pairs), block_seconds + score_seconds)
                yield ResolutionBatch(
                    pairs=pairs,
                    probabilities=probabilities,
                    threshold=self.threshold,
                    batch_index=batch_index,
                )

        return generate()

    # ------------------------------------------------------------------
    def _run_parallel(self, pinned: int) -> Iterator[ResolutionBatch]:
        plan, store, matcher = self.plan, self.store, self.matcher

        def generate() -> Iterator[ResolutionBatch]:
            # Stage 1 — encode.  Warm both sides *before* any pool exists so
            # forked children inherit the cached arrays instead of
            # recomputing (or re-reading disk).  The version was pinned
            # before warming: if a refit lands between the two encodes, the
            # guard catches it instead of silently pairing a version-N left
            # table with a version-N+1 right table.
            started = time.perf_counter()
            left = store.table_encodings("left")
            right = store.table_encodings("right")
            guard_store_version(store, pinned)
            self._record_stage("encode", time.perf_counter() - started, units=2)

            # Stage 2a — build the LSH index, hash maps computed in workers.
            # The build uses its own short-lived pool rather than the
            # query/score pool below: fork snapshots worker state at pool
            # creation, so query workers can only see the *finished* index
            # if the pool is created after the build completes.  Sharing one
            # pool would mean shipping the merged hash tables to every task
            # by pickle — costlier than a second fork.
            started = time.perf_counter()
            index = build_index_sharded(
                right.flat_mu(),
                right.keys,
                blocking=plan.blocking,
                workers=plan.workers,
                shard_rows=plan.shard_rows,
            )
            search = NearestNeighbourSearch.from_index(index, plan.blocking)
            self._record_stage("block", time.perf_counter() - started, units=len(plan.build_bounds))
            guard_store_version(store, pinned)

            # Stages 2b+3 — query fan-out and scoring share one pool, so a
            # worker drains whichever stage has work.
            token = new_pool_token()
            state = _PlanState(
                flat=left.flat_mu(),
                keys=left.keys,
                search=search,
                left=left,
                right=right,
                matcher=matcher,
            )
            pool, _ = make_pool(plan.workers, token, state)
            try:
                with pool:
                    yield from self._pump(pool, token, left, right, pinned)
            finally:
                release_pool_token(token)

        return generate()

    def _pump(self, pool, token: str, left: TableEncodings, right: TableEncodings, pinned: int) -> Iterator[ResolutionBatch]:
        """Overlap query shards and score batches with bounded in-flight depth.

        Backpressure counts both unfinished futures *and* finished-but-
        unconsumed results in each stage: when one early unit is slow, later
        completions park until it lands, and without counting them the
        parent would keep submitting and buffer the whole stream — the
        unbounded materialisation this layer exists to avoid.  Emission is
        strictly ordered: shards are consumed by ascending shard index, and
        batches are yielded by ascending ``batch_index``.
        """
        plan, store = self.plan, self.store
        bounds = plan.query_bounds
        max_inflight = max(2, plan.workers * 2)

        query_inflight: Dict[object, int] = {}
        query_done: Dict[int, Tuple[List[RecordPair], float]] = {}
        score_inflight: Dict[object, int] = {}
        score_done: Dict[int, Tuple[np.ndarray, float]] = {}
        pending_pairs: Dict[int, List[RecordPair]] = {}
        buffer: List[RecordPair] = []
        submitted = 0
        next_shard = 0
        batch_index = 0
        next_emit = 0

        def collect(inflight: Dict[object, int], done: Dict, block: bool) -> None:
            if not inflight:
                return
            completed, _ = wait(
                list(inflight), timeout=None if block else 0, return_when=FIRST_COMPLETED
            )
            for future in completed:
                inflight.pop(future)
                key, payload, seconds = future.result()
                done[key] = (payload, seconds)

        def emit_ready() -> Iterator[ResolutionBatch]:
            nonlocal next_emit
            while next_emit in score_done:
                probabilities, seconds = score_done.pop(next_emit)
                pairs = pending_pairs.pop(next_emit)
                if self.shard_timings is not None:
                    self.shard_timings.record(next_emit, len(pairs), seconds)
                self._record_stage("score", seconds)
                store.record_external_gather(len(pairs))
                yield ResolutionBatch(
                    pairs=pairs,
                    probabilities=probabilities,
                    threshold=self.threshold,
                    batch_index=next_emit,
                )
                next_emit += 1

        while True:
            # Top up the query fan-out.
            while submitted < len(bounds) and len(query_inflight) + len(query_done) < max_inflight:
                guard_store_version(store, pinned)
                b = bounds[submitted]
                query_inflight[
                    pool.submit(_query_task, token, b.index, b.start, b.stop, plan.k, plan.query_chunk)
                ] = b.index
                submitted += 1
            collect(query_inflight, query_done, block=False)
            # Consume finished shards strictly in shard order.
            while next_shard in query_done:
                pairs, seconds = query_done.pop(next_shard)
                self._record_stage("block", seconds)
                buffer.extend(pairs)
                next_shard += 1
            blocking_done = next_shard >= len(bounds)
            # Pack and submit score batches (partial batch only at the end).
            while len(buffer) >= plan.batch_size or (blocking_done and buffer):
                head, buffer = buffer[: plan.batch_size], buffer[plan.batch_size :]
                guard_store_version(store, pinned)
                left_rows = left.rows([p.left_id for p in head])
                right_rows = right.rows([p.right_id for p in head])
                pending_pairs[batch_index] = head
                score_inflight[
                    pool.submit(_score_task, token, batch_index, left_rows, right_rows)
                ] = batch_index
                batch_index += 1
                while len(score_inflight) + len(score_done) >= max_inflight:
                    collect(score_inflight, score_done, block=True)
                    yield from emit_ready()
            collect(score_inflight, score_done, block=False)
            yield from emit_ready()
            if blocking_done and not score_inflight and not score_done and not buffer:
                break
            if not blocking_done and next_shard not in query_done:
                # Progress needs the next shard: park on the query futures.
                collect(query_inflight, query_done, block=True)
            elif blocking_done and score_inflight:
                collect(score_inflight, score_done, block=True)
                yield from emit_ready()
        guard_store_version(store, pinned)


# ----------------------------------------------------------------------
# Incremental (delta) resolution
# ----------------------------------------------------------------------
@dataclass
class ResolutionBaseline:
    """Reusable artefacts of a completed resolve run.

    Captured by :class:`DeltaResolutionExecutor` as its batch stream drains
    and handed back in on the next incremental run:

    * ``scores`` — per-pair match probabilities; the matcher is a pure
      row-wise function of the two cached IR tensors, so a pair's baseline
      probability equals what a full re-resolve would recompute;
    * ``index`` — the LSH index over the right table, extendable in place
      with :meth:`~repro.blocking.lsh.EuclideanLSHIndex.extend`;
    * the tokens guarding reuse: the pinned ``encoding_version`` (a refit
      invalidates everything), ``matcher`` — the scored-by object itself,
      held strongly so identity cannot be recycled; a different matcher
      invalidates the scores but not the index — and ``blocking_token`` (a
      different LSH configuration invalidates the index).
    """

    encoding_version: int
    matcher: object
    blocking_token: str
    left_rows: int
    right_rows: int
    scores: Dict[PairKey, float]
    index: EuclideanLSHIndex

    def index_usable(self, pinned: int, blocking: Optional[BlockingConfig], right: TableEncodings) -> bool:
        """Whether ``index`` is a valid prefix index of the current right table."""
        if self.encoding_version != pinned:
            return False
        if self.blocking_token != repr(blocking):
            return False
        if self.index.size > len(right):
            return False
        return self.index.keys == tuple(right.keys[: self.index.size])


class DeltaResolutionExecutor:
    """Run a delta :class:`ResolutionPlan` against a baseline run.

    Produces the batch stream a cold
    :func:`~repro.engine.stream.resolve_stream` with the same knobs yields
    on the current (grown) tables — the identical candidate enumeration and
    batch packing, probabilities byte-identical for reused pairs and equal
    up to matmul batch-composition round-off (~1 ulp) for rescored ones, so
    the match set is identical — while paying only for the delta:

    * table encodings come from the delta-aware store (tail rows only);
    * the baseline LSH index is extended with the new right rows instead of
      rebuilt (extension is bucket-identical to a rebuild, so every query
      answer matches);
    * the matcher runs only on candidate pairs not scored by the baseline —
      growing an index never introduces *new* old-old pairs into any top-K
      (buckets only gain rows), so unseen pairs are exactly those involving
      new rows, counted through ``pairs_rescored``.

    The refreshed :class:`ResolutionBaseline` is published on ``baseline_out``
    once the stream is exhausted.  Execution is serial: the delta work is
    bounded by the append size, which is the regime this path exists for.
    """

    def __init__(
        self,
        plan: ResolutionPlan,
        store: EncodingStore,
        matcher,
        baseline: Optional[ResolutionBaseline] = None,
        threshold: float = 0.5,
        stage_timings: Optional[StageTimings] = None,
    ) -> None:
        self.plan = plan
        self.store = store
        self.matcher = matcher
        self.baseline = baseline
        self.threshold = threshold
        self.stage_timings = stage_timings
        self.baseline_out: Optional[ResolutionBaseline] = None

    def _record_stage(self, stage: str, seconds: float, units: int = 1) -> None:
        if self.stage_timings is not None:
            self.stage_timings.record(stage, seconds, units=units)

    def _record_counter(self, name: str, value: int) -> None:
        if self.stage_timings is not None:
            self.stage_timings.record_counter(name, value)

    def run(self) -> Iterator[ResolutionBatch]:
        """The scored batch stream; validation and version pinning are eager."""
        pinned = pin_store_version(self.store)
        plan, store, matcher = self.plan, self.store, self.matcher

        def generate() -> Iterator[ResolutionBatch]:
            counters_before = store.counters.rows_reencoded
            started = time.perf_counter()
            store.table_encodings("left")
            right = store.table_encodings("right")
            guard_store_version(store, pinned)
            self._record_stage("encode", time.perf_counter() - started, units=2)
            self._record_counter("rows_reencoded", store.counters.rows_reencoded - counters_before)

            baseline = self.baseline
            index_reused = baseline is not None and baseline.index_usable(
                pinned, plan.blocking, right
            )
            started = time.perf_counter()
            if index_reused:
                index = baseline.index
                if index.size < len(right):
                    flat = right.flat_mu()
                    index.extend(flat[index.size :], list(right.keys[index.size :]))
                self._record_stage("block-extend", time.perf_counter() - started)
            else:
                index = EuclideanLSHIndex(
                    num_tables=(plan.blocking or BlockingConfig()).num_tables,
                    hash_size=(plan.blocking or BlockingConfig()).hash_size,
                    bucket_width=(plan.blocking or BlockingConfig()).bucket_width,
                    seed=(plan.blocking or BlockingConfig()).seed,
                ).build(right.flat_mu(), list(right.keys))
                self._record_stage("block", time.perf_counter() - started)
            guard_store_version(store, pinned)
            search = NearestNeighbourSearch.from_index(index, plan.blocking)

            scores: Dict[PairKey, float] = (
                baseline.scores
                if baseline is not None
                and baseline.encoding_version == pinned
                and baseline.matcher is matcher
                else {}
            )
            new_scores: Dict[PairKey, float] = {}
            rescored = 0
            for batch_index, pairs in iter_candidate_batches(
                store, blocking=plan.blocking, k=plan.k, batch_size=plan.batch_size, search=search
            ):
                guard_store_version(store, pinned)
                started = time.perf_counter()
                probabilities = np.empty(len(pairs))
                unknown: List[int] = []
                for position, pair in enumerate(pairs):
                    known = scores.get((pair.left_id, pair.right_id))
                    if known is None:
                        unknown.append(position)
                    else:
                        probabilities[position] = known
                if unknown:
                    subset = [pairs[position] for position in unknown]
                    left_irs, right_irs = store.gather_pair_irs(subset)
                    probabilities[unknown] = matcher.predict_proba(left_irs, right_irs)
                    rescored += len(unknown)
                    store.counters.record_pairs_rescored(len(unknown))
                for position, pair in enumerate(pairs):
                    new_scores[(pair.left_id, pair.right_id)] = float(probabilities[position])
                self._record_stage("score", time.perf_counter() - started)
                yield ResolutionBatch(
                    pairs=pairs,
                    probabilities=probabilities,
                    threshold=self.threshold,
                    batch_index=batch_index,
                )
            guard_store_version(store, pinned)
            self._record_counter("pairs_rescored", rescored)
            self.baseline_out = ResolutionBaseline(
                encoding_version=pinned,
                matcher=matcher,
                blocking_token=repr(plan.blocking),
                left_rows=plan.left_rows,
                right_rows=len(right),
                scores=new_scores,
                index=index,
            )

        return generate()


def resolve_delta(
    store: EncodingStore,
    matcher,
    baseline: Optional[ResolutionBaseline] = None,
    blocking: Optional[BlockingConfig] = None,
    k: int = 10,
    batch_size: int = 2048,
    threshold: float = 0.5,
    stage_timings: Optional[StageTimings] = None,
) -> DeltaResolutionExecutor:
    """Plan an incremental resolve against ``baseline`` and return its executor.

    Returns the :class:`DeltaResolutionExecutor` (rather than the raw
    iterator) so the caller can collect ``baseline_out`` after draining
    ``.run()`` — :meth:`repro.core.pipeline.VAER.resolve_delta` does exactly
    that to chain incremental runs.  With ``baseline=None`` the run is a
    cold resolve that merely *captures* a baseline for the next call.
    """
    pinned = store.representation.encoding_version
    base_left = base_right = 0
    index_reusable = False
    if baseline is not None and baseline.encoding_version == pinned:
        base_left = min(baseline.left_rows, len(store.task.left))
        base_right = min(baseline.right_rows, len(store.task.right))
        index_reusable = baseline.blocking_token == repr(blocking)
    plan = ResolutionPlanner.from_store(
        store, blocking=blocking, k=k, batch_size=batch_size, workers=1
    ).plan_delta(base_left, base_right, index_reusable=index_reusable)
    return DeltaResolutionExecutor(
        plan,
        store,
        matcher,
        baseline=baseline,
        threshold=threshold,
        stage_timings=stage_timings,
    )


# ----------------------------------------------------------------------
# Convenience front-end
# ----------------------------------------------------------------------
def resolve_plan(
    store: EncodingStore,
    matcher,
    blocking: Optional[BlockingConfig] = None,
    k: int = 10,
    batch_size: int = 2048,
    threshold: float = 0.5,
    workers: int = 1,
    shard_timings: Optional[ShardTimings] = None,
    stage_timings: Optional[StageTimings] = None,
) -> Iterator[ResolutionBatch]:
    """Plan and execute a resolve run in one call.

    The single engine behind :func:`repro.engine.stream.resolve_stream`
    (``workers=1``) and :func:`repro.engine.shard.resolve_sharded`
    (``workers>1``): identical knobs always produce the identical batch
    stream, whatever the worker count.
    """
    plan = ResolutionPlanner.from_store(
        store, blocking=blocking, k=k, batch_size=batch_size, workers=workers
    ).plan()
    return ResolutionExecutor(
        plan,
        store,
        matcher,
        threshold=threshold,
        shard_timings=shard_timings,
        stage_timings=stage_timings,
    ).run()
