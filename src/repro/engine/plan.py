"""Plan/execute layer: one engine behind every resolve front-end.

Resolution is three stages — *encode* the two tables, *block* (LSH index
build + top-K queries) to enumerate candidate pairs, *score* the candidates
in batches — and every earlier entry point special-cased its own slice of
that flow.  This module owns the whole of it:

* :class:`ResolutionPlanner` partitions the work into row-range shards
  (the same bounds :class:`~repro.engine.shard.ShardedEncodingStore` views
  expose) and emits a deterministic stage graph — pure metadata, computed
  from table sizes alone, so a plan can be printed or inspected without
  encoding a single record (``repro plan`` does exactly that);
* :class:`ResolutionExecutor` runs the stages.  With ``workers == 1`` it
  runs the exact serial schedule :func:`~repro.engine.stream.resolve_stream`
  always had.  With a pool, the LSH hash tables are built from per-shard
  partial maps computed in workers, left-table query shards fan out across
  the pool, and scoring batches overlap with blocking — all merged back
  deterministically: candidate order by (shard, row, neighbour rank), scored
  batches by ``(batch_index, pair_index)``, so the yielded stream is
  byte-identical to the serial one regardless of scheduling.

:func:`~repro.engine.stream.resolve_stream` and
:func:`~repro.engine.shard.resolve_sharded` are thin front-ends over this
engine; blocking-only consumers (benchmarks, equivalence tests) can call
:func:`build_index_sharded` / :func:`sharded_candidate_pairs` directly.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, FIRST_COMPLETED, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.persist import RowDiff  # noqa: F401 - re-exported for baselines

from repro.blocking.lsh import EuclideanLSHIndex
from repro.blocking.neighbours import NearestNeighbourSearch
from repro.config import BlockingConfig
from repro.data.pairs import RecordPair
from repro.data.schema import ERTask
from repro.engine.quant import CodecArray
from repro.engine.shard import (
    DEFAULT_SHARD_ROWS,
    ShardBounds,
    StateHandle,
    WorkerPool,
    acquire_pool,
    pool_kind_default,
    published_state,
    query_shard_pairs,
    release_pool,
    shard_bounds_for,
    worker_state,
)
from repro.engine.store import EncodingStore, TableEncodings
from repro.engine.stream import (
    DEFAULT_BATCH_SIZE,
    ResolutionBatch,
    guard_store_version,
    iter_candidate_batches,
    pin_store_version,
    query_chunk_for,
)
from repro.eval.timing import ShardTimings, StageTimings

#: Pair-probability key used for baseline score reuse across delta resolves.
PairKey = Tuple[str, str]


# ----------------------------------------------------------------------
# The plan: a deterministic stage graph over row-range shards
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageUnit:
    """One schedulable unit of work within a stage."""

    name: str
    rows: int = 0
    detail: str = ""


@dataclass(frozen=True)
class Stage:
    """One stage of the resolve graph and the stages it depends on."""

    name: str
    depends_on: Tuple[str, ...]
    units: Tuple[StageUnit, ...]

    @property
    def num_units(self) -> int:
        return len(self.units)


@dataclass(frozen=True)
class DeltaBounds:
    """Per-side mutation summary a delta plan schedules against.

    ``base_*_rows`` counts current rows the baseline already covers (clean
    *or* dirty); ``dirty_*_rows`` counts the in-place edits among them that
    must be re-encoded; ``deleted_*_rows`` counts baseline rows no longer
    present (tombstoned, no encode cost).
    """

    base_left_rows: int
    base_right_rows: int
    dirty_left_rows: int = 0
    dirty_right_rows: int = 0
    deleted_left_rows: int = 0
    deleted_right_rows: int = 0

    def new_rows(self, side: str, total: int) -> int:
        base = self.base_left_rows if side == "left" else self.base_right_rows
        return max(0, total - base)

    def dirty_rows(self, side: str) -> int:
        return self.dirty_left_rows if side == "left" else self.dirty_right_rows

    def deleted_rows(self, side: str) -> int:
        return self.deleted_left_rows if side == "left" else self.deleted_right_rows


@dataclass(frozen=True)
class ResolutionPlan:
    """Deterministic description of one resolve run.

    Pure metadata: the plan is computed from table sizes and knobs alone
    (no encoding, no disk access), so it can be printed, compared or
    shipped to a remote runner before any expensive work starts.  A *delta*
    plan additionally records, via ``delta``, how many rows per side are
    covered by the baseline run — its encode stage covers only the tails.
    """

    task_name: str
    left_rows: int
    right_rows: int
    k: int
    batch_size: int
    workers: int
    shard_rows: int
    query_chunk: int
    blocking: Optional[BlockingConfig]
    query_bounds: Tuple[ShardBounds, ...]
    build_bounds: Tuple[ShardBounds, ...]
    stages: Tuple[Stage, ...] = field(default=())
    delta: Optional[DeltaBounds] = None

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"plan has no stage {name!r}")

    def max_batches(self) -> int:
        """Upper bound on scored batches (dedup can only shrink it)."""
        if self.left_rows == 0:
            return 0
        return (self.left_rows * self.k + self.batch_size - 1) // self.batch_size

    def describe(self, max_units: int = 8) -> str:
        """Human-readable stage graph (the ``repro plan`` output)."""
        lines = [
            f"resolution plan for task {self.task_name!r}",
            f"  knobs: workers={self.workers} shard_rows={self.shard_rows} "
            f"k={self.k} batch_size={self.batch_size} query_chunk={self.query_chunk}",
            f"  tables: left={self.left_rows} rows ({len(self.query_bounds)} shards), "
            f"right={self.right_rows} rows ({len(self.build_bounds)} shards)",
        ]
        if self.delta is not None:
            def _side(side: str, total: int, base: int) -> str:
                text = f"{side} +{self.delta.new_rows(side, total)} rows (base {base}"
                if self.delta.dirty_rows(side):
                    text += f", dirty {self.delta.dirty_rows(side)}"
                if self.delta.deleted_rows(side):
                    text += f", deleted {self.delta.deleted_rows(side)}"
                return text + ")"

            lines.append(
                f"  delta: {_side('left', self.left_rows, self.delta.base_left_rows)}, "
                f"{_side('right', self.right_rows, self.delta.base_right_rows)}"
            )
        for position, stage in enumerate(self.stages, start=1):
            dependency = f" <- {', '.join(stage.depends_on)}" if stage.depends_on else ""
            lines.append(f"  [{position}] {stage.name}{dependency} — {stage.num_units} unit(s)")
            for unit in stage.units[:max_units]:
                rows = f" ({unit.rows} rows)" if unit.rows else ""
                detail = f": {unit.detail}" if unit.detail else ""
                lines.append(f"        {unit.name}{rows}{detail}")
            hidden = stage.num_units - max_units
            if hidden > 0:
                lines.append(f"        ... (+{hidden} more)")
        return "\n".join(lines)


class ResolutionPlanner:
    """Partition a task's resolve run into a stage graph over row shards.

    Parameters mirror the resolve knobs; ``shard_rows`` fixes the row-range
    partitioning shared by the blocking fan-out, the sharded store views and
    the chunked persistent cache.
    """

    def __init__(
        self,
        task: ERTask,
        blocking: Optional[BlockingConfig] = None,
        k: int = 10,
        batch_size: int = 2048,
        workers: int = 1,
        shard_rows: int = DEFAULT_SHARD_ROWS,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if workers <= 0:
            raise ValueError("workers must be positive")
        if shard_rows <= 0:
            raise ValueError("shard_rows must be positive")
        self.task = task
        self.blocking = blocking
        self.k = k
        self.batch_size = batch_size
        self.workers = workers
        self.shard_rows = shard_rows

    @classmethod
    def from_store(
        cls,
        store: EncodingStore,
        blocking: Optional[BlockingConfig] = None,
        k: int = 10,
        batch_size: int = 2048,
        workers: int = 1,
    ) -> "ResolutionPlanner":
        """Planner over a store's task, adopting the store's shard layout."""
        shard_rows = getattr(store, "shard_rows", DEFAULT_SHARD_ROWS)
        return cls(
            store.task,
            blocking=blocking,
            k=k,
            batch_size=batch_size,
            workers=workers,
            shard_rows=shard_rows,
        )

    def plan(self) -> ResolutionPlan:
        """The deterministic stage graph for the current knobs."""
        left_rows = len(self.task.left)
        right_rows = len(self.task.right)
        query_bounds = tuple(shard_bounds_for("left", left_rows, self.shard_rows))
        build_bounds = tuple(shard_bounds_for("right", right_rows, self.shard_rows))
        query_chunk = query_chunk_for(self.batch_size, self.k)

        encode = Stage(
            name="encode",
            depends_on=(),
            units=(
                StageUnit(name="left", rows=left_rows, detail="IR transform + VAE forward"),
                StageUnit(name="right", rows=right_rows, detail="IR transform + VAE forward"),
            ),
        )
        block_units = [
            StageUnit(name=f"build right[{b.index}]", rows=b.rows, detail=f"hash rows {b.start}..{b.stop}")
            for b in build_bounds
        ] + [
            StageUnit(name=f"query left[{b.index}]", rows=b.rows, detail=f"top-{self.k} rows {b.start}..{b.stop}")
            for b in query_bounds
        ]
        block = Stage(name="block", depends_on=("encode",), units=tuple(block_units))
        plan_without_score = ResolutionPlan(
            task_name=self.task.name,
            left_rows=left_rows,
            right_rows=right_rows,
            k=self.k,
            batch_size=self.batch_size,
            workers=self.workers,
            shard_rows=self.shard_rows,
            query_chunk=query_chunk,
            blocking=self.blocking,
            query_bounds=query_bounds,
            build_bounds=build_bounds,
        )
        score = Stage(
            name="score",
            depends_on=("block",),
            units=(
                StageUnit(
                    name="batches",
                    detail=(
                        f"streaming, <={plan_without_score.max_batches()} batches "
                        f"of <={self.batch_size} pairs"
                    ),
                ),
            ),
        )
        return ResolutionPlan(
            task_name=self.task.name,
            left_rows=left_rows,
            right_rows=right_rows,
            k=self.k,
            batch_size=self.batch_size,
            workers=self.workers,
            shard_rows=self.shard_rows,
            query_chunk=query_chunk,
            blocking=self.blocking,
            query_bounds=query_bounds,
            build_bounds=build_bounds,
            stages=(encode, block, score),
        )

    def plan_delta(
        self,
        base_left_rows: int = 0,
        base_right_rows: int = 0,
        index_reusable: bool = False,
        dirty_left_rows: int = 0,
        dirty_right_rows: int = 0,
        deleted_left_rows: int = 0,
        deleted_right_rows: int = 0,
    ) -> ResolutionPlan:
        """The stage graph of an *incremental* resolve against a baseline.

        ``base_*_rows`` are the per-side current-row counts the baseline run
        already covers (0 = nothing reusable: the plan degenerates to a cold
        run); ``dirty_*_rows`` of them were edited in place and
        ``deleted_*_rows`` baseline rows vanished.  The encode stage
        schedules only the new tail ranges plus *patch* units for the dirty
        rows; the block stage mutates the baseline LSH index in place when
        ``index_reusable`` — *tombstone* units mask deleted right rows out
        of the bucket maps, *patch* units rebucket edited rows, an *extend*
        unit hashes appended rows — and re-queries every left shard (top-K
        answers can change whenever the index changes); the score stage
        drops baseline probabilities for pairs touching deleted or edited
        rows and runs the matcher only on pairs not covered by the surviving
        baseline scores.  Like :meth:`plan`, pure metadata.

        With ``workers > 1`` the tail-encode and query units fan out across
        the worker pool: encode units are emitted per ``shard_rows`` slice
        of each side's pending (dirty + appended) rows, and the executor
        runs them — and the left-shard queries — on the pool, merged back in
        row order so the stream stays byte-identical to a serial delta run.
        """
        left_rows = len(self.task.left)
        right_rows = len(self.task.right)
        base_left = max(0, min(int(base_left_rows), left_rows))
        base_right = max(0, min(int(base_right_rows), right_rows))
        dirty_left = max(0, min(int(dirty_left_rows), base_left))
        dirty_right = max(0, min(int(dirty_right_rows), base_right))
        query_bounds = tuple(shard_bounds_for("left", left_rows, self.shard_rows))
        build_bounds = tuple(shard_bounds_for("right", right_rows, self.shard_rows))
        query_chunk = query_chunk_for(self.batch_size, self.k)

        encode_units = []
        for side, base, dirty, total in (
            ("left", base_left, dirty_left, left_rows),
            ("right", base_right, dirty_right, right_rows),
        ):
            pending = dirty + (total - base)
            if pending == 0:
                encode_units.append(StageUnit(
                    name=side, rows=0, detail="cached (no new or dirty rows)"
                ))
                continue
            if self.workers > 1 and pending > self.shard_rows:
                # Fan the pending rows (dirty first, then the appended tail —
                # the executor's encode order) across worker-sized slices.
                slices = range(0, pending, self.shard_rows)
                for index, start in enumerate(slices):
                    stop = min(start + self.shard_rows, pending)
                    encode_units.append(StageUnit(
                        name=f"{side} delta[{index}]",
                        rows=stop - start,
                        detail=f"pooled encode of pending rows {start}..{stop}",
                    ))
                continue
            if dirty:
                encode_units.append(StageUnit(
                    name=f"{side} patch",
                    rows=dirty,
                    detail=f"re-encode {dirty} edited row(s) in place",
                ))
            if total > base:
                encode_units.append(StageUnit(
                    name=f"{side} tail",
                    rows=total - base,
                    detail=f"append-only encode rows {base}..{total}",
                ))
        encode = Stage(name="encode", depends_on=(), units=tuple(encode_units))

        block_units: List[StageUnit] = []
        if index_reusable:
            if deleted_right_rows:
                block_units.append(StageUnit(
                    name="tombstone right",
                    rows=int(deleted_right_rows),
                    detail="mask deleted rows out of the bucket maps",
                ))
            if dirty_right:
                block_units.append(StageUnit(
                    name="patch right",
                    rows=dirty_right,
                    detail="rebucket edited rows in place",
                ))
            if base_right < right_rows:
                block_units.append(StageUnit(
                    name="extend right",
                    rows=right_rows - base_right,
                    detail=f"hash rows {base_right}..{right_rows} into existing buckets",
                ))
            if not block_units:
                block_units.append(
                    StageUnit(name="reuse right index", rows=0, detail="no new rows")
                )
        else:
            block_units.append(StageUnit(
                name="build right", rows=right_rows, detail="no baseline index: full build"
            ))
        block_units.extend(
            StageUnit(name=f"query left[{b.index}]", rows=b.rows, detail=f"top-{self.k} rows {b.start}..{b.stop}")
            for b in query_bounds
        )
        block = Stage(name="block", depends_on=("encode",), units=tuple(block_units))
        score = Stage(
            name="score",
            depends_on=("block",),
            units=(
                StageUnit(
                    name="batches",
                    detail=(
                        "streaming; baseline scores dropped for pairs touching "
                        "deleted/edited rows, matcher runs only on pairs "
                        "involving new or dirty rows"
                    ),
                ),
            ),
        )
        return ResolutionPlan(
            task_name=self.task.name,
            left_rows=left_rows,
            right_rows=right_rows,
            k=self.k,
            batch_size=self.batch_size,
            workers=self.workers,
            shard_rows=self.shard_rows,
            query_chunk=query_chunk,
            blocking=self.blocking,
            query_bounds=query_bounds,
            build_bounds=build_bounds,
            stages=(encode, block, score),
            delta=DeltaBounds(
                base_left_rows=base_left,
                base_right_rows=base_right,
                dirty_left_rows=dirty_left,
                dirty_right_rows=dirty_right,
                deleted_left_rows=max(0, int(deleted_left_rows)),
                deleted_right_rows=max(0, int(deleted_right_rows)),
            ),
        )


# ----------------------------------------------------------------------
# Cost-model query sizing
# ----------------------------------------------------------------------
#: Target ratio of per-task compute to measured dispatch overhead.  The
#: fixed per-``shard_rows`` split sends a pool task per planned shard even
#: when one shard computes for less than a fork round-trip; coarsening until
#: compute dwarfs dispatch by this factor keeps overhead under ~2%.
#: Override with ``REPRO_SHARD_COST_RATIO``.
DEFAULT_SHARD_COST_RATIO = 50.0


def _shard_cost_ratio() -> float:
    raw = os.environ.get("REPRO_SHARD_COST_RATIO", "").strip()
    if not raw:
        return DEFAULT_SHARD_COST_RATIO
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_SHARD_COST_RATIO
    return value if value > 0 else DEFAULT_SHARD_COST_RATIO


@dataclass(frozen=True)
class QueryTaskGroup:
    """One pool task covering a contiguous run of planned query shards."""

    start: int
    stop: int
    units: int  # planned shards this task covers (stage-timing units)


def _coarsen_query_bounds(
    bounds: Sequence[ShardBounds],
    calibration_rows: int,
    calibration_seconds: float,
    dispatch_seconds: float,
    workers: int,
) -> List[QueryTaskGroup]:
    """Group the remaining query shards into cost-model-sized pool tasks.

    The calibration shard (already executed) supplies the measured per-row
    compute cost; the target task size is the row count whose compute is
    ``REPRO_SHARD_COST_RATIO`` times the measured dispatch overhead, capped
    so the pool still gets at least one task per worker.  Groups are runs of
    *consecutive* shard bounds, consumed in row order — and top-K queries
    are independent per row — so any grouping reproduces the serial
    candidate stream pair for pair; only the task count changes.
    """
    if not bounds:
        return []
    total_rows = sum(b.rows for b in bounds)
    per_row = calibration_seconds / calibration_rows if calibration_rows > 0 else 0.0
    if per_row > 0.0 and dispatch_seconds > 0.0:
        target = _shard_cost_ratio() * dispatch_seconds / per_row
    else:  # degenerate timer resolution: keep the planned granularity
        target = float(calibration_rows or 1)
    cap = max(1.0, total_rows / max(1, workers))
    rows_per_task = int(max(1.0, min(target, cap)))
    groups: List[QueryTaskGroup] = []
    current: List[ShardBounds] = []
    rows = 0
    for b in bounds:
        if current and rows + b.rows > rows_per_task:
            groups.append(QueryTaskGroup(current[0].start, current[-1].stop, len(current)))
            current, rows = [], 0
        current.append(b)
        rows += b.rows
    if current:
        groups.append(QueryTaskGroup(current[0].start, current[-1].stop, len(current)))
    return groups


def _noop_task() -> None:
    """Calibration probe: measures pure submit/round-trip overhead."""
    return None


def _measure_dispatch(pool: WorkerPool) -> float:
    """Best-of-two no-op round trip through the pool (dispatch overhead)."""
    best = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        pool.submit(_noop_task).result()
        best = min(best, time.perf_counter() - started)
    return best


# ----------------------------------------------------------------------
# Worker tasks (state arrives via the shared-memory publisher, or the
# parent registry for thread pools — the persistent pool predates any
# stage's state, so nothing is inherited by fork)
# ----------------------------------------------------------------------
@dataclass
class _PlanState:
    """Everything a pool worker needs, published under one state handle.

    Deliberately slim — bare arrays rather than richer store objects — so
    the shared-memory publisher hoists exactly the payloads workers touch
    and the residual pickle stays small.
    """

    flat: np.ndarray  # record-level query vectors of the left table
    keys: Sequence[object]  # aligned query keys
    search: NearestNeighbourSearch
    left_irs: Optional[np.ndarray] = None
    right_irs: Optional[np.ndarray] = None
    matcher: object = None


def _hash_task(handle: StateHandle, start: int, stop: int):
    """Build stage: per-table partial bucket maps of one row range."""
    index: EuclideanLSHIndex = worker_state(handle)
    started = time.perf_counter()
    partial = index.hash_rows(start, stop)
    return start, partial, time.perf_counter() - started


def _query_task(handle: StateHandle, task_index: int, start: int, stop: int, k: int, query_chunk: int):
    """Block stage: top-K candidate pairs of one query row range.

    Rows are walked through :func:`repro.engine.shard.query_shard_pairs`,
    the chunk-walk definition every enumerator shares; results are per-row
    and rank-ordered, so concatenating task results in row order reproduces
    the serial candidate stream pair for pair whatever the task sizing.
    """
    state: _PlanState = worker_state(handle)
    started = time.perf_counter()
    pairs = query_shard_pairs(state.search, state.flat, state.keys, start, stop, k, query_chunk)
    return task_index, pairs, time.perf_counter() - started


def _score_task(handle: StateHandle, batch_index: int, left_rows: np.ndarray, right_rows: np.ndarray):
    """Score stage: gather one batch's IRs from the shared arrays and score."""
    state: _PlanState = worker_state(handle)
    started = time.perf_counter()
    probabilities = state.matcher.predict_proba(
        state.left_irs[left_rows], state.right_irs[right_rows]
    )
    return batch_index, probabilities, time.perf_counter() - started


def _encode_range_task(handle: StateHandle, start: int, stop: int):
    """Encode stage (delta fan-out): one row range of a pending sub-table.

    State is ``(representation, sub_table)``; rows are encoded through the
    same :func:`repro.engine.store.encode_table_rows` the store uses
    inline, so pooled and serial tail encodes agree row for row (up to
    matmul batch composition, like every other batch-shape change).
    """
    from repro.data.schema import Table
    from repro.engine.store import encode_table_rows

    representation, sub_table = worker_state(handle)
    started = time.perf_counter()
    records = sub_table.records()[start:stop]
    piece = Table(sub_table.name, sub_table.attributes, records)
    irs, mu, sigma = encode_table_rows(representation, piece)
    return start, (irs, mu, sigma), time.perf_counter() - started


@contextmanager
def _pooled_tail_encoder(store: EncodingStore, workers: int, shard_rows: int):
    """Fan the store's delta re-encodes across a worker pool while active.

    Installs a :data:`repro.engine.store.RangeEncoder` hook: whenever the
    store needs to encode a pending sub-table (dirty + appended rows of one
    side) larger than one shard, the rows are split into ``shard_rows``
    slices, encoded on a fork-based pool, and concatenated in row order.
    Sub-shard work (or ``workers == 1``) encodes inline — pooling a few
    dozen rows would cost more in forks than it saves.
    """
    if workers <= 1 or pool_kind_default() == "serial":
        yield
        return

    from repro.engine.store import encode_table_rows

    def encoder(sub_table):
        n = len(sub_table)
        if n <= shard_rows:
            return encode_table_rows(store.representation, sub_table)
        bounds = [
            (start, min(start + shard_rows, n)) for start in range(0, n, shard_rows)
        ]
        pool = acquire_pool(workers)
        try:
            with published_state(pool, (store.representation, sub_table)) as handle:
                futures = [
                    pool.submit(_encode_range_task, handle, start, stop)
                    for start, stop in bounds
                ]
                parts = [future.result()[1] for future in futures]
        except BrokenExecutor:
            pool.broken = True
            return encode_table_rows(store.representation, sub_table)
        finally:
            release_pool(pool)
        return (
            np.concatenate([part[0] for part in parts]),
            np.concatenate([part[1] for part in parts]),
            np.concatenate([part[2] for part in parts]),
        )

    previous = store.range_encoder
    store.range_encoder = encoder
    try:
        yield
    finally:
        store.range_encoder = previous


# ----------------------------------------------------------------------
# Parallel blocking primitives (also used standalone by benchmarks/tests)
# ----------------------------------------------------------------------
def build_index_sharded(
    vectors: np.ndarray,
    keys: Sequence[object],
    blocking: Optional[BlockingConfig] = None,
    workers: int = 1,
    shard_rows: int = DEFAULT_SHARD_ROWS,
    pool: Optional[WorkerPool] = None,
) -> EuclideanLSHIndex:
    """Build an LSH index with per-shard hash maps computed in workers.

    The projections are fixed once in the parent; each worker hashes one
    row-range shard into partial bucket maps and the parent merges them in
    row order, so bucket membership — and therefore every query answer — is
    identical to a serial :meth:`EuclideanLSHIndex.build`.  Pass ``pool`` to
    run on a caller-owned persistent pool (the executor shares one pool
    across build, query and score); otherwise one is acquired and released
    here.  If the pool dies mid-build the tables are hashed serially and
    the pool is marked broken for the caller.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    config = blocking or BlockingConfig()
    index = EuclideanLSHIndex(
        num_tables=config.num_tables,
        hash_size=config.hash_size,
        bucket_width=config.bucket_width,
        seed=config.seed,
    )
    index.prepare(vectors, keys)
    bounds = shard_bounds_for("right", index.size, shard_rows)
    if workers == 1 or len(bounds) <= 1 or (pool is None and pool_kind_default() == "serial"):
        index.install_tables([index.hash_rows(0, index.size)])
        return index
    owned = pool is None
    if owned:
        pool = acquire_pool(workers)
    try:
        try:
            with published_state(pool, index) as handle:
                futures = [pool.submit(_hash_task, handle, b.start, b.stop) for b in bounds]
                results = sorted(future.result() for future in futures)
            index.install_tables([partial for _, partial, _ in results])
        except BrokenExecutor:
            pool.broken = True
            index.install_tables([index.hash_rows(0, index.size)])
    finally:
        if owned:
            release_pool(pool)
    return index


def sharded_candidate_pairs(
    vectors: np.ndarray,
    keys: Sequence[object],
    query_vectors: np.ndarray,
    query_keys: Sequence[object],
    blocking: Optional[BlockingConfig] = None,
    k: int = 10,
    workers: int = 1,
    shard_rows: int = DEFAULT_SHARD_ROWS,
    query_chunk: Optional[int] = None,
    stage_timings: Optional[StageTimings] = None,
) -> List[RecordPair]:
    """Blocking alone, sharded end to end: build in workers, query in workers.

    Returns the full candidate-pair list in serial enumeration order —
    task results are merged by ascending row range, each task's pairs
    ordered by (row, neighbour rank).  With ``workers == 1`` every step runs
    serially in the calling process; any worker count yields the identical
    pair list.  The pooled path records the per-stage breakdown —
    ``dispatch`` (no-op round trip), ``block-ipc`` (calibration transport
    overhead), ``block-build``/``block-query`` (in-worker compute) and
    ``merge`` (parent-side concatenation) — plus a ``query_tasks`` counter.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if not isinstance(query_vectors, CodecArray):
        # No forced float64 copy: fp32 queries pass through, code arrays
        # stay compressed and decode chunk by chunk in query_shard_pairs.
        query_vectors = np.asarray(query_vectors)
        if query_vectors.dtype not in (np.float32, np.float64):
            query_vectors = query_vectors.astype(np.float64)
    query_keys = list(query_keys)
    if query_chunk is None:
        # Mirror the resolve path's chunking at its default batch size, so
        # standalone blocking walks the left table in the same strides.
        query_chunk = query_chunk_for(DEFAULT_BATCH_SIZE, k)
    if query_chunk <= 0:
        raise ValueError("query_chunk must be positive")

    def serial_query(search: NearestNeighbourSearch, bounds) -> List[RecordPair]:
        started = time.perf_counter()
        pairs: List[RecordPair] = []
        for b in bounds:
            pairs.extend(
                query_shard_pairs(
                    search, query_vectors, query_keys, b.start, b.stop, k, query_chunk
                )
            )
        if stage_timings is not None:
            stage_timings.record("block-query", time.perf_counter() - started, units=len(bounds))
        return pairs

    bounds = shard_bounds_for("left", len(query_vectors), shard_rows)
    pooled = workers > 1 and len(bounds) > 1 and pool_kind_default() != "serial"
    pool = acquire_pool(workers) if pooled else None
    try:
        started = time.perf_counter()
        index = build_index_sharded(
            vectors, keys, blocking=blocking, workers=workers, shard_rows=shard_rows, pool=pool
        )
        if stage_timings is not None:
            stage_timings.record("block-build", time.perf_counter() - started)
        search = NearestNeighbourSearch.from_index(index, blocking)
        if pool is None or pool.broken:
            return serial_query(search, bounds)
        try:
            return _pooled_query_fanout(
                pool, search, query_vectors, query_keys, bounds, k, query_chunk,
                workers, stage_timings,
            )
        except BrokenExecutor:
            pool.broken = True
            return serial_query(search, bounds)
    finally:
        if pool is not None:
            release_pool(pool)


def _pooled_query_fanout(
    pool: WorkerPool,
    search: NearestNeighbourSearch,
    flat: np.ndarray,
    keys: Sequence[object],
    bounds: Sequence[ShardBounds],
    k: int,
    query_chunk: int,
    workers: int,
    stage_timings: Optional[StageTimings],
) -> List[RecordPair]:
    """Calibrated query fan-out: first shard measures, the rest coarsen.

    The first planned shard runs alone — its round trip supplies the
    dispatch/compute measurements the cost model sizes the remaining tasks
    with, and its pairs head the merged result, so calibration costs
    nothing.  ``block-query`` units count *planned shards covered*, not
    pool tasks, keeping the stage accounting independent of coarsening.
    """

    def record(stage: str, seconds: float, units: int = 1) -> None:
        if stage_timings is not None:
            stage_timings.record(stage, seconds, units=units)

    state = _PlanState(flat=flat, keys=keys, search=search)
    with published_state(pool, state) as handle:
        dispatch = _measure_dispatch(pool)
        record("dispatch", dispatch)
        first = bounds[0]
        started = time.perf_counter()
        _, first_pairs, first_seconds = pool.submit(
            _query_task, handle, 0, first.start, first.stop, k, query_chunk
        ).result()
        round_trip = time.perf_counter() - started
        record("block-ipc", max(0.0, round_trip - first_seconds))
        record("block-query", first_seconds, units=1)
        groups = _coarsen_query_bounds(bounds[1:], first.rows, first_seconds, dispatch, workers)
        if stage_timings is not None:
            stage_timings.record_counter("query_tasks", len(groups) + 1)
        futures = [
            pool.submit(_query_task, handle, position + 1, group.start, group.stop, k, query_chunk)
            for position, group in enumerate(groups)
        ]
        merged: List[RecordPair] = list(first_pairs)
        merge_seconds = 0.0
        for future, group in zip(futures, groups):
            _, pairs, seconds = future.result()
            record("block-query", seconds, units=group.units)
            started = time.perf_counter()
            merged.extend(pairs)
            merge_seconds += time.perf_counter() - started
        record("merge", merge_seconds)
    return merged


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class ResolutionExecutor:
    """Run a :class:`ResolutionPlan` against a store and matcher.

    ``workers == 1`` executes the serial schedule
    (:func:`~repro.engine.stream.resolve_stream`'s historical behaviour,
    batch for batch and byte for byte).  With a pool, blocking and scoring
    overlap: query shards and score batches are in flight together, with
    bounded in-flight depth in both stages, and batches are emitted strictly
    in ``batch_index`` order.
    """

    def __init__(
        self,
        plan: ResolutionPlan,
        store: EncodingStore,
        matcher,
        threshold: float = 0.5,
        shard_timings: Optional[ShardTimings] = None,
        stage_timings: Optional[StageTimings] = None,
    ) -> None:
        self.plan = plan
        self.store = store
        self.matcher = matcher
        self.threshold = threshold
        self.shard_timings = shard_timings
        self.stage_timings = stage_timings

    # ------------------------------------------------------------------
    def run(self) -> Iterator[ResolutionBatch]:
        """The scored batch stream; validation and version pinning are eager."""
        pinned = pin_store_version(self.store)
        if self.plan.workers == 1 or pool_kind_default() == "serial":
            return self._run_serial(pinned)
        return self._run_parallel(pinned)

    # ------------------------------------------------------------------
    def _record_stage(self, stage: str, seconds: float, units: int = 1) -> None:
        if self.stage_timings is not None:
            self.stage_timings.record(stage, seconds, units=units)

    def _run_serial(self, pinned: int) -> Iterator[ResolutionBatch]:
        plan, store, matcher = self.plan, self.store, self.matcher

        def generate() -> Iterator[ResolutionBatch]:
            if self.stage_timings is not None:
                # Warm both sides only when encode is being timed — without a
                # sink the serial schedule encodes lazily inside enumeration,
                # preserving the historical counter traces.
                started = time.perf_counter()
                store.table_encodings("left")
                store.table_encodings("right")
                guard_store_version(store, pinned)
                self._record_stage("encode", time.perf_counter() - started, units=2)
            iterator = iter(
                iter_candidate_batches(
                    store, blocking=plan.blocking, k=plan.k, batch_size=plan.batch_size
                )
            )
            while True:
                started = time.perf_counter()
                try:
                    batch_index, pairs = next(iterator)
                except StopIteration:
                    return
                block_seconds = time.perf_counter() - started
                guard_store_version(store, pinned)
                started = time.perf_counter()
                left, right = store.gather_pair_irs(pairs)
                probabilities = matcher.predict_proba(left, right)
                score_seconds = time.perf_counter() - started
                self._record_stage("block", block_seconds)
                self._record_stage("score", score_seconds)
                if self.shard_timings is not None:
                    self.shard_timings.record(batch_index, len(pairs), block_seconds + score_seconds)
                yield ResolutionBatch(
                    pairs=pairs,
                    probabilities=probabilities,
                    threshold=self.threshold,
                    batch_index=batch_index,
                )

        return generate()

    # ------------------------------------------------------------------
    def _run_parallel(self, pinned: int) -> Iterator[ResolutionBatch]:
        plan, store, matcher = self.plan, self.store, self.matcher

        def generate() -> Iterator[ResolutionBatch]:
            # Stage 1 — encode in the parent.  The persistent pool is not
            # forked per resolve, so workers never inherit these arrays;
            # each stage publishes what its tasks need through the
            # shared-memory transport below.  The version was pinned before
            # warming: if a refit lands between the two encodes, the guard
            # catches it instead of silently pairing a version-N left table
            # with a version-N+1 right table.
            started = time.perf_counter()
            left = store.table_encodings("left")
            right = store.table_encodings("right")
            guard_store_version(store, pinned)
            self._record_stage("encode", time.perf_counter() - started, units=2)

            # One pool for the whole resolve: build, query fan-out and
            # scoring all run on it, and release_pool hands it back to the
            # cache for the next resolve (delta rounds reuse it for free).
            pool = acquire_pool(plan.workers)
            emitted = 0
            try:
                try:
                    # Stage 2a — build the LSH index, hash maps computed in
                    # workers; the prepared (unhashed) index is published to
                    # the pool, the merged tables stay parent-side.
                    started = time.perf_counter()
                    index = build_index_sharded(
                        right.flat_mu(),
                        right.keys,
                        blocking=plan.blocking,
                        workers=plan.workers,
                        shard_rows=plan.shard_rows,
                        pool=pool,
                    )
                    search = NearestNeighbourSearch.from_index(index, plan.blocking)
                    self._record_stage(
                        "block", time.perf_counter() - started, units=len(plan.build_bounds)
                    )
                    guard_store_version(store, pinned)
                    if pool.broken:
                        raise BrokenExecutor("pool died during index build")

                    # Stages 2b+3 — query fan-out and scoring share the
                    # pool under one published state, so a worker drains
                    # whichever stage has work.
                    state = _PlanState(
                        flat=left.flat_mu(),
                        keys=left.keys,
                        search=search,
                        left_irs=left.irs,
                        right_irs=right.irs,
                        matcher=matcher,
                    )
                    with published_state(pool, state) as handle:
                        for batch in self._pump(pool, handle, left, right, pinned):
                            emitted = batch.batch_index + 1
                            yield batch
                except BrokenExecutor:
                    # Crash-safe fallback: a dead pool downgrades the rest
                    # of the run to the serial schedule, resuming after the
                    # last batch the pooled path already emitted.
                    pool.broken = True
                    yield from self._serial_tail(pinned, emitted)
            finally:
                release_pool(pool)

        return generate()

    def _serial_tail(self, pinned: int, skip: int) -> Iterator[ResolutionBatch]:
        """Serial re-run of the batch stream, skipping ``skip`` leading batches.

        Candidate enumeration and batch packing are deterministic, so batch
        ``i`` of a serial rerun is exactly the batch the pooled schedule
        would have emitted as ``i`` — consumers of a crashed pooled run see
        one contiguous, duplicate-free stream.
        """
        plan, store, matcher = self.plan, self.store, self.matcher
        for batch_index, pairs in iter_candidate_batches(
            store, blocking=plan.blocking, k=plan.k, batch_size=plan.batch_size
        ):
            if batch_index < skip:
                continue
            guard_store_version(store, pinned)
            started = time.perf_counter()
            left_irs, right_irs = store.gather_pair_irs(pairs)
            probabilities = matcher.predict_proba(left_irs, right_irs)
            self._record_stage("score", time.perf_counter() - started)
            if self.shard_timings is not None:
                self.shard_timings.record(batch_index, len(pairs), time.perf_counter() - started)
            yield ResolutionBatch(
                pairs=pairs,
                probabilities=probabilities,
                threshold=self.threshold,
                batch_index=batch_index,
            )

    def _pump(self, pool: WorkerPool, handle: StateHandle, left: TableEncodings, right: TableEncodings, pinned: int) -> Iterator[ResolutionBatch]:
        """Overlap query tasks and score batches with bounded in-flight depth.

        The fan-out is *calibrated*: the first planned query shard runs
        alone to measure dispatch overhead and per-row compute, and the
        remaining shards are coarsened into cost-model-sized task groups
        (see :func:`_coarsen_query_bounds`) — recorded under the
        ``dispatch``/``block-ipc`` stages plus a ``query_tasks`` counter.

        Backpressure counts both unfinished futures *and* finished-but-
        unconsumed results in each stage: when one early unit is slow, later
        completions park until it lands, and without counting them the
        parent would keep submitting and buffer the whole stream — the
        unbounded materialisation this layer exists to avoid.  Emission is
        strictly ordered: query tasks are consumed by ascending row range,
        and batches are yielded by ascending ``batch_index``.
        """
        plan, store = self.plan, self.store
        bounds = plan.query_bounds
        if not bounds:
            return
        max_inflight = max(2, plan.workers * 2)

        # Calibration: dispatch overhead and the first shard's compute size
        # the remaining tasks; its pairs head the stream, so nothing is
        # thrown away.
        dispatch = _measure_dispatch(pool)
        self._record_stage("dispatch", dispatch)
        guard_store_version(store, pinned)
        first = bounds[0]
        started = time.perf_counter()
        _, first_pairs, first_seconds = pool.submit(
            _query_task, handle, 0, first.start, first.stop, plan.k, plan.query_chunk
        ).result()
        round_trip = time.perf_counter() - started
        self._record_stage("block-ipc", max(0.0, round_trip - first_seconds))
        self._record_stage("block", first_seconds, units=1)
        groups = _coarsen_query_bounds(
            bounds[1:], first.rows, first_seconds, dispatch, plan.workers
        )
        if self.stage_timings is not None:
            self.stage_timings.record_counter("query_tasks", len(groups) + 1)

        query_inflight: Dict[object, int] = {}
        query_done: Dict[int, Tuple[List[RecordPair], float]] = {}
        score_inflight: Dict[object, int] = {}
        score_done: Dict[int, Tuple[np.ndarray, float]] = {}
        pending_pairs: Dict[int, List[RecordPair]] = {}
        buffer: List[RecordPair] = list(first_pairs)
        merge_seconds = 0.0
        submitted = 0
        next_task = 0
        batch_index = 0
        next_emit = 0

        def collect(inflight: Dict[object, int], done: Dict, block: bool) -> None:
            if not inflight:
                return
            completed, _ = wait(
                list(inflight), timeout=None if block else 0, return_when=FIRST_COMPLETED
            )
            for future in completed:
                inflight.pop(future)
                key, payload, seconds = future.result()
                done[key] = (payload, seconds)

        def emit_ready() -> Iterator[ResolutionBatch]:
            nonlocal next_emit
            while next_emit in score_done:
                probabilities, seconds = score_done.pop(next_emit)
                pairs = pending_pairs.pop(next_emit)
                if self.shard_timings is not None:
                    self.shard_timings.record(next_emit, len(pairs), seconds)
                self._record_stage("score", seconds)
                store.record_external_gather(len(pairs))
                yield ResolutionBatch(
                    pairs=pairs,
                    probabilities=probabilities,
                    threshold=self.threshold,
                    batch_index=next_emit,
                )
                next_emit += 1

        while True:
            # Top up the query fan-out.
            while submitted < len(groups) and len(query_inflight) + len(query_done) < max_inflight:
                guard_store_version(store, pinned)
                group = groups[submitted]
                query_inflight[
                    pool.submit(
                        _query_task, handle, submitted, group.start, group.stop,
                        plan.k, plan.query_chunk,
                    )
                ] = submitted
                submitted += 1
            collect(query_inflight, query_done, block=False)
            # Consume finished tasks strictly in row-range order.
            while next_task in query_done:
                pairs, seconds = query_done.pop(next_task)
                self._record_stage("block", seconds, units=groups[next_task].units)
                started = time.perf_counter()
                buffer.extend(pairs)
                merge_seconds += time.perf_counter() - started
                next_task += 1
            blocking_done = next_task >= len(groups)
            # Pack and submit score batches (partial batch only at the end).
            while len(buffer) >= plan.batch_size or (blocking_done and buffer):
                started = time.perf_counter()
                head, buffer = buffer[: plan.batch_size], buffer[plan.batch_size :]
                guard_store_version(store, pinned)
                left_rows = left.rows([p.left_id for p in head])
                right_rows = right.rows([p.right_id for p in head])
                pending_pairs[batch_index] = head
                merge_seconds += time.perf_counter() - started
                score_inflight[
                    pool.submit(_score_task, handle, batch_index, left_rows, right_rows)
                ] = batch_index
                batch_index += 1
                while len(score_inflight) + len(score_done) >= max_inflight:
                    collect(score_inflight, score_done, block=True)
                    yield from emit_ready()
            collect(score_inflight, score_done, block=False)
            yield from emit_ready()
            if blocking_done and not score_inflight and not score_done and not buffer:
                break
            if not blocking_done and next_task not in query_done:
                # Progress needs the next task: park on the query futures.
                collect(query_inflight, query_done, block=True)
            elif blocking_done and score_inflight:
                collect(score_inflight, score_done, block=True)
                yield from emit_ready()
        self._record_stage("merge", merge_seconds)
        guard_store_version(store, pinned)


# ----------------------------------------------------------------------
# Incremental (delta) resolution
# ----------------------------------------------------------------------
@dataclass
class ResolutionBaseline:
    """Reusable artefacts of a completed resolve run.

    Captured by :class:`DeltaResolutionExecutor` as its batch stream drains
    and handed back in on the next incremental run:

    * ``scores`` — per-pair match probabilities; the matcher is a pure
      row-wise function of the two cached IR tensors, so a pair's baseline
      probability equals what a full re-resolve would recompute.  Scores of
      pairs touching rows that were deleted or edited since are *dropped*
      before reuse (their IRs changed or vanished);
    * ``index`` — the LSH index over the right table, mutable in place with
      :meth:`~repro.blocking.lsh.EuclideanLSHIndex.extend` / ``remove`` /
      ``patch``;
    * ``left_keys``/``right_keys`` and the per-row CRCs — the row-identity
      snapshot of both tables at capture time, which is what the next run
      diffs against to classify every current row as clean, dirty, appended
      or (for vanished keys) deleted;
    * the tokens guarding reuse: the pinned ``encoding_version`` (a refit
      invalidates everything), ``matcher`` — the scored-by object itself,
      held strongly so identity cannot be recycled; a different matcher
      invalidates the scores but not the index — and ``blocking_token`` (a
      different LSH configuration invalidates the index).
    """

    encoding_version: int
    matcher: object
    blocking_token: str
    left_rows: int
    right_rows: int
    scores: Dict[PairKey, float]
    index: EuclideanLSHIndex
    left_keys: Tuple[str, ...] = ()
    right_keys: Tuple[str, ...] = ()
    left_row_crcs: Tuple[int, ...] = ()
    right_row_crcs: Tuple[int, ...] = ()
    #: ``index.mutations`` at capture time — reuse requires the index to be
    #: untouched since (an abandoned delta stream mutates it in place without
    #: publishing a new baseline; key comparison alone cannot see a
    #: vector-only patch).
    index_mutations: int = 0

    def diff_side(self, side: str, table) -> Optional["RowDiff"]:
        """Row-identity diff of one side's current table vs this baseline."""
        from repro.engine.persist import diff_rows

        keys = self.left_keys if side == "left" else self.right_keys
        crcs = self.left_row_crcs if side == "left" else self.right_row_crcs
        return diff_rows(keys, crcs, table)

    def index_usable(
        self,
        pinned: int,
        blocking: Optional[BlockingConfig],
        right_diff: Optional["RowDiff"],
    ) -> bool:
        """Whether ``index`` can be mutated into the current right table's index.

        True when nothing invalidated the encodings or the LSH configuration
        and the right table's mutation is a supported shape (``right_diff``
        is the successful diff against the baseline snapshot): the executor
        then applies remove/patch/extend instead of rebuilding.
        """
        if self.encoding_version != pinned:
            return False
        if self.blocking_token != repr(blocking):
            return False
        if right_diff is None:
            return False
        # The index must be the exact snapshot the diff addresses: untouched
        # since capture (mutation counter) and covering the captured keys.
        if self.index.mutations != self.index_mutations:
            return False
        return self.index.live_keys == self.right_keys

    def stale_keys(
        self, left_diff: Optional["RowDiff"], right_diff: Optional["RowDiff"], table_keys
    ) -> Tuple[set, set]:
        """(left, right) key sets whose baseline scores must be dropped.

        A pair's baseline probability is reusable only while both of its
        rows still hold the content they were scored with: deleted rows
        (their keys vanished) and edited rows (same key, new values) both
        poison every score they touch.
        """
        stale_left: set = set()
        stale_right: set = set()
        for side, diff, keys, current in (
            ("left", left_diff, self.left_keys, table_keys[0]),
            ("right", right_diff, self.right_keys, table_keys[1]),
        ):
            stale = stale_left if side == "left" else stale_right
            if diff is None:
                continue
            stale.update(str(keys[j]) for j in diff.deleted_old)
            if diff.dirty_new:
                stale.update(str(current[p]) for p in diff.dirty_new)
        return stale_left, stale_right


class DeltaResolutionExecutor:
    """Run a delta :class:`ResolutionPlan` against a baseline run.

    Produces the batch stream a cold
    :func:`~repro.engine.stream.resolve_stream` with the same knobs yields
    on the current (mutated) tables — the identical candidate enumeration
    and batch packing, probabilities byte-identical for reused pairs and
    equal up to matmul batch-composition round-off (~1 ulp) for rescored
    ones, so the match set is identical — while paying only for the delta:

    * table encodings come from the mutation-aware store (dirty and
      appended rows only; deleted rows are dropped for free);
    * the baseline LSH index is mutated in place instead of rebuilt —
      deleted right rows are tombstoned out of the bucket maps, edited rows
      rebucketed, appended rows hashed in (each step answer-identical to a
      rebuild, and bucket-identical once compaction runs);
    * baseline scores for pairs touching deleted or edited rows are
      dropped; the matcher runs only on candidate pairs not covered by the
      surviving scores — pairs involving new or dirty rows, plus any
      old-old pair newly surfaced by a deletion reshaping some top-K —
      counted through ``pairs_rescored``.

    The refreshed :class:`ResolutionBaseline` is published on ``baseline_out``
    once the stream is exhausted.  With ``plan.workers > 1`` the tail/dirty
    encode and the left-shard queries fan out across the worker pool (the
    regime where a delta outgrows one shard); scoring stays serial — it is
    bounded by the mutation size.
    """

    def __init__(
        self,
        plan: ResolutionPlan,
        store: EncodingStore,
        matcher,
        baseline: Optional[ResolutionBaseline] = None,
        threshold: float = 0.5,
        stage_timings: Optional[StageTimings] = None,
        diffs: Optional[Dict[str, Tuple[int, Optional[RowDiff]]]] = None,
    ) -> None:
        self.plan = plan
        self.store = store
        self.matcher = matcher
        self.baseline = baseline
        self.threshold = threshold
        self.stage_timings = stage_timings
        self.baseline_out: Optional[ResolutionBaseline] = None
        #: Revision-stamped per-side diffs precomputed by :func:`resolve_delta`
        #: (side -> (table revision, diff)); reused at run time only while the
        #: table's revision still matches, so planning and execution never
        #: disagree about the mutation they describe.
        self._diffs = diffs or {}

    def _diff_side(self, side: str) -> Optional[RowDiff]:
        assert self.baseline is not None
        table = self.store.task.left if side == "left" else self.store.task.right
        memo = self._diffs.get(side)
        if memo is not None and memo[0] == table.revision:
            return memo[1]
        diff = self.baseline.diff_side(side, table)
        self._diffs[side] = (table.revision, diff)
        return diff

    def _record_stage(self, stage: str, seconds: float, units: int = 1) -> None:
        if self.stage_timings is not None:
            self.stage_timings.record(stage, seconds, units=units)

    def _record_counter(self, name: str, value: int) -> None:
        if self.stage_timings is not None:
            self.stage_timings.record_counter(name, value)

    def run(self) -> Iterator[ResolutionBatch]:
        """The scored batch stream; validation and version pinning are eager."""
        pinned = pin_store_version(self.store)
        plan, store, matcher = self.plan, self.store, self.matcher

        def generate() -> Iterator[ResolutionBatch]:
            # Row-identity diffs against the baseline snapshot — computed
            # *before* encoding so they describe the transition, not the
            # refreshed state.
            baseline = self.baseline
            left_diff = right_diff = None
            if baseline is not None and baseline.encoding_version == pinned:
                left_diff = self._diff_side("left")
                right_diff = self._diff_side("right")

            rows_before = store.counters.rows_reencoded
            tombstoned_before = store.counters.rows_tombstoned
            started = time.perf_counter()
            with _pooled_tail_encoder(store, plan.workers, plan.shard_rows):
                left = store.table_encodings("left")
                right = store.table_encodings("right")
            guard_store_version(store, pinned)
            self._record_stage("encode", time.perf_counter() - started, units=2)
            self._record_counter("rows_reencoded", store.counters.rows_reencoded - rows_before)
            self._record_counter(
                "rows_tombstoned", store.counters.rows_tombstoned - tombstoned_before
            )

            index_reused = baseline is not None and baseline.index_usable(
                pinned, plan.blocking, right_diff
            )
            started = time.perf_counter()
            if index_reused:
                index = baseline.index
                flat = right.flat_mu()
                removed = [
                    str(baseline.right_keys[j]) for j in right_diff.deleted_old
                ]
                if removed:
                    index.remove(removed)
                if right_diff.dirty_new:
                    dirty = list(right_diff.dirty_new)
                    index.patch(flat[dirty], [str(right.keys[p]) for p in dirty])
                base, total = right_diff.appended_range
                if total > base:
                    tail = (
                        flat.row_slice(base, total)  # keep appended rows as codes
                        if isinstance(flat, CodecArray)
                        else flat[base:total]
                    )
                    index.extend(tail, [str(key) for key in right.keys[base:total]])
                self._record_stage("block-extend", time.perf_counter() - started)
            else:
                index = EuclideanLSHIndex(
                    num_tables=(plan.blocking or BlockingConfig()).num_tables,
                    hash_size=(plan.blocking or BlockingConfig()).hash_size,
                    bucket_width=(plan.blocking or BlockingConfig()).bucket_width,
                    seed=(plan.blocking or BlockingConfig()).seed,
                ).build(right.flat_mu(), list(right.keys))
                self._record_stage("block", time.perf_counter() - started)
            guard_store_version(store, pinned)
            search = NearestNeighbourSearch.from_index(index, plan.blocking)

            scores: Dict[PairKey, float]
            if (
                baseline is not None
                and baseline.encoding_version == pinned
                and baseline.matcher is matcher
            ):
                stale_left, stale_right = baseline.stale_keys(
                    left_diff, right_diff, (left.keys, right.keys)
                )
                if stale_left or stale_right:
                    scores = {
                        pair: probability
                        for pair, probability in baseline.scores.items()
                        if pair[0] not in stale_left and pair[1] not in stale_right
                    }
                else:
                    scores = baseline.scores
            else:
                scores = {}
            new_scores: Dict[PairKey, float] = {}
            rescored = 0
            for batch_index, pairs in self._iter_batches(search, left, pinned):
                guard_store_version(store, pinned)
                started = time.perf_counter()
                probabilities = np.empty(len(pairs))
                unknown: List[int] = []
                for position, pair in enumerate(pairs):
                    known = scores.get((pair.left_id, pair.right_id))
                    if known is None:
                        unknown.append(position)
                    else:
                        probabilities[position] = known
                if unknown:
                    subset = [pairs[position] for position in unknown]
                    left_irs, right_irs = store.gather_pair_irs(subset)
                    probabilities[unknown] = matcher.predict_proba(left_irs, right_irs)
                    rescored += len(unknown)
                    store.counters.record_pairs_rescored(len(unknown))
                for position, pair in enumerate(pairs):
                    new_scores[(pair.left_id, pair.right_id)] = float(probabilities[position])
                self._record_stage("score", time.perf_counter() - started)
                yield ResolutionBatch(
                    pairs=pairs,
                    probabilities=probabilities,
                    threshold=self.threshold,
                    batch_index=batch_index,
                )
            guard_store_version(store, pinned)
            self._record_counter("pairs_rescored", rescored)
            from repro.engine.persist import table_row_crcs

            left_table, right_table = store.task.left, store.task.right
            self.baseline_out = ResolutionBaseline(
                encoding_version=pinned,
                matcher=matcher,
                blocking_token=repr(plan.blocking),
                left_rows=len(left_table),
                right_rows=len(right_table),
                scores=new_scores,
                index=index,
                left_keys=tuple(left_table.record_ids()),
                right_keys=tuple(right_table.record_ids()),
                left_row_crcs=tuple(table_row_crcs(left_table)),
                right_row_crcs=tuple(table_row_crcs(right_table)),
                index_mutations=index.mutations,
            )

        return generate()

    def _iter_batches(
        self, search: NearestNeighbourSearch, left: TableEncodings, pinned: int
    ) -> Iterator[Tuple[int, List[RecordPair]]]:
        """Candidate batches against the delta-updated index.

        Serial plans walk :func:`~repro.engine.stream.iter_candidate_batches`
        (the canonical enumeration); pooled plans run the calibrated query
        fan-out on the persistent pool — acquired here, so consecutive delta
        rounds reuse one pool — and merge tasks back in row order with the
        same buffer/slice packing: the byte-identity contract either way.
        A pool that dies mid-fan-out downgrades to the serial enumeration,
        resuming after the last batch already yielded.
        """
        plan, store = self.plan, self.store
        bounds = plan.query_bounds
        if plan.workers == 1 or len(bounds) <= 1 or pool_kind_default() == "serial":
            yield from iter_candidate_batches(
                store, blocking=plan.blocking, k=plan.k,
                batch_size=plan.batch_size, search=search,
            )
            return
        emitted = 0
        pool = acquire_pool(plan.workers)
        try:
            try:
                state = _PlanState(flat=left.flat_mu(), keys=left.keys, search=search)
                with published_state(pool, state) as handle:
                    dispatch = _measure_dispatch(pool)
                    self._record_stage("dispatch", dispatch)
                    first = bounds[0]
                    started = time.perf_counter()
                    _, first_pairs, first_seconds = pool.submit(
                        _query_task, handle, 0, first.start, first.stop,
                        plan.k, plan.query_chunk,
                    ).result()
                    round_trip = time.perf_counter() - started
                    self._record_stage("block-ipc", max(0.0, round_trip - first_seconds))
                    self._record_stage("block", first_seconds, units=1)
                    groups = _coarsen_query_bounds(
                        bounds[1:], first.rows, first_seconds, dispatch, plan.workers
                    )
                    if self.stage_timings is not None:
                        self.stage_timings.record_counter("query_tasks", len(groups) + 1)
                    futures = [
                        pool.submit(
                            _query_task, handle, position + 1, group.start, group.stop,
                            plan.k, plan.query_chunk,
                        )
                        for position, group in enumerate(groups)
                    ]
                    buffer: List[RecordPair] = list(first_pairs)
                    batch_index = 0
                    # Futures consumed in submission order == row order, so
                    # the merged stream reproduces the serial enumeration
                    # pair for pair.
                    for future, group in zip(futures, groups):
                        guard_store_version(store, pinned)
                        _, pairs, seconds = future.result()
                        self._record_stage("block", seconds, units=group.units)
                        buffer.extend(pairs)
                        while len(buffer) >= plan.batch_size:
                            head, buffer = buffer[: plan.batch_size], buffer[plan.batch_size :]
                            yield batch_index, head
                            batch_index += 1
                            emitted = batch_index
                    if buffer:
                        yield batch_index, buffer
                        emitted = batch_index + 1
                    return
            except BrokenExecutor:
                pool.broken = True
        finally:
            release_pool(pool)
        # Serial fallback after a dead pool, skipping already-yielded batches.
        for batch_index, pairs in iter_candidate_batches(
            store, blocking=plan.blocking, k=plan.k,
            batch_size=plan.batch_size, search=search,
        ):
            if batch_index < emitted:
                continue
            yield batch_index, pairs


def resolve_delta(
    store: EncodingStore,
    matcher,
    baseline: Optional[ResolutionBaseline] = None,
    blocking: Optional[BlockingConfig] = None,
    k: int = 10,
    batch_size: int = 2048,
    threshold: float = 0.5,
    stage_timings: Optional[StageTimings] = None,
    workers: int = 1,
) -> DeltaResolutionExecutor:
    """Plan an incremental resolve against ``baseline`` and return its executor.

    Returns the :class:`DeltaResolutionExecutor` (rather than the raw
    iterator) so the caller can collect ``baseline_out`` after draining
    ``.run()`` — :meth:`repro.core.pipeline.VAER.resolve_delta` does exactly
    that to chain incremental runs.  With ``baseline=None`` the run is a
    cold resolve that merely *captures* a baseline for the next call.  The
    plan is parameterised by a row-identity diff of both tables against the
    baseline snapshot, so its encode/block stages name the exact patch,
    tombstone and tail units the executor will run; ``workers > 1`` fans
    the tail encode and query units across the worker pool.
    """
    pinned = store.representation.encoding_version
    base_left = base_right = 0
    dirty_left = dirty_right = deleted_left = deleted_right = 0
    index_reusable = False
    diffs: Dict[str, Tuple[int, Optional[RowDiff]]] = {}
    if baseline is not None and baseline.encoding_version == pinned:
        left_diff = baseline.diff_side("left", store.task.left)
        right_diff = baseline.diff_side("right", store.task.right)
        diffs = {
            "left": (store.task.left.revision, left_diff),
            "right": (store.task.right.revision, right_diff),
        }
        if left_diff is not None:
            base_left = left_diff.appended_range[0]
            dirty_left = len(left_diff.dirty_new or ())
            deleted_left = len(left_diff.deleted_old)
        if right_diff is not None:
            base_right = right_diff.appended_range[0]
            dirty_right = len(right_diff.dirty_new or ())
            deleted_right = len(right_diff.deleted_old)
        index_reusable = baseline.index_usable(pinned, blocking, right_diff)
    plan = ResolutionPlanner.from_store(
        store, blocking=blocking, k=k, batch_size=batch_size, workers=workers
    ).plan_delta(
        base_left,
        base_right,
        index_reusable=index_reusable,
        dirty_left_rows=dirty_left,
        dirty_right_rows=dirty_right,
        deleted_left_rows=deleted_left,
        deleted_right_rows=deleted_right,
    )
    return DeltaResolutionExecutor(
        plan,
        store,
        matcher,
        baseline=baseline,
        threshold=threshold,
        stage_timings=stage_timings,
        diffs=diffs,
    )


# ----------------------------------------------------------------------
# Convenience front-end
# ----------------------------------------------------------------------
def resolve_plan(
    store: EncodingStore,
    matcher,
    blocking: Optional[BlockingConfig] = None,
    k: int = 10,
    batch_size: int = 2048,
    threshold: float = 0.5,
    workers: int = 1,
    shard_timings: Optional[ShardTimings] = None,
    stage_timings: Optional[StageTimings] = None,
) -> Iterator[ResolutionBatch]:
    """Plan and execute a resolve run in one call.

    The single engine behind :func:`repro.engine.stream.resolve_stream`
    (``workers=1``) and :func:`repro.engine.shard.resolve_sharded`
    (``workers>1``): identical knobs always produce the identical batch
    stream, whatever the worker count.
    """
    plan = ResolutionPlanner.from_store(
        store, blocking=blocking, k=k, batch_size=batch_size, workers=workers
    ).plan()
    return ResolutionExecutor(
        plan,
        store,
        matcher,
        threshold=threshold,
        shard_timings=shard_timings,
        stage_timings=stage_timings,
    ).run()
