"""Shared-memory state transport for the persistent worker pool.

The persistent pool (:mod:`repro.engine.shard`) outlives any single resolve,
so forked workers can no longer inherit stage state by copy-on-write — the
state does not exist yet when the pool's processes are forked.  This module
is the replacement transport: :func:`publish_state` pickles a state object
with a pickler that *hoists* every large ndarray into its own
:class:`multiprocessing.shared_memory.SharedMemory` segment (the pickle
stream itself lands in one more segment), and returns a tiny picklable
:class:`StateSpec` naming the segments.  Workers :func:`attach_state` the
spec: the arrays come back as zero-copy NumPy views over the mapped
segments, so publishing a gigabyte of encodings ships gigabytes through the
page cache exactly once and every task afterwards carries only the spec.

Thread pools never need any of this (workers share the parent's address
space); the pool layer therefore only publishes through here for
process-backed pools, and falls back to threads when
:func:`shared_memory_available` says the platform cannot provide segments
(``/dev/shm`` missing, sealed sandbox) or the user forced it off with
``REPRO_ENGINE_SHM=0``.
"""

from __future__ import annotations

import io
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

#: Arrays at or above this many bytes are hoisted into their own segment;
#: smaller ones ride along inside the pickled payload, where the fixed
#: per-segment cost (open/mmap/close) would exceed the copy they avoid.
ARRAY_HOIST_BYTES = 1 << 16

#: Worker-side memo depth: attached states are cached per process so every
#: task of a resolve pays the unpickle once, and old resolves' segments are
#: let go once this many newer states have been attached.
ATTACHED_STATE_CACHE = 4

_PID_MARKER = "repro-shm-ndarray"

_available: Optional[bool] = None


def shared_memory_available() -> bool:
    """Whether POSIX shared-memory segments work here (memoized probe).

    ``REPRO_ENGINE_SHM=0`` forces ``False`` — the kill switch that sends the
    pool layer down its threaded fast path on platforms where segments
    exist but misbehave.
    """
    global _available
    if _available is None:
        if os.environ.get("REPRO_ENGINE_SHM", "").strip().lower() in ("0", "false", "off", "no"):
            _available = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=16)
                probe.close()
                probe.unlink()
                _available = True
            except (OSError, ValueError):
                _available = False
    return _available


@dataclass(frozen=True)
class StateSpec:
    """Everything a worker needs to attach one published state.

    Small and picklable by construction — segment *names*, not contents —
    so shipping it with every task costs bytes, not arrays.  Hoisted array
    layout (dtype/shape) travels inside the pickle payload itself via the
    persistent-id records, so the spec only lists segment names for
    accounting.
    """

    token: str
    payload_segment: str
    payload_bytes: int
    arrays: Tuple[str, ...]


class _HoistingPickler(pickle.Pickler):
    """Pickler that spills large ndarrays into shared-memory segments."""

    def __init__(self, file: io.BytesIO, segments: List[shared_memory.SharedMemory]) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._segments = segments

    def persistent_id(self, obj):  # noqa: D102 - pickle protocol hook
        if (
            isinstance(obj, np.ndarray)
            and obj.nbytes >= ARRAY_HOIST_BYTES
            and not obj.dtype.hasobject
        ):
            data = np.ascontiguousarray(obj)
            segment = shared_memory.SharedMemory(create=True, size=data.nbytes)
            self._segments.append(segment)
            view = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
            view[...] = data
            del view  # release the exported buffer so close() can succeed later
            return (_PID_MARKER, segment.name, data.dtype.str, tuple(data.shape))
        return None


class _AttachingUnpickler(pickle.Unpickler):
    """Unpickler resolving hoisted arrays to views over attached segments."""

    def __init__(self, file: io.BytesIO, attachments: List[shared_memory.SharedMemory]) -> None:
        super().__init__(file)
        self._attachments = attachments

    def persistent_load(self, pid):  # noqa: D102 - pickle protocol hook
        marker, name, dtype, shape = pid
        if marker != _PID_MARKER:
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        segment = _open_segment(name)
        self._attachments.append(segment)
        return np.frombuffer(segment.buf, dtype=np.dtype(dtype)).reshape(shape)


def _open_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting ownership of it.

    On Python < 3.13 attaching registers the segment with the resource
    tracker, which would unlink it when the worker exits — destroying a
    segment the publisher still owns.  Worse, the tracker's cache is a set,
    so register/unregister chatter from several workers collapses and the
    publisher's final unlink trips a tracker ``KeyError``.  Suppressing the
    register during attach keeps the tracker's view exactly one
    create/unlink pair per segment, owned by the publisher.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


#: Segments whose unmap failed because live ndarray views still reference
#: their buffer.  The views pin the mapping regardless, so the handle is
#: kept here forever — otherwise its ``__del__`` would retry the close
#: during GC and raise an unraisable ``BufferError``.
_pinned_segments: List[shared_memory.SharedMemory] = []


def _close_segment(segment: shared_memory.SharedMemory) -> None:
    """Close a segment handle, pinning it if exported views block the unmap."""
    try:
        segment.close()
    except BufferError:
        _pinned_segments.append(segment)


class StatePublication:
    """Owner handle of one published state: the spec plus segment lifetimes.

    ``close()`` is idempotent and unlinks every segment; attached workers
    keep their existing mappings (POSIX unlink semantics), so releasing a
    publication after the resolve drains never races in-flight tasks.
    """

    def __init__(self, spec: StateSpec, segments: List[shared_memory.SharedMemory]) -> None:
        self.spec = spec
        self._segments = segments
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            _close_segment(segment)
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments = []

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def publish_state(token: str, state: object) -> StatePublication:
    """Pickle ``state`` into shared memory and return the owner handle.

    Large ndarrays anywhere in the object graph (encodings, LSH projections,
    packed bucket tables, model weights) are hoisted into their own
    segments; the residual pickle stream — object structure, keys, scalars —
    lands in one payload segment, so per-task arguments stay a few hundred
    bytes no matter how big the state is.
    """
    segments: List[shared_memory.SharedMemory] = []
    try:
        buffer = io.BytesIO()
        pickler = _HoistingPickler(buffer, segments)
        pickler.dump(state)
        payload = buffer.getbuffer()
        payload_segment = shared_memory.SharedMemory(create=True, size=max(1, payload.nbytes))
        segments.append(payload_segment)
        payload_segment.buf[: payload.nbytes] = payload
        spec = StateSpec(
            token=token,
            payload_segment=payload_segment.name,
            payload_bytes=payload.nbytes,
            arrays=tuple(s.name for s in segments[:-1]),
        )
        return StatePublication(spec, segments)
    except BaseException:
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass
        raise


#: Worker-side memo of attached states: token -> (state, segment handles).
_attached: "OrderedDict[str, Tuple[object, List[shared_memory.SharedMemory]]]" = OrderedDict()


def attach_state(spec: StateSpec) -> object:
    """Materialise a published state in this process (memoized by token).

    Hoisted arrays come back as zero-copy views over the mapped segments;
    everything else is unpickled from the payload segment.  The memo keeps
    the last :data:`ATTACHED_STATE_CACHE` states alive so a worker pays the
    unpickle once per resolve, not once per task.
    """
    cached = _attached.get(spec.token)
    if cached is not None:
        _attached.move_to_end(spec.token)
        return cached[0]
    attachments: List[shared_memory.SharedMemory] = []
    payload_segment = _open_segment(spec.payload_segment)
    attachments.append(payload_segment)
    payload = bytes(payload_segment.buf[: spec.payload_bytes])
    state = _AttachingUnpickler(io.BytesIO(payload), attachments).load()
    _attached[spec.token] = (state, attachments)
    while len(_attached) > ATTACHED_STATE_CACHE:
        _, (_, old_attachments) = _attached.popitem(last=False)
        for segment in old_attachments:
            _close_segment(segment)
    return state


def detach_all() -> None:
    """Drop every memoized attachment (worker teardown / test isolation)."""
    while _attached:
        _, (_, attachments) = _attached.popitem(last=False)
        for segment in attachments:
            _close_segment(segment)
