"""Bounded-memory streaming resolution on top of the encoding store.

``VAER.resolve`` materialises every candidate pair and its feature tensors at
once, which is fine for benchmark tables but not for production-scale inputs.
:func:`resolve_stream` chunk-wise pipelines the same blocking → featurisation
→ matching flow: the right-hand table is indexed once, left-hand records are
queried in blocks, and candidate pairs are featurised and scored in slices of
at most ``batch_size`` pairs.  Peak memory is therefore bounded by the cached
table encodings plus one scoring batch, regardless of how many candidate
pairs blocking emits.  :mod:`repro.engine.shard` builds on this seam: it
reuses the exact candidate enumeration and batch packing below but fans the
per-batch scoring out across a persistent worker pool, shipping the stage
state through shared memory (:mod:`repro.engine.sharedmem`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.blocking.neighbours import NearestNeighbourSearch
from repro.config import BlockingConfig
from repro.data.pairs import RecordPair
from repro.engine.store import EncodingStore
from repro.exceptions import StaleEncodingError


@dataclass
class ScoredPairs:
    """Candidate pairs with match probabilities and a decision threshold.

    The single definition of the match predicate shared by monolithic
    resolution (:class:`repro.core.pipeline.ResolutionResult`) and the
    streamed batches below — so the two paths cannot diverge on what counts
    as a match.
    """

    pairs: List[RecordPair]
    probabilities: np.ndarray
    threshold: float

    def __len__(self) -> int:
        return len(self.pairs)

    def matches(self) -> List[RecordPair]:
        """Candidate pairs predicted to be duplicates.

        The predicate is strictly ``p > threshold``: a probability exactly
        equal to the threshold is *not* a match, matching the pipeline's
        ``probabilities > self.threshold`` evaluation predicate.
        """
        return [pair for pair, p in zip(self.pairs, self.probabilities) if p > self.threshold]


def pin_store_version(store: EncodingStore) -> int:
    """Pin the representation version a stream was started against."""
    return store.representation.encoding_version


def guard_store_version(store: EncodingStore, pinned: int) -> None:
    """Fail loudly if the store was invalidated mid-stream.

    Encoding caches invalidate transparently on version bumps, which is the
    right behaviour *between* operations but silently wrong *during* one: a
    stream that continued after a refit would mix scores from two different
    encoders.  Streaming and sharded resolution call this before every batch.
    """
    current = store.representation.encoding_version
    if current != pinned:
        raise StaleEncodingError(
            f"encoding store for task {store.task.name!r} was invalidated mid-stream "
            f"(encoding_version {pinned} -> {current}); restart the resolution"
        )


@dataclass
class ResolutionBatch(ScoredPairs):
    """One scored slice of the candidate stream."""

    batch_index: int


#: Default candidate pairs per scored batch, shared by every resolve front-end.
DEFAULT_BATCH_SIZE = 2048


def query_chunk_for(batch_size: int, k: int) -> int:
    """Left-table rows per blocking query chunk for a given batch size.

    The single definition of the chunk derivation: every enumerator — the
    streamed path below, the sharded enumeration, the planner's parallel
    query fan-out — chunks query rows through this formula, so they all
    walk the left table in the same strides.
    """
    return max(1, batch_size // max(1, k))


def stream_candidate_pairs(
    store: EncodingStore,
    blocking: Optional[BlockingConfig] = None,
    k: int = 10,
    query_chunk: int = 512,
    search: Optional[NearestNeighbourSearch] = None,
) -> Iterator[List[RecordPair]]:
    """Blocking as a stream: top-K candidates per block of left-hand queries.

    The LSH index over the right-hand side is built once from the store's
    cached encodings; each yielded list covers ``query_chunk`` query records.
    ``search`` optionally supplies an already-built index (the delta resolve
    path hands in its incrementally *extended* one); the chunk walk — and
    therefore the emitted pair stream for an equivalent index — is identical
    either way.
    """
    if query_chunk <= 0:
        raise ValueError("query_chunk must be positive")
    pinned = pin_store_version(store)

    def generate() -> Iterator[List[RecordPair]]:
        searcher = search if search is not None else NearestNeighbourSearch.from_store(store, config=blocking)
        left = store.table_encodings("left")
        flat = left.flat_mu()
        for start in range(0, len(left), query_chunk):
            guard_store_version(store, pinned)
            stop = start + query_chunk
            chunk = searcher.candidate_pairs(flat[start:stop], left.keys[start:stop], k=k)
            if chunk:
                yield chunk

    return generate()


def iter_candidate_batches(
    store: EncodingStore,
    blocking: Optional[BlockingConfig] = None,
    k: int = 10,
    batch_size: int = 2048,
    search: Optional[NearestNeighbourSearch] = None,
) -> Iterator[Tuple[int, List[RecordPair]]]:
    """The candidate stream packed into ``(batch_index, pairs)`` batches.

    This is the serial schedule's definition of batch packing, used by
    :func:`resolve_stream` (via the executor's ``workers=1`` path).  The
    planner's parallel pump packs its shard-merged candidate stream with the
    same buffer/slice discipline and the same :func:`query_chunk_for`
    stride; the byte-identity between the two is pinned by the equivalence
    tests in ``tests/engine/test_plan.py``.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")

    def generate() -> Iterator[Tuple[int, List[RecordPair]]]:
        buffer: List[RecordPair] = []
        batch_index = 0
        query_chunk = query_chunk_for(batch_size, k)
        for candidates in stream_candidate_pairs(
            store, blocking=blocking, k=k, query_chunk=query_chunk, search=search
        ):
            buffer.extend(candidates)
            if len(buffer) < batch_size:
                continue
            # Walk full batches by offset and compact the tail once per
            # chunk: re-slicing the remainder per batch copies the whole
            # buffer every emission (quadratic in the chunk's pair count).
            offset = 0
            while len(buffer) - offset >= batch_size:
                yield batch_index, buffer[offset : offset + batch_size]
                batch_index += 1
                offset += batch_size
            del buffer[:offset]
        if buffer:
            yield batch_index, buffer

    return generate()


def resolve_stream(
    store: EncodingStore,
    matcher,
    blocking: Optional[BlockingConfig] = None,
    k: int = 10,
    batch_size: int = 2048,
    threshold: float = 0.5,
) -> Iterator[ResolutionBatch]:
    """Score the candidate stream in bounded-memory batches.

    Yields :class:`ResolutionBatch` objects whose concatenated pairs and
    probabilities equal a monolithic ``resolve`` pass over the same store.
    Argument validation is eager (not deferred to the first iteration), so a
    bad ``batch_size`` fails before any expensive work starts.

    This is a thin front-end over the plan/execute engine
    (:mod:`repro.engine.plan`) at ``workers=1``: the serial schedule
    enumerates candidates through :func:`iter_candidate_batches` above and
    scores each batch inline, exactly as this function always did.
    """
    from repro.engine.plan import resolve_plan

    return resolve_plan(
        store,
        matcher,
        blocking=blocking,
        k=k,
        batch_size=batch_size,
        threshold=threshold,
        workers=1,
    )
