"""Configuration objects for the VAER reproduction.

The defaults reproduce Table III of the paper:

===============================  =======
Parameter                        Value
===============================  =======
VAE hidden dimension             200
VAE latent dimension             100
Matching margin M                0.5
AL samples per iteration         10
AL top neighbours K              10
Optimizer                        Adam
Learning rate                    0.001
===============================  =======

Dataset sizes are scaled down relative to the paper (the evaluation here runs
on CPU with synthetic data); the scaling factor is configurable per
experiment through :class:`ExperimentConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict, Optional, Tuple


@dataclass
class VAEConfig:
    """Hyper-parameters of the entity representation model (Figure 2)."""

    ir_dim: int = 64
    hidden_dim: int = 200
    latent_dim: int = 100
    epochs: int = 15
    batch_size: int = 64
    learning_rate: float = 0.001
    kl_weight: float = 1.0
    grad_clip: float = 5.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.ir_dim <= 0 or self.hidden_dim <= 0 or self.latent_dim <= 0:
            raise ValueError("VAE dimensions must be positive")
        if self.kl_weight < 0:
            raise ValueError("kl_weight must be non-negative")


@dataclass
class MatcherConfig:
    """Hyper-parameters of the Siamese matching model (Figure 3)."""

    margin: float = 0.5
    mlp_hidden: Tuple[int, ...] = (64, 32)
    epochs: int = 30
    batch_size: int = 32
    learning_rate: float = 0.001
    contrastive_weight: float = 1.0
    dropout: float = 0.0
    grad_clip: float = 5.0
    seed: int = 13

    def __post_init__(self) -> None:
        if self.margin <= 0:
            raise ValueError("margin must be positive")
        if not self.mlp_hidden:
            raise ValueError("matcher MLP needs at least one hidden layer")


@dataclass
class ActiveLearningConfig:
    """Hyper-parameters of the active-learning scheme (Section V)."""

    samples_per_iteration: int = 10
    top_neighbours: int = 10
    iterations: int = 25
    kde_samples_per_pair: int = 200
    bootstrap_positives: int = 15
    bootstrap_negatives: int = 15
    retrain_epochs: int = 15
    seed: int = 29

    def __post_init__(self) -> None:
        if self.samples_per_iteration <= 0:
            raise ValueError("samples_per_iteration must be positive")
        if self.top_neighbours <= 0:
            raise ValueError("top_neighbours must be positive")


@dataclass
class BlockingConfig:
    """Hyper-parameters of the LSH blocking / candidate-generation substrate."""

    num_tables: int = 8
    hash_size: int = 12
    bucket_width: float = 4.0
    seed: int = 41


@dataclass
class VAERConfig:
    """Aggregate configuration for the end-to-end VAER pipeline."""

    vae: VAEConfig = field(default_factory=VAEConfig)
    matcher: MatcherConfig = field(default_factory=MatcherConfig)
    active_learning: ActiveLearningConfig = field(default_factory=ActiveLearningConfig)
    blocking: BlockingConfig = field(default_factory=BlockingConfig)
    ir_method: str = "lsa"

    def to_dict(self) -> Dict:
        """Flatten the configuration to a plain dictionary (for metadata)."""
        return asdict(self)

    @staticmethod
    def paper_defaults() -> "VAERConfig":
        """Return the configuration matching Table III of the paper."""
        return VAERConfig()


@dataclass
class ExperimentConfig:
    """Controls how large the synthetic workloads are when running benches.

    ``scale`` multiplies the per-domain cardinalities; 1.0 corresponds to the
    reduced sizes used by default in this CPU-only reproduction (roughly one
    tenth of the paper's Table II sizes).
    """

    scale: float = 1.0
    seed: int = 97
    fast: bool = True

    def scaled(self, value: int, minimum: int = 20) -> int:
        return max(minimum, int(round(value * self.scale)))
