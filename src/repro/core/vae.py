"""The Variational Auto-Encoder underlying entity representation learning.

This is the model of Figure 2 in the paper: an encoder maps an Intermediate
Representation (IR) of an attribute value to the mean and (log-)variance of a
diagonal Gaussian; a sampling layer draws latent codes via the
reparameterisation trick; a decoder reconstructs the IR from the latent code.
Parameters are *shared across attributes* — the model sees a flat batch of
attribute-value IRs regardless of which attribute or record they came from —
which is exactly what makes the representation model transferable across
domains (Section III-D).

The training objective is Equation 2: reconstruction log-likelihood (squared
error under a unit-variance Gaussian decoder) plus the KL divergence of each
approximate posterior from the standard normal prior.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.config import VAEConfig
from repro.nn import (
    Adam,
    EarlyStopping,
    Linear,
    Module,
    Trainer,
    TrainingHistory,
    gaussian_kl_divergence,
    sum_squared_error,
)


class GaussianEncoder(Module):
    """Encoder half of the VAE: IR → (mu, log-variance) of ``q(z | IR)``."""

    def __init__(self, ir_dim: int, hidden_dim: int, latent_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.ir_dim = ir_dim
        self.hidden_dim = hidden_dim
        self.latent_dim = latent_dim
        self.hidden = Linear(ir_dim, hidden_dim, rng=rng)
        self.mu_head = Linear(hidden_dim, latent_dim, activation="linear", rng=rng)
        self.log_var_head = Linear(hidden_dim, latent_dim, activation="linear", rng=rng)

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        hidden = self.hidden(x).relu()
        mu = self.mu_head(hidden)
        # Clip the log-variance so sigma stays in a numerically safe range.
        log_var = self.log_var_head(hidden).clip(-8.0, 8.0)
        return mu, log_var


class GaussianDecoder(Module):
    """Decoder half of the VAE: latent code z → reconstructed IR."""

    def __init__(self, latent_dim: int, hidden_dim: int, ir_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.hidden = Linear(latent_dim, hidden_dim, rng=rng)
        self.output = Linear(hidden_dim, ir_dim, activation="linear", rng=rng)

    def forward(self, z: Tensor) -> Tensor:
        return self.output(self.hidden(z).relu())


class VariationalAutoEncoder(Module):
    """Complete VAE with reparameterised sampling (Figure 2 of the paper)."""

    def __init__(self, config: Optional[VAEConfig] = None, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.config = config or VAEConfig()
        rng = rng or np.random.default_rng(self.config.seed)
        self._rng = rng
        self.encoder = GaussianEncoder(
            self.config.ir_dim, self.config.hidden_dim, self.config.latent_dim, rng=rng
        )
        self.decoder = GaussianDecoder(
            self.config.latent_dim, self.config.hidden_dim, self.config.ir_dim, rng=rng
        )

    # ------------------------------------------------------------------
    def encode(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        """Return (mu, log_var) of the approximate posterior for each row."""
        return self.encoder(x)

    def reparameterize(self, mu: Tensor, log_var: Tensor) -> Tensor:
        """Sampling layer: ``z = mu + sigma * eps`` with ``eps ~ N(0, I)``.

        In evaluation mode the sample collapses to the mean, making encoding
        deterministic — matching how the paper uses the trained encoder to
        produce entity representations.
        """
        if not self.training:
            return mu
        sigma = (log_var * 0.5).exp()
        epsilon = Tensor(self._rng.standard_normal(mu.shape))
        return mu + sigma * epsilon

    def decode(self, z: Tensor) -> Tensor:
        return self.decoder(z)

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor, Tensor]:
        """Full pass: returns (reconstruction, mu, log_var)."""
        mu, log_var = self.encode(x)
        z = self.reparameterize(mu, log_var)
        return self.decode(z), mu, log_var

    # ------------------------------------------------------------------
    def loss(self, x: Tensor) -> Tensor:
        """ELBO-derived loss of Equation 2 (negated, to be minimised)."""
        reconstruction, mu, log_var = self.forward(x)
        reconstruction_error = sum_squared_error(reconstruction, x)
        kl = gaussian_kl_divergence(mu, log_var)
        return reconstruction_error + self.config.kl_weight * kl

    def fit(self, irs: np.ndarray, epochs: Optional[int] = None) -> TrainingHistory:
        """Train the VAE on a flat batch of IRs, shape (n_values, ir_dim)."""
        irs = np.asarray(irs, dtype=np.float64)
        if irs.ndim != 2 or irs.shape[1] != self.config.ir_dim:
            raise ValueError(
                f"expected IRs of shape (n, {self.config.ir_dim}), got {irs.shape}"
            )
        optimizer = Adam(self.parameters(), lr=self.config.learning_rate)
        trainer = Trainer(
            module=self,
            optimizer=optimizer,
            loss_fn=lambda batch: self.loss(Tensor(batch)),
            batch_size=self.config.batch_size,
            max_epochs=epochs if epochs is not None else self.config.epochs,
            grad_clip=self.config.grad_clip,
            early_stopping=EarlyStopping(patience=4),
            rng=np.random.default_rng(self.config.seed),
        )
        return trainer.fit(irs)

    # ------------------------------------------------------------------
    def encode_numpy(self, irs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Deterministic encoding of IRs to (mu, sigma) numpy arrays."""
        irs = np.asarray(irs, dtype=np.float64)
        squeeze = False
        if irs.ndim == 1:
            irs = irs[None, :]
            squeeze = True
        mu, log_var = self.encode(Tensor(irs))
        sigma = np.exp(0.5 * log_var.data)
        if squeeze:
            return mu.data[0], sigma[0]
        return mu.data, sigma

    def sample_latent(self, irs: np.ndarray, num_samples: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``num_samples`` latent codes per IR row.

        Returns an array of shape (n, num_samples, latent_dim).  This is the
        generative facility exploited by the diversity component of the
        active-learning sampler (Equation 6 of the paper).
        """
        rng = rng or self._rng
        mu, sigma = self.encode_numpy(irs)
        noise = rng.standard_normal((mu.shape[0], num_samples, mu.shape[1]))
        return mu[:, None, :] + sigma[:, None, :] * noise
