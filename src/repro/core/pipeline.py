"""End-to-end VAER API (the decoupled process of Figure 1).

:class:`VAER` wires the three stages of the paper together behind one object:

1. ``fit_representation`` — unsupervised representation learning (step 1 of
   Figure 1), or ``use_representation`` to plug in a transferred model;
2. ``fit_matcher`` — supervised Siamese matching on labeled pairs (step 2);
3. ``active_learning`` — the labeling-assist loop (step 3), which trains the
   matcher with an oracle in the loop instead of a given training set.

The object also exposes blocking-based candidate generation and evaluation
helpers so the examples and benchmarks read like a user's workflow.

Data flow (the engine layer)
----------------------------
All encodings flow through one shared :class:`repro.engine.EncodingStore`
(:attr:`VAER.store`), created lazily once a representation is available and
replaced whenever a new representation is fitted or adopted:

* the store computes each table's IR arrays and latent Gaussians ``(mu,
  sigma)`` in a single batched pass and caches them, invalidating itself
  automatically when the representation model is refit or transferred (it
  watches ``EntityRepresentationModel.encoding_version``);
* blocking (:meth:`candidate_pairs`), matcher training and inference
  (:meth:`fit_matcher`, :meth:`predict_pairs`), resolution (:meth:`resolve`,
  :meth:`resolve_stream`) and the active-learning loop all *gather* from the
  store — candidate pairs are index arrays into its row-major encodings, so
  no stage ever re-tokenizes or re-encodes a record the store already holds;
* :meth:`resolve_stream` chunks the same flow so candidate scoring runs in
  bounded-memory batches for inputs too large to score at once; with
  ``workers > 1`` the batches are scored in parallel across a worker pool
  (:func:`repro.engine.resolve_sharded`) with byte-identical results;
* a ``cache_dir`` attaches a :class:`repro.engine.PersistentEncodingCache`
  to the store, so repeated runs on the same task and representation load
  table encodings from disk instead of recomputing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.blocking.neighbours import NearestNeighbourSearch
from repro.config import VAERConfig
from repro.core.active.loop import ActiveLearningLoop, ALResult
from repro.core.active.oracle import LabelingOracle
from repro.core.matcher import SiameseMatcher, fit_matcher_with_threshold, pair_ir_arrays
from repro.core.representation import EntityRepresentationModel
from repro.core.transfer import transfer_representation
from repro.data.pairs import PairSet, RecordPair
from repro.data.schema import ERTask
from repro.engine import (
    DEFAULT_SHARD_ROWS,
    EncodingStore,
    PersistentEncodingCache,
    ResolutionBaseline,
    ResolutionBatch,
    ResolutionPlan,
    ResolutionPlanner,
    ScoredPairs,
    ShardedEncodingStore,
    resolve_delta,
    resolve_sharded,
    resolve_stream,
)
from repro.engine.quant import resolve_codec_name
from repro.eval.metrics import PRF, precision_recall_f1
from repro.eval.timing import ShardTimings, StageTimings
from repro.exceptions import NotFittedError


@dataclass
class ResolutionResult(ScoredPairs):
    """Output of :meth:`VAER.resolve`: scored candidate pairs."""


class VAER:
    """Variational Active Entity Resolution, end to end."""

    def __init__(
        self,
        config: Optional[VAERConfig] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        shard_rows: int = DEFAULT_SHARD_ROWS,
        codec: Optional[str] = None,
    ) -> None:
        self.config = config or VAERConfig()
        self.representation: Optional[EntityRepresentationModel] = None
        self.matcher: Optional[SiameseMatcher] = None
        self.task: Optional[ERTask] = None
        self.threshold: float = 0.5
        self.cache_dir: Optional[Path] = Path(cache_dir) if cache_dir is not None else None
        self.shard_rows = shard_rows
        # Resolved eagerly (explicit name or REPRO_ENGINE_CODEC) so an
        # unknown codec fails at construction, not mid-resolve.
        self.codec = resolve_codec_name(codec)
        self._store: Optional[EncodingStore] = None
        self._baseline: Optional[ResolutionBaseline] = None

    def use_cache_dir(self, cache_dir: Optional[Union[str, Path]]) -> "VAER":
        """Attach (or detach, with ``None``) a persistent encoding cache.

        The store is rebuilt on next access so the new cache takes effect;
        in-memory encodings already computed are recomputed or — when the
        cache directory holds a matching entry — loaded from disk.
        """
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._store = None
        return self

    # ------------------------------------------------------------------
    # Step 1: representation learning
    # ------------------------------------------------------------------
    def fit_representation(self, task: ERTask, epochs: Optional[int] = None) -> "VAER":
        """Unsupervised training of the entity representation model."""
        self.task = task
        self.representation = EntityRepresentationModel(
            config=self.config.vae, ir_method=self.config.ir_method
        ).fit(task, epochs=epochs)
        self._store = None
        self._baseline = None
        return self

    def use_representation(self, representation: EntityRepresentationModel, task: ERTask) -> "VAER":
        """Adopt an existing (typically transferred) representation model."""
        self.task = task
        self.representation = transfer_representation(representation, task)
        self._store = None
        self._baseline = None
        return self

    def _require_representation(self) -> EntityRepresentationModel:
        if self.representation is None or self.task is None:
            raise NotFittedError("call fit_representation() or use_representation() first")
        return self.representation

    @property
    def store(self) -> EncodingStore:
        """The shared encoding store every pipeline stage gathers from.

        Created lazily from the current representation and task; replaced
        when a new representation is fitted or adopted.  The store itself
        additionally invalidates its cache if the representation is refit in
        place.
        """
        representation = self._require_representation()
        assert self.task is not None
        if self._store is None:
            persistent = (
                PersistentEncodingCache(self.cache_dir) if self.cache_dir is not None else None
            )
            self._store = ShardedEncodingStore(
                representation,
                self.task,
                persistent=persistent,
                shard_rows=self.shard_rows,
                codec=self.codec,
            )
        return self._store

    # ------------------------------------------------------------------
    # Step 2: supervised matching
    # ------------------------------------------------------------------
    def fit_matcher(
        self,
        training_pairs: PairSet,
        validation_pairs: Optional[PairSet] = None,
        epochs: Optional[int] = None,
    ) -> "VAER":
        """Train the Siamese matcher on labeled pairs.

        When validation pairs are supplied, the decision threshold is tuned on
        them (F1-maximising), mirroring how the baselines select their
        operating point.
        """
        representation = self._require_representation()
        assert self.task is not None
        self.matcher, self.threshold = fit_matcher_with_threshold(
            representation,
            self.task,
            training_pairs,
            validation_pairs,
            config=self.config.matcher,
            store=self.store,
            epochs=epochs,
        )
        # Baseline scores belong to the previous matcher; drop them (the
        # encodings and index would still be valid, but resolve_delta
        # re-derives those cheaply from the store on the next cold capture).
        self._baseline = None
        return self

    # ------------------------------------------------------------------
    # Step 3: active learning
    # ------------------------------------------------------------------
    def active_learning(
        self,
        oracle: LabelingOracle,
        iterations: Optional[int] = None,
        label_budget: Optional[int] = None,
        strategy: str = "vaer",
        test_pairs: Optional[PairSet] = None,
        verify_bootstrap_positives: bool = True,
    ) -> ALResult:
        """Train the matcher through the active-learning loop.

        The resulting matcher is adopted by this pipeline (so ``predict`` and
        ``evaluate`` use it afterwards) and the full AL result is returned for
        inspection of the labeling-cost trace.
        """
        representation = self._require_representation()
        assert self.task is not None
        loop = ActiveLearningLoop(
            task=self.task,
            representation=representation,
            oracle=oracle,
            config=self.config.active_learning,
            matcher_config=self.config.matcher,
            blocking=self.config.blocking,
            strategy=strategy,
            test_pairs=test_pairs,
            verify_bootstrap_positives=verify_bootstrap_positives,
            store=self.store,
        )
        result = loop.run(iterations=iterations, label_budget=label_budget)
        self.matcher = result.matcher
        self.threshold = 0.5
        self._baseline = None
        return result

    # ------------------------------------------------------------------
    # Inference and evaluation
    # ------------------------------------------------------------------
    def _require_matcher(self) -> SiameseMatcher:
        if self.matcher is None:
            raise NotFittedError("call fit_matcher() or active_learning() first")
        return self.matcher

    def predict_pairs(self, pairs: PairSet) -> np.ndarray:
        """Match probabilities for labeled or unlabeled pairs."""
        representation = self._require_representation()
        matcher = self._require_matcher()
        assert self.task is not None
        left, right, _ = pair_ir_arrays(representation, self.task, pairs, store=self.store)
        return matcher.predict_proba(left, right)

    def evaluate(self, test_pairs: PairSet) -> PRF:
        """Precision/recall/F1 on a labeled test pair set."""
        probabilities = self.predict_pairs(test_pairs)
        predictions = (probabilities > self.threshold).astype(int)
        return precision_recall_f1(test_pairs.labels(), predictions)

    # ------------------------------------------------------------------
    # Blocking + end-to-end resolution
    # ------------------------------------------------------------------
    def candidate_pairs(self, k: Optional[int] = None) -> List[RecordPair]:
        """Blocking step: LSH top-K candidates over entity representations."""
        self._require_representation()
        k = k or self.config.active_learning.top_neighbours
        store = self.store
        search = NearestNeighbourSearch.from_store(store, config=self.config.blocking)
        left = store.table_encodings("left")
        return search.candidate_pairs(left.flat_mu(), left.keys, k=k)

    def resolve(self, k: Optional[int] = None) -> ResolutionResult:
        """Full ER pass: blocking then matching of every candidate pair."""
        matcher = self._require_matcher()
        candidates = self.candidate_pairs(k=k)
        left, right = self.store.gather_pair_irs(candidates)
        probabilities = matcher.predict_proba(left, right)
        return ResolutionResult(pairs=candidates, probabilities=probabilities, threshold=self.threshold)

    def resolve_stream(
        self,
        k: Optional[int] = None,
        batch_size: int = 2048,
        workers: int = 1,
        shard_timings: Optional[ShardTimings] = None,
        stage_timings: Optional[StageTimings] = None,
        incremental: bool = False,
    ) -> Iterator[ResolutionBatch]:
        """Chunked ER pass: score candidates in bounded-memory batches.

        Equivalent to :meth:`resolve` — the concatenation of all yielded
        batches covers the same candidate pairs with the same probabilities —
        but featurisation and scoring never hold more than ``batch_size``
        pairs at once, so arbitrarily large candidate sets resolve in bounded
        memory.

        With ``workers > 1`` both the LSH blocking queries and the batch
        scoring run concurrently on a worker pool through the plan/execute
        engine (:func:`repro.engine.resolve_sharded`) and merge back in
        order; the yielded sequence is byte-identical to the single-process
        stream.  ``shard_timings`` optionally collects per-batch worker
        timings; ``stage_timings`` collects per-stage (encode/block/score)
        compute seconds.

        With ``incremental=True`` the run goes through the delta engine
        (:meth:`resolve_delta`): the first such call is a cold resolve that
        captures a baseline, every later call pays only for the rows added,
        edited or deleted since — see :meth:`resolve_delta` for the
        contract.  ``workers > 1`` fans the delta's tail encode and query
        units across the worker pool; scoring stays serial (bounded by the
        mutation size).
        """
        matcher = self._require_matcher()
        k = k or self.config.active_learning.top_neighbours
        if incremental:
            return self.resolve_delta(
                k=k, batch_size=batch_size, stage_timings=stage_timings, workers=workers
            )
        if workers != 1 or shard_timings is not None or stage_timings is not None:
            return resolve_sharded(
                self.store,
                matcher,
                blocking=self.config.blocking,
                k=k,
                batch_size=batch_size,
                threshold=self.threshold,
                workers=workers,
                shard_timings=shard_timings,
                stage_timings=stage_timings,
            )
        return resolve_stream(
            self.store,
            matcher,
            blocking=self.config.blocking,
            k=k,
            batch_size=batch_size,
            threshold=self.threshold,
        )

    def resolve_delta(
        self,
        k: Optional[int] = None,
        batch_size: int = 2048,
        stage_timings: Optional[StageTimings] = None,
        workers: int = 1,
    ) -> Iterator[ResolutionBatch]:
        """Incremental ER pass: pay only for rows mutated since the last one.

        The first call performs a cold resolve and records a
        :class:`repro.engine.ResolutionBaseline` (per-pair probabilities,
        the LSH index and a row-identity snapshot of both tables) on this
        pipeline.  After the task's tables mutate — rows appended via
        :func:`repro.data.generators.append_rows` or ``Table.add``, edited
        in place via :func:`repro.data.generators.mutate_rows` or
        ``Table.replace``, deleted via
        :func:`repro.data.generators.delete_rows` or ``Table.remove`` — the
        next call:

        * re-encodes only the edited and appended rows (the mutation-aware
          store and the content-addressed chunk cache recognise everything
          else by record id); deleted rows are dropped for free;
        * mutates the baseline LSH index in place — tombstones deleted right
          rows, rebuckets edited ones, hashes in appended ones — instead of
          rebuilding it;
        * drops baseline probabilities for pairs touching deleted or edited
          rows and runs the matcher only on candidate pairs the surviving
          baseline does not cover.

        The yielded stream matches a cold :meth:`resolve_stream` on the
        mutated tables: identical candidate enumeration and match set, with
        probabilities byte-identical for reused pairs and equal up to float
        round-off for rescored ones — the equivalence the delta tests pin.  The
        baseline is refreshed when the stream is fully drained (an abandoned
        stream keeps the previous baseline).  Refitting the representation
        or matcher invalidates the affected parts automatically.  With
        ``workers > 1`` tail encodes and query shards run on the worker
        pool when the delta outgrows one shard.
        """
        matcher = self._require_matcher()
        k = k or self.config.active_learning.top_neighbours
        executor = resolve_delta(
            self.store,
            matcher,
            baseline=self._baseline,
            blocking=self.config.blocking,
            k=k,
            batch_size=batch_size,
            threshold=self.threshold,
            stage_timings=stage_timings,
            workers=workers,
        )

        def stream() -> Iterator[ResolutionBatch]:
            yield from executor.run()
            if executor.baseline_out is not None:
                self._baseline = executor.baseline_out

        return stream()

    def resolve_distributed(
        self,
        workers: int = 2,
        queue_dir: Optional[Union[str, Path]] = None,
        runtime: Optional[object] = None,
        k: Optional[int] = None,
        batch_size: int = 2048,
        shard_timings: Optional[ShardTimings] = None,
        stage_timings: Optional[StageTimings] = None,
        incremental: bool = False,
        lease_timeout: Optional[float] = None,
        job_id: Optional[str] = None,
    ) -> Iterator[ResolutionBatch]:
        """Resolve across worker *processes or hosts* sharing the cache dir.

        The same plan/execute engine as :meth:`resolve_stream` runs, but
        its stage units — LSH partial-bucket builds, query shards, score
        batches and (on ``incremental`` runs) tail encode ranges — are
        dispatched through a :class:`repro.distrib.DistributedRuntime`
        instead of a local pool: workers claim leased units from the queue,
        attach published stage state (cache-resident encodings load
        codec-aware from the shared :class:`PersistentEncodingCache`), and
        publish content-addressed results the coordinator validates by
        fingerprint and merges in deterministic ``(batch_index,
        pair_index)`` order.  The yielded stream is byte-identical to the
        serial :meth:`resolve_stream` over the same store, whatever the
        worker count, and survives worker crashes: expired leases re-
        dispatch, and a fully dead fleet degrades to the coordinator's
        serial schedule.

        Pass either an existing ``runtime`` (kept open for the caller) or a
        ``queue_dir`` to build a file-lease runtime for this run; start
        workers with ``python -m repro worker --queue-dir <dir>``.
        ``workers == 1`` degenerates to the local serial schedule — real
        distribution needs at least two planned workers.
        """
        from repro.distrib import CacheRef, DistributedRuntime

        self._require_matcher()
        k = k or self.config.active_learning.top_neighbours
        own_runtime = runtime is None
        if own_runtime:
            if queue_dir is None:
                raise ValueError("resolve_distributed needs a queue_dir or a runtime")
            options: Dict[str, object] = {
                "workers": workers,
                "cache_dir": self.cache_dir,
                "stage_timings": stage_timings,
            }
            if lease_timeout is not None:
                options["lease_timeout"] = lease_timeout
            if job_id is not None:
                options["job_id"] = job_id
            runtime = DistributedRuntime.file_queue(queue_dir, **options)
        elif stage_timings is not None:
            runtime.coordinator.stage_timings = stage_timings
        if self.cache_dir is not None:
            # Warm (and write through) both sides, then register the cached
            # IR arrays so published score states ship tiny cache references
            # instead of the arrays themselves.
            store = self.store
            version = self._require_representation().encoding_version
            for side in ("left", "right"):
                encodings = store.table_encodings(side)
                runtime.add_cache_ref(
                    encodings.irs,
                    CacheRef(
                        task_name=self.task.name,
                        side=side,
                        encoding_version=version,
                        fingerprint=store.table_fingerprint(side),
                        array="irs",
                    ),
                )

        def stream() -> Iterator[ResolutionBatch]:
            try:
                with runtime.activate():
                    yield from self.resolve_stream(
                        k=k,
                        batch_size=batch_size,
                        workers=runtime.workers,
                        shard_timings=shard_timings,
                        stage_timings=stage_timings,
                        incremental=incremental,
                    )
            finally:
                if own_runtime:
                    runtime.close()

        return stream()

    @property
    def baseline(self) -> Optional[ResolutionBaseline]:
        """The delta baseline captured by the last fully drained delta run.

        ``None`` until a :meth:`resolve_delta` (or incremental
        :meth:`resolve_stream`) stream has been drained, and reset whenever
        the representation or matcher is refit.  Read-only: the serving
        layer uses it to reach the live LSH index and the row-identity
        snapshot for ad-hoc point queries between mutations.
        """
        return self._baseline

    def plan_resolution(
        self,
        k: Optional[int] = None,
        batch_size: int = 2048,
        workers: int = 1,
    ) -> ResolutionPlan:
        """The deterministic stage graph a resolve run with these knobs executes.

        Pure metadata — computed from table sizes alone, no encoding or
        matcher required — so the plan can be inspected before committing to
        the run (the CLI ``plan`` subcommand prints it).
        """
        self._require_representation()
        assert self.task is not None
        k = k or self.config.active_learning.top_neighbours
        return ResolutionPlanner(
            self.task,
            blocking=self.config.blocking,
            k=k,
            batch_size=batch_size,
            workers=workers,
            shard_rows=self.shard_rows,
        ).plan()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Human-readable description of the pipeline state."""
        info: Dict[str, object] = {
            "ir_method": self.config.ir_method,
            "task": self.task.name if self.task else None,
            "representation_fitted": self.representation is not None,
            "matcher_fitted": self.matcher is not None,
            "threshold": self.threshold,
            "cache_dir": str(self.cache_dir) if self.cache_dir is not None else None,
            "shard_rows": self.shard_rows,
            "codec": self.codec,
        }
        if self.representation is not None:
            info["vae_parameters"] = self.representation.vae.num_parameters()
        if self.matcher is not None:
            info["matcher_parameters"] = self.matcher.num_parameters()
        return info
