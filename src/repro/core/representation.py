"""Unsupervised entity representation learning (Section III of the paper).

:class:`EntityRepresentationModel` glues together an IR generator and the
shared-parameter VAE of :mod:`repro.core.vae`: it fits the IR model on the
corpus of an ER task, trains the VAE on the flat collection of attribute-value
IRs (no labels involved), and then encodes any record as a collection of
per-attribute diagonal Gaussians ``{(mu_1, sigma_1), ..., (mu_m, sigma_m)}``.

The model is the transferable artefact of the paper: its VAE weights can be
reused on a different ER task (see :mod:`repro.core.transfer`), with only the
cheap IR fitting repeated on the new corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import VAEConfig
from repro.core.vae import VariationalAutoEncoder
from repro.data.schema import ERTask, Record, Table
from repro.exceptions import NotFittedError
from repro.nn import TrainingHistory, load_state_dict, save_state_dict
from repro.text.ir import IRGenerator


@dataclass
class EntityEncoding:
    """Latent representation of a set of records.

    ``mu`` and ``sigma`` have shape (n_records, arity, latent_dim); ``keys``
    holds the record identifiers in row order.
    """

    keys: Tuple[str, ...]
    mu: np.ndarray
    sigma: np.ndarray

    def __post_init__(self) -> None:
        if self.mu.shape != self.sigma.shape:
            raise ValueError("mu and sigma must have identical shapes")
        if len(self.keys) != self.mu.shape[0]:
            raise ValueError("keys must align with encoding rows")

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def arity(self) -> int:
        return self.mu.shape[1]

    @property
    def latent_dim(self) -> int:
        return self.mu.shape[2]

    def row_of(self, key: str) -> int:
        try:
            return self.keys.index(key)
        except ValueError as exc:
            raise KeyError(f"record {key!r} not present in encoding") from exc

    def of(self, key: str) -> Tuple[np.ndarray, np.ndarray]:
        """(mu, sigma) of one record, each with shape (arity, latent_dim)."""
        row = self.row_of(key)
        return self.mu[row], self.sigma[row]

    def flat_mu(self) -> np.ndarray:
        """Record-level vectors for LSH search: concatenated attribute means."""
        return self.mu.reshape(len(self), -1)


class EntityRepresentationModel:
    """IR generation + VAE training + record encoding, end to end."""

    def __init__(
        self,
        config: Optional[VAEConfig] = None,
        ir_method: str = "lsa",
        seed: Optional[int] = None,
    ) -> None:
        self.config = config or VAEConfig()
        if seed is not None:
            self.config.seed = seed
        self.ir_method = ir_method
        self.ir_generator = IRGenerator(method=ir_method, dim=self.config.ir_dim)
        self.vae = VariationalAutoEncoder(self.config)
        self._fitted = False
        self.training_history: Optional[TrainingHistory] = None
        # Monotonic token consumed by encoding caches (repro.engine): any
        # event that can change what this model would encode a record to —
        # VAE training, IR refitting, weight loading — bumps it, so stale
        # cached encodings are detectable without hashing weights.
        self._encoding_version = 0

    @property
    def encoding_version(self) -> int:
        """Cache-invalidation token: changes whenever encodings would change."""
        return self._encoding_version

    def _bump_encoding_version(self) -> None:
        self._encoding_version += 1

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, task: ERTask, epochs: Optional[int] = None) -> "EntityRepresentationModel":
        """Unsupervised training on all attribute values of both tables."""
        self.ir_generator.fit(task)
        irs = self._flat_irs(task)
        self.training_history = self.vae.fit(irs, epochs=epochs)
        self._fitted = True
        self._bump_encoding_version()
        return self

    def refit_ir_only(self, task: ERTask) -> "EntityRepresentationModel":
        """Refit only the IR generator on a new task, keeping VAE weights.

        This is the transfer-learning path (Section III-D): the VAE encoder is
        domain-agnostic because it operates on numeric IRs, so applying the
        model to a new domain only requires regenerating IRs for that domain.
        """
        self.ir_generator = IRGenerator(method=self.ir_method, dim=self.config.ir_dim).fit(task)
        self._fitted = True
        self._bump_encoding_version()
        return self

    def _flat_irs(self, task: ERTask) -> np.ndarray:
        left = self.ir_generator.transform_table(task.left)
        right = self.ir_generator.transform_table(task.right)
        flat = np.concatenate(
            [left.reshape(-1, self.config.ir_dim), right.reshape(-1, self.config.ir_dim)],
            axis=0,
        )
        return flat

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("EntityRepresentationModel used before fit()")

    def encode_table(self, table: Table) -> EntityEncoding:
        """Encode every record of ``table`` into per-attribute Gaussians."""
        self._require_fitted()
        irs = self.ir_generator.transform_table(table)
        n, arity, _ = irs.shape
        mu, sigma = self.vae.encode_numpy(irs.reshape(n * arity, -1))
        latent = mu.shape[-1]
        return EntityEncoding(
            keys=tuple(table.record_ids()),
            mu=mu.reshape(n, arity, latent),
            sigma=sigma.reshape(n, arity, latent),
        )

    def encode_task(self, task: ERTask) -> Dict[str, EntityEncoding]:
        """Encode both sides of a task, keyed ``"left"``/``"right"``."""
        return {"left": self.encode_table(task.left), "right": self.encode_table(task.right)}

    def encode_record(self, record: Record) -> Tuple[np.ndarray, np.ndarray]:
        """(mu, sigma) of a single record, each of shape (arity, latent_dim)."""
        self._require_fitted()
        irs = self.ir_generator.transform_record(record)
        return self.vae.encode_numpy(irs)

    def record_irs(self, record: Record) -> np.ndarray:
        """Raw IRs of a record (used by the matcher's input pipeline)."""
        self._require_fitted()
        return self.ir_generator.transform_record(record)

    def sample_record_latents(self, record: Record, num_samples: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Sample latent codes for each attribute of a record.

        Shape: (arity, num_samples, latent_dim).  Used by the AL diversity
        estimator (Equation 6).
        """
        self._require_fitted()
        irs = self.ir_generator.transform_record(record)
        return self.vae.sample_latent(irs, num_samples, rng=rng)

    # ------------------------------------------------------------------
    # Persistence (transfer learning)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist VAE weights and configuration (IRs are refit per task)."""
        metadata = {
            "ir_method": self.ir_method,
            "ir_dim": self.config.ir_dim,
            "hidden_dim": self.config.hidden_dim,
            "latent_dim": self.config.latent_dim,
        }
        save_state_dict(self.vae.state_dict(), path, metadata=metadata)

    @staticmethod
    def load(path, config: Optional[VAEConfig] = None, ir_method: Optional[str] = None) -> "EntityRepresentationModel":
        """Load a representation model saved with :meth:`save`.

        The returned model still needs :meth:`refit_ir_only` (or :meth:`fit`)
        on the target task before it can encode records.
        """
        from repro.nn.serialization import load_metadata

        metadata = load_metadata(path) or {}
        config = config or VAEConfig(
            ir_dim=int(metadata.get("ir_dim", VAEConfig().ir_dim)),
            hidden_dim=int(metadata.get("hidden_dim", VAEConfig().hidden_dim)),
            latent_dim=int(metadata.get("latent_dim", VAEConfig().latent_dim)),
        )
        model = EntityRepresentationModel(
            config=config,
            ir_method=ir_method or str(metadata.get("ir_method", "lsa")),
        )
        model.vae.load_state_dict(load_state_dict(path))
        model._bump_encoding_version()
        return model
