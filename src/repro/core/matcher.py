"""Supervised matching in the latent space (Section IV of the paper).

:class:`SiameseMatcher` implements Figure 3: two weight-tied variational
encoders (initialised from the unsupervised representation model) map the
per-attribute IRs of both tuples to diagonal Gaussians; a Distance layer
computes attribute-wise squared 2-Wasserstein vectors; the concatenated
distance vectors feed a two-layer MLP that predicts match / non-match.

Training optimises Equation 4: binary cross-entropy of the prediction plus a
contrastive term that pulls duplicate representations together and pushes
non-duplicates apart up to a margin ``M``, fine-tuning the transferred encoder
weights in the process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.store import EncodingStore

from repro.autograd import Tensor
from repro.config import MatcherConfig, VAEConfig
from repro.core.distances import mahalanobis_vector_t, wasserstein2_vector_t
from repro.core.representation import EntityRepresentationModel
from repro.core.vae import GaussianEncoder
from repro.data.pairs import LabeledPair, PairSet
from repro.data.schema import ERTask
from repro.exceptions import NotFittedError
from repro.nn import (
    Adam,
    EarlyStopping,
    MLP,
    Module,
    Trainer,
    TrainingHistory,
    binary_cross_entropy_with_logits,
    contrastive_loss,
)


class SiameseMatcher(Module):
    """Siamese matching network over per-attribute Gaussian representations.

    Parameters
    ----------
    arity:
        Number of aligned attributes of the ER task.
    vae_config:
        Architecture of the encoder heads (must match the representation
        model the weights are transferred from).
    config:
        Matcher hyper-parameters (margin, MLP sizes, training schedule).
    distance:
        ``"wasserstein"`` (default, Equation 3) or ``"mahalanobis"`` for the
        ablation discussed in Section IV-A.
    """

    def __init__(
        self,
        arity: int,
        vae_config: Optional[VAEConfig] = None,
        config: Optional[MatcherConfig] = None,
        distance: str = "wasserstein",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if arity <= 0:
            raise ValueError("arity must be positive")
        if distance not in ("wasserstein", "mahalanobis"):
            raise ValueError(f"unknown distance {distance!r}")
        self.arity = arity
        self.vae_config = vae_config or VAEConfig()
        self.config = config or MatcherConfig()
        self.distance = distance
        rng = rng or np.random.default_rng(self.config.seed)
        # One encoder instance == weight tying between the two Siamese heads:
        # both tuples pass through the same module, so gradient updates are
        # automatically mirrored (Section IV-A).
        self.encoder = GaussianEncoder(
            self.vae_config.ir_dim, self.vae_config.hidden_dim, self.vae_config.latent_dim, rng=rng
        )
        self.classifier = MLP(
            in_features=arity * self.vae_config.latent_dim,
            hidden_sizes=self.config.mlp_hidden,
            out_features=1,
            dropout=self.config.dropout,
            rng=rng,
        )
        self._fitted = False
        self.training_history: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------
    # Weight transfer
    # ------------------------------------------------------------------
    def initialize_from(self, representation: EntityRepresentationModel) -> "SiameseMatcher":
        """Copy the trained VAE encoder weights into both Siamese heads."""
        self.encoder.load_state_dict(representation.vae.encoder.state_dict())
        return self

    # ------------------------------------------------------------------
    # Forward pass
    # ------------------------------------------------------------------
    def _encode_side(self, irs: Tensor) -> Tuple[Tensor, Tensor]:
        """Encode a (batch, arity, ir_dim) tensor to (mu, sigma) tensors."""
        batch = irs.shape[0]
        flat = irs.reshape(batch * self.arity, self.vae_config.ir_dim)
        mu, log_var = self.encoder(flat)
        sigma = (log_var * 0.5).exp()
        latent = self.vae_config.latent_dim
        return (
            mu.reshape(batch, self.arity, latent),
            sigma.reshape(batch, self.arity, latent),
        )

    def forward(self, left_irs: Tensor, right_irs: Tensor) -> Tuple[Tensor, Tensor]:
        """Return (logits, per-pair mean attribute distance).

        ``logits`` has shape (batch,); the distance output is the scalar
        attribute-averaged W2^2 used by the contrastive part of the loss.
        """
        mu_left, sigma_left = self._encode_side(left_irs)
        mu_right, sigma_right = self._encode_side(right_irs)
        if self.distance == "wasserstein":
            distance_vectors = wasserstein2_vector_t(mu_left, sigma_left, mu_right, sigma_right)
        else:
            distance_vectors = mahalanobis_vector_t(mu_left, sigma_left, mu_right, sigma_right)
        batch = distance_vectors.shape[0]
        concatenated = distance_vectors.reshape(batch, self.arity * self.vae_config.latent_dim)
        logits = self.classifier(concatenated).reshape(batch)
        # Mean over attributes and latent dimensions: the tuple-level distance.
        pair_distance = distance_vectors.reshape(batch, -1).mean(axis=-1)
        return logits, pair_distance

    # ------------------------------------------------------------------
    # Loss (Equation 4)
    # ------------------------------------------------------------------
    def loss(self, left_irs: np.ndarray, right_irs: np.ndarray, labels: np.ndarray) -> Tensor:
        logits, pair_distance = self.forward(Tensor(left_irs), Tensor(right_irs))
        labels_t = Tensor(np.asarray(labels, dtype=np.float64))
        classification = binary_cross_entropy_with_logits(logits, labels_t)
        contrastive = contrastive_loss(pair_distance, labels_t, margin=self.config.margin)
        return classification + self.config.contrastive_weight * contrastive

    # ------------------------------------------------------------------
    # Training / inference
    # ------------------------------------------------------------------
    def fit(
        self,
        left_irs: np.ndarray,
        right_irs: np.ndarray,
        labels: np.ndarray,
        epochs: Optional[int] = None,
    ) -> TrainingHistory:
        """Train on aligned IR arrays of shape (n, arity, ir_dim)."""
        left_irs = np.asarray(left_irs, dtype=np.float64)
        right_irs = np.asarray(right_irs, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if left_irs.shape != right_irs.shape:
            raise ValueError("left and right IR arrays must have identical shapes")
        if left_irs.shape[0] != labels.shape[0]:
            raise ValueError("labels must align with IR arrays")
        optimizer = Adam(self.parameters(), lr=self.config.learning_rate)
        # On small labeled pools (e.g. the AL bootstrap's ~30 pairs) a full-size
        # batch would give only one gradient step per epoch; cap the batch so
        # every epoch makes at least ~8 updates.
        n_pairs = left_irs.shape[0]
        effective_batch = min(self.config.batch_size, max(4, int(np.ceil(n_pairs / 8))))
        trainer = Trainer(
            module=self,
            optimizer=optimizer,
            loss_fn=self.loss,
            batch_size=effective_batch,
            max_epochs=epochs if epochs is not None else self.config.epochs,
            grad_clip=self.config.grad_clip,
            early_stopping=EarlyStopping(patience=6),
            rng=np.random.default_rng(self.config.seed),
        )
        history = trainer.fit(left_irs, right_irs, labels)
        self._fitted = True
        self.training_history = history
        return history

    def predict_proba(self, left_irs: np.ndarray, right_irs: np.ndarray) -> np.ndarray:
        """Match probabilities for aligned IR arrays."""
        if not self._fitted:
            raise NotFittedError("SiameseMatcher.predict_proba called before fit")
        self.eval()
        logits, _ = self.forward(Tensor(np.asarray(left_irs, dtype=np.float64)),
                                 Tensor(np.asarray(right_irs, dtype=np.float64)))
        return 1.0 / (1.0 + np.exp(-np.clip(logits.data, -60, 60)))

    def predict(self, left_irs: np.ndarray, right_irs: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary match decisions."""
        return (self.predict_proba(left_irs, right_irs) > threshold).astype(np.int64)

    def pair_distances(self, left_irs: np.ndarray, right_irs: np.ndarray) -> np.ndarray:
        """Tuple-level W2^2 distances under the (possibly fine-tuned) encoder."""
        self.eval()
        _, distances = self.forward(Tensor(np.asarray(left_irs, dtype=np.float64)),
                                    Tensor(np.asarray(right_irs, dtype=np.float64)))
        return distances.data


# ----------------------------------------------------------------------
# Pair featurisation helpers
# ----------------------------------------------------------------------
def pair_ir_arrays(
    representation: EntityRepresentationModel,
    task: ERTask,
    pairs: Iterable[LabeledPair],
    store: Optional["EncodingStore"] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Assemble (left IRs, right IRs, labels) arrays for a set of labeled pairs.

    With a ``store`` (an :class:`repro.engine.EncodingStore` bound to the same
    representation and task), the IR rows are gathered from the store's cached
    table encodings — each record is encoded at most once per representation
    version, no matter how many pairs reference it.  Without one, IRs are
    computed in one batch per side.  Shapes: (n, arity, ir_dim) for the IR
    arrays and (n,) for the labels.
    """
    pairs = list(pairs)
    if store is not None:
        return store.pair_ir_arrays(pairs)
    if not pairs:
        arity = task.arity
        dim = representation.config.ir_dim
        return np.zeros((0, arity, dim)), np.zeros((0, arity, dim)), np.zeros((0,))
    left_records = [task.left[p.left_id] for p in pairs]
    right_records = [task.right[p.right_id] for p in pairs]
    left_values: List[str] = []
    right_values: List[str] = []
    for record in left_records:
        left_values.extend(record.values)
    for record in right_records:
        right_values.extend(record.values)
    arity = task.arity
    dim = representation.config.ir_dim
    left = representation.ir_generator.transform_values(left_values).reshape(len(pairs), arity, dim)
    right = representation.ir_generator.transform_values(right_values).reshape(len(pairs), arity, dim)
    labels = np.array([p.label for p in pairs], dtype=np.float64)
    return left, right, labels


def train_matcher(
    representation: EntityRepresentationModel,
    task: ERTask,
    training_pairs: PairSet,
    config: Optional[MatcherConfig] = None,
    distance: str = "wasserstein",
    epochs: Optional[int] = None,
) -> SiameseMatcher:
    """Convenience constructor: build, initialise and train a matcher."""
    matcher = SiameseMatcher(
        arity=task.arity,
        vae_config=representation.config,
        config=config,
        distance=distance,
    ).initialize_from(representation)
    left, right, labels = pair_ir_arrays(representation, task, training_pairs)
    matcher.fit(left, right, labels, epochs=epochs)
    return matcher


def fit_matcher_with_threshold(
    representation: EntityRepresentationModel,
    task: ERTask,
    training_pairs: PairSet,
    validation_pairs: Optional[PairSet] = None,
    config: Optional[MatcherConfig] = None,
    distance: str = "wasserstein",
    store: Optional["EncodingStore"] = None,
    epochs: Optional[int] = None,
) -> Tuple[SiameseMatcher, float]:
    """Build, initialise and train a matcher, tuning its decision threshold.

    The single definition of the "train on the given pairs, then pick the
    F1-maximising threshold on validation (0.5 when there is none)" sequence
    shared by :meth:`repro.core.pipeline.VAER.fit_matcher`, the experiment
    harness and the benchmarks — so threshold selection cannot drift between
    entry points.  Returns ``(matcher, threshold)``.
    """
    from repro.eval.metrics import best_threshold

    matcher = SiameseMatcher(
        arity=task.arity,
        vae_config=representation.config,
        config=config,
        distance=distance,
    ).initialize_from(representation)
    left, right, labels = pair_ir_arrays(representation, task, training_pairs, store=store)
    matcher.fit(left, right, labels, epochs=epochs)
    threshold = 0.5
    if validation_pairs is not None and len(validation_pairs) > 0:
        v_left, v_right, v_labels = pair_ir_arrays(
            representation, task, validation_pairs, store=store
        )
        threshold = best_threshold(v_labels.astype(int), matcher.predict_proba(v_left, v_right))
    return matcher, threshold
