"""Distances between diagonal Gaussian entity representations.

The matcher (Figure 3) and the active-learning machinery reason about the
similarity of two tuples through distances between the per-attribute Gaussian
distributions produced by the encoder.  Equation 3 of the paper gives the
squared 2-Wasserstein distance between diagonal Gaussians; the Mahalanobis
variant is provided for the distance ablation mentioned in Section IV-A.

Two flavours are implemented: plain numpy functions (used by evaluation,
bootstrapping and sampling) and Tensor-graph versions (used inside the
matcher where gradients must flow back into the encoder).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor


# ----------------------------------------------------------------------
# numpy versions
# ----------------------------------------------------------------------
def wasserstein2_vector(mu_p: np.ndarray, sigma_p: np.ndarray, mu_q: np.ndarray, sigma_q: np.ndarray) -> np.ndarray:
    """Per-dimension contributions of W2^2 (Equation 3), not yet summed.

    All inputs broadcast; the output has the broadcast shape of the inputs.
    """
    return (mu_p - mu_q) ** 2 + (sigma_p - sigma_q) ** 2


def wasserstein2_squared(mu_p: np.ndarray, sigma_p: np.ndarray, mu_q: np.ndarray, sigma_q: np.ndarray) -> np.ndarray:
    """Squared 2-Wasserstein distance, summed over the last axis."""
    return wasserstein2_vector(mu_p, sigma_p, mu_q, sigma_q).sum(axis=-1)


def mahalanobis_squared(mu_p: np.ndarray, sigma_p: np.ndarray, mu_q: np.ndarray, sigma_q: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Symmetrised squared Mahalanobis distance between diagonal Gaussians.

    The difference of means is scaled by the average of the two diagonal
    covariances, giving a dimension-weighted alternative to W2 used in the
    paper's distance ablation.
    """
    variance = 0.5 * (sigma_p ** 2 + sigma_q ** 2) + epsilon
    return (((mu_p - mu_q) ** 2) / variance).sum(axis=-1)


def euclidean(mu_p: np.ndarray, mu_q: np.ndarray) -> np.ndarray:
    """Euclidean distance between means (the LSH surrogate of Section V-A)."""
    return np.sqrt(((mu_p - mu_q) ** 2).sum(axis=-1))


def tuple_wasserstein(mu_p: np.ndarray, sigma_p: np.ndarray, mu_q: np.ndarray, sigma_q: np.ndarray) -> float:
    """Tuple-level W2^2: mean of the per-attribute distances.

    Inputs have shape (arity, latent_dim); the result is a scalar summarising
    how far apart two complete tuples are in the latent space.  Used by
    Algorithm 1 to rank candidate pairs.
    """
    per_attribute = wasserstein2_squared(mu_p, sigma_p, mu_q, sigma_q)
    return float(np.mean(per_attribute))


# ----------------------------------------------------------------------
# Tensor (differentiable) versions
# ----------------------------------------------------------------------
def wasserstein2_vector_t(mu_p: Tensor, sigma_p: Tensor, mu_q: Tensor, sigma_q: Tensor) -> Tensor:
    """Differentiable per-dimension W2^2 contributions (the Distance layer)."""
    mu_diff = mu_p - mu_q
    sigma_diff = sigma_p - sigma_q
    return mu_diff * mu_diff + sigma_diff * sigma_diff


def wasserstein2_squared_t(mu_p: Tensor, sigma_p: Tensor, mu_q: Tensor, sigma_q: Tensor) -> Tensor:
    """Differentiable W2^2 summed over the last axis."""
    return wasserstein2_vector_t(mu_p, sigma_p, mu_q, sigma_q).sum(axis=-1)


def mahalanobis_vector_t(mu_p: Tensor, sigma_p: Tensor, mu_q: Tensor, sigma_q: Tensor, epsilon: float = 1e-6) -> Tensor:
    """Differentiable per-dimension Mahalanobis contributions."""
    mu_diff = mu_p - mu_q
    variance = (sigma_p * sigma_p + sigma_q * sigma_q) * 0.5 + epsilon
    return (mu_diff * mu_diff) / variance
