"""Transfer of representation models across ER tasks (Section III-D, VI-D).

Because the VAE operates on numeric IRs with shared parameters across
attributes, its weights are domain-agnostic: a model trained on one domain
can encode any other domain's IRs of the same dimensionality.  What must be
redone per task is only the (cheap, unsupervised) IR fitting.  The matcher,
however, consumes a concatenation of ``arity x latent_dim`` distance vectors,
so the paper restricts transferred *matching* to tasks projected to the
source arity — extra columns are dropped and missing ones padded.  Both rules
are implemented here.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

from repro.core.representation import EntityRepresentationModel
from repro.data.schema import ERTask
from repro.exceptions import ArityMismatchError


@dataclass
class TransferReport:
    """Book-keeping of one representation-model transfer."""

    source_domain: str
    target_domain: str
    source_arity: Optional[int]
    target_arity: int
    arity_adapted: bool


def transfer_representation(
    source: EntityRepresentationModel,
    target_task: ERTask,
) -> EntityRepresentationModel:
    """Reuse a trained representation model on a new task.

    The returned model shares the *trained VAE weights* of ``source`` (deep
    copied so later fine-tuning does not mutate the original) and carries a
    freshly fitted IR generator for the target task's corpus.  No VAE
    training happens, which is exactly the training-time saving measured in
    Section VI-D.
    """
    transferred = EntityRepresentationModel(
        config=copy.deepcopy(source.config),
        ir_method=source.ir_method,
    )
    transferred.vae.load_state_dict(source.vae.state_dict())
    transferred.refit_ir_only(target_task)
    return transferred


def adapt_task_arity(task: ERTask, target_arity: int) -> ERTask:
    """Project a task to the arity expected by a transferred matcher.

    Following Section VI-D: when the target task has more attributes than the
    transferred model expects, only the first ``target_arity`` columns are
    used; when it has fewer, empty padding columns are appended.
    """
    if target_arity <= 0:
        raise ArityMismatchError("target arity must be positive")
    if task.arity == target_arity:
        return task
    return task.project(target_arity)


def transfer_with_report(
    source: EntityRepresentationModel,
    source_domain: str,
    target_task: ERTask,
    matcher_arity: Optional[int] = None,
) -> tuple:
    """Transfer a representation model and, optionally, arity-adapt the task.

    Returns ``(transferred_model, adapted_task, report)``.  ``matcher_arity``
    is the arity the downstream matcher was (or will be) built for; when
    omitted, the task is left unchanged.
    """
    transferred = transfer_representation(source, target_task)
    adapted_task = target_task
    arity_adapted = False
    if matcher_arity is not None and matcher_arity != target_task.arity:
        adapted_task = adapt_task_arity(target_task, matcher_arity)
        transferred.refit_ir_only(adapted_task)
        arity_adapted = True
    report = TransferReport(
        source_domain=source_domain,
        target_domain=target_task.name,
        source_arity=matcher_arity,
        target_arity=target_task.arity,
        arity_adapted=arity_adapted,
    )
    return transferred, adapted_task, report
