"""The paper's core contribution: VAE representations, Siamese matching,
transfer learning and latent-space active learning."""

from repro.core.vae import GaussianEncoder, GaussianDecoder, VariationalAutoEncoder
from repro.core.representation import EntityEncoding, EntityRepresentationModel
from repro.core.distances import (
    wasserstein2_vector,
    wasserstein2_squared,
    mahalanobis_squared,
    euclidean,
    tuple_wasserstein,
    wasserstein2_vector_t,
    wasserstein2_squared_t,
    mahalanobis_vector_t,
)
from repro.core.matcher import (
    SiameseMatcher,
    fit_matcher_with_threshold,
    pair_ir_arrays,
    train_matcher,
)
from repro.core.transfer import (
    TransferReport,
    transfer_representation,
    adapt_task_arity,
    transfer_with_report,
)
from repro.core.pipeline import VAER, ResolutionResult

__all__ = [
    "GaussianEncoder",
    "GaussianDecoder",
    "VariationalAutoEncoder",
    "EntityEncoding",
    "EntityRepresentationModel",
    "wasserstein2_vector",
    "wasserstein2_squared",
    "mahalanobis_squared",
    "euclidean",
    "tuple_wasserstein",
    "wasserstein2_vector_t",
    "wasserstein2_squared_t",
    "mahalanobis_vector_t",
    "SiameseMatcher",
    "pair_ir_arrays",
    "fit_matcher_with_threshold",
    "train_matcher",
    "TransferReport",
    "transfer_representation",
    "adapt_task_arity",
    "transfer_with_report",
    "VAER",
    "ResolutionResult",
]
