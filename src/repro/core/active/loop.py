"""The iterative active-learning loop (Algorithm 2, outer structure).

:class:`ActiveLearningLoop` ties together the bootstrap (Algorithm 1), the
Siamese matcher and the latent-space sampler: every iteration it scores the
unlabeled pool under the current matcher, asks the oracle to label the
selected certain/uncertain positive/negative candidates, grows the labeled
pool and retrains the matcher.  The per-iteration test F1 trace reproduces
Figure 5; the final matcher after a fixed labeling budget reproduces the
"A250" column of Table VIII.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import ActiveLearningConfig, BlockingConfig, MatcherConfig
from repro.core.active.bootstrap import BootstrapResult, bootstrap_training_data
from repro.core.active.oracle import LabelingOracle
from repro.core.active.sampler import (
    EntropySampler,
    LatentSpaceSampler,
    RandomSampler,
    pair_latent_distances,
)
from repro.core.matcher import SiameseMatcher, pair_ir_arrays
from repro.core.representation import EntityRepresentationModel
from repro.data.pairs import LabeledPair, PairSet, RecordPair
from repro.data.schema import ERTask
from repro.engine.store import EncodingStore
from repro.eval.metrics import PRF, precision_recall_f1
from repro.exceptions import ActiveLearningError

STRATEGIES = ("vaer", "entropy", "random")


@dataclass
class ALIterationRecord:
    """Snapshot of the loop state after one iteration."""

    iteration: int
    labels_used: int
    labeled_positives: int
    labeled_negatives: int
    test_metrics: Optional[PRF] = None


@dataclass
class ALResult:
    """Final output of an active-learning run."""

    matcher: SiameseMatcher
    positives: PairSet
    negatives: PairSet
    bootstrap: BootstrapResult
    history: List[ALIterationRecord] = field(default_factory=list)

    @property
    def labels_used(self) -> int:
        return self.history[-1].labels_used if self.history else 0

    def labeled(self) -> PairSet:
        return self.positives.merge(self.negatives)

    def f1_trace(self) -> List[Tuple[int, float]]:
        """(labels used, test F1) series — the data behind Figure 5."""
        return [
            (record.labels_used, record.test_metrics.f1)
            for record in self.history
            if record.test_metrics is not None
        ]


class ActiveLearningLoop:
    """Runs bootstrapping plus iterative sampling / labeling / retraining.

    Parameters
    ----------
    task, representation:
        The ER task and its fitted (or transferred) representation model.
    oracle:
        Source of labels; its call count is the cost metric.
    config, matcher_config, blocking:
        Hyper-parameters (Table III defaults).
    strategy:
        ``"vaer"`` for the paper's sampler, ``"entropy"`` or ``"random"`` for
        the ablation baselines.
    test_pairs:
        Optional held-out labeled pairs evaluated after every iteration.
    verify_bootstrap_positives:
        Whether to drop false positives from the automatic seed set (the
        †-marked manual clean-up of Table VIII).
    store:
        Optional shared :class:`repro.engine.EncodingStore`; when omitted the
        loop creates its own.  Every featurisation in the loop — bootstrap
        distances, candidate scoring, retraining batches, test evaluation —
        gathers from this store, so each record is encoded exactly once per
        representation version regardless of how many pairs reference it.
    """

    def __init__(
        self,
        task: ERTask,
        representation: EntityRepresentationModel,
        oracle: LabelingOracle,
        config: Optional[ActiveLearningConfig] = None,
        matcher_config: Optional[MatcherConfig] = None,
        blocking: Optional[BlockingConfig] = None,
        strategy: str = "vaer",
        test_pairs: Optional[PairSet] = None,
        verify_bootstrap_positives: bool = True,
        store: Optional[EncodingStore] = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ActiveLearningError(f"unknown AL strategy {strategy!r}; expected one of {STRATEGIES}")
        self.task = task
        self.representation = representation
        self.oracle = oracle
        self.config = config or ActiveLearningConfig()
        self.matcher_config = matcher_config or MatcherConfig()
        self.blocking = blocking or BlockingConfig()
        self.strategy = strategy
        self.test_pairs = test_pairs
        self.verify_bootstrap_positives = verify_bootstrap_positives
        self._rng = np.random.default_rng(self.config.seed)
        self._sampler = LatentSpaceSampler(self.config)
        self._entropy_sampler = EntropySampler(self.config)
        self._random_sampler = RandomSampler(self.config, seed=self.config.seed)
        # All featurisation goes through the shared encoding store: records
        # are encoded once per table, pairs are index gathers into that cache
        # (candidate pools reference the same records many times over).
        self.store = store if store is not None else EncodingStore(representation, task)

    # ------------------------------------------------------------------
    # Pair featurisation via the encoding store
    # ------------------------------------------------------------------
    def _irs_for(self, pairs: Sequence[RecordPair]) -> Tuple[np.ndarray, np.ndarray]:
        return self.store.gather_pair_irs(pairs)

    def _train_matcher(self, labeled: PairSet, matcher: Optional[SiameseMatcher] = None) -> SiameseMatcher:
        """(Re)train the matcher on the current labeled pool.

        The first call builds a matcher whose encoder heads are initialised
        from the representation model; later calls warm-start from the
        previous iteration's weights, which is the "iteratively improved"
        behaviour described in Section II of the paper and keeps small-pool
        retraining stable.
        """
        if matcher is None:
            matcher = SiameseMatcher(
                arity=self.task.arity,
                vae_config=self.representation.config,
                config=self.matcher_config,
            ).initialize_from(self.representation)
        left, right, labels = pair_ir_arrays(self.representation, self.task, labeled, store=self.store)
        left, right, labels = self._rebalance(left, right, labels)
        matcher.fit(left, right, labels, epochs=self.config.retrain_epochs)
        return matcher

    @staticmethod
    def _rebalance(left: np.ndarray, right: np.ndarray, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Oversample the positive class when negatives dominate the pool.

        The sampler labels four candidate types per iteration but, as in the
        paper's datasets, most candidates turn out to be non-duplicates, so
        the labeled pool drifts towards negatives.  Retraining on a heavily
        imbalanced pool can collapse the matcher into the all-negative
        prediction; duplicating positive rows up to a 1:2 ratio keeps the
        gradient signal for the positive class alive without altering the
        labeled data itself.
        """
        positives = np.where(labels == 1)[0]
        negatives = np.where(labels == 0)[0]
        if len(positives) == 0 or len(negatives) <= 2 * len(positives):
            return left, right, labels
        repeats = int(np.ceil(len(negatives) / (2 * len(positives))))
        oversampled = np.concatenate([np.arange(len(labels))] + [positives] * (repeats - 1))
        return left[oversampled], right[oversampled], labels[oversampled]

    def _evaluate(self, matcher: SiameseMatcher) -> Optional[PRF]:
        if self.test_pairs is None or len(self.test_pairs) == 0:
            return None
        left, right, labels = pair_ir_arrays(
            self.representation, self.task, self.test_pairs, store=self.store
        )
        predictions = matcher.predict(left, right)
        return precision_recall_f1(labels.astype(int), predictions)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        iterations: Optional[int] = None,
        label_budget: Optional[int] = None,
    ) -> ALResult:
        """Execute the AL loop.

        The loop stops after ``iterations`` (default from the config), or as
        soon as ``label_budget`` oracle labels have been requested, or when
        the unlabeled pool is exhausted — whichever comes first.
        """
        iterations = iterations if iterations is not None else self.config.iterations

        bootstrap = bootstrap_training_data(
            self.task,
            self.representation,
            config=self.config,
            blocking=self.blocking,
            verify_positives=self.verify_bootstrap_positives,
            store=self.store,
        )
        positives = PairSet(bootstrap.positives.pairs())
        negatives = PairSet(bootstrap.negatives.pairs())
        unlabeled: List[RecordPair] = list(bootstrap.unlabeled)

        matcher = self._train_matcher(positives.merge(negatives))
        history: List[ALIterationRecord] = [
            ALIterationRecord(
                iteration=0,
                labels_used=self.oracle.labels_provided,
                labeled_positives=len(positives),
                labeled_negatives=len(negatives),
                test_metrics=self._evaluate(matcher),
            )
        ]

        # Latent distances of candidates are a property of the (frozen)
        # representation model, so they are computed once — a single
        # vectorized gather over the store's cached encodings.
        distances = pair_latent_distances(self.task, self.representation, unlabeled, store=self.store)
        distance_of = {pair.key(): float(d) for pair, d in zip(unlabeled, distances)}

        for iteration in range(1, iterations + 1):
            if not unlabeled:
                break
            if label_budget is not None and self.oracle.labels_provided >= label_budget:
                break

            selected = self._select_batch(matcher, positives, unlabeled, distance_of)
            if not selected:
                break
            if label_budget is not None:
                remaining = label_budget - self.oracle.labels_provided
                selected = selected[:max(0, remaining)]
                if not selected:
                    break

            newly_labeled: List[LabeledPair] = []
            for pair in selected:
                label = self.oracle.label(pair)
                newly_labeled.append(LabeledPair(pair.left_id, pair.right_id, label))
            selected_keys = {pair.key() for pair in selected}
            unlabeled = [pair for pair in unlabeled if pair.key() not in selected_keys]

            for labeled_pair in newly_labeled:
                (positives if labeled_pair.label == 1 else negatives).add(labeled_pair)

            matcher = self._train_matcher(positives.merge(negatives), matcher)
            history.append(
                ALIterationRecord(
                    iteration=iteration,
                    labels_used=self.oracle.labels_provided,
                    labeled_positives=len(positives),
                    labeled_negatives=len(negatives),
                    test_metrics=self._evaluate(matcher),
                )
            )

        return ALResult(
            matcher=matcher,
            positives=positives,
            negatives=negatives,
            bootstrap=bootstrap,
            history=history,
        )

    # ------------------------------------------------------------------
    def _select_batch(
        self,
        matcher: SiameseMatcher,
        positives: PairSet,
        unlabeled: List[RecordPair],
        distance_of: Dict[Tuple[str, str], float],
    ) -> List[RecordPair]:
        if self.strategy == "random":
            return self._random_sampler.select(unlabeled)

        left, right = self._irs_for(unlabeled)
        probabilities = matcher.predict_proba(left, right)

        if self.strategy == "entropy":
            return self._entropy_sampler.select(unlabeled, probabilities)

        kde = self._sampler.fit_positive_kde(self.task, self.representation, positives, rng=self._rng)
        distances = np.array([distance_of[pair.key()] for pair in unlabeled])
        selection = self._sampler.select(unlabeled, probabilities, distances, kde)
        return selection.all_pairs()
