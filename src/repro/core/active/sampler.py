"""Algorithm 2 of the paper: balanced, informative and diverse AL sampling.

Every iteration, the sampler scores each unlabeled candidate pair with three
ingredients:

* the match probability under the current matcher ``gamma`` (class balance:
  predicted positives and predicted negatives are sampled separately);
* the entropy of that probability (informativeness, Equation 5);
* the likelihood of the pair's latent distance under a KDE fitted on the
  distances between sampled latent codes of known duplicates
  (diversity, Equation 6).

Four candidate types are selected per iteration — certain positives, certain
negatives, uncertain positives and uncertain negatives — exactly following
lines 6-9 of Algorithm 2, generalised to batches by taking the top-k of each
score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import ActiveLearningConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.store import EncodingStore
from repro.core.active.kde import GaussianKDE
from repro.core.representation import EntityRepresentationModel
from repro.data.pairs import PairSet, RecordPair
from repro.data.schema import ERTask

_EPS = 1e-9


def entropy_of(probabilities: np.ndarray) -> np.ndarray:
    """Binary entropy of match probabilities (Equation 5)."""
    p = np.clip(np.asarray(probabilities, dtype=np.float64), _EPS, 1.0 - _EPS)
    return -(p * np.log(p) + (1.0 - p) * np.log(1.0 - p))


def duplicate_distance_samples(
    task: ERTask,
    representation: EntityRepresentationModel,
    positives: PairSet,
    samples_per_pair: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Equation 6: Euclidean distances between sampled latents of duplicates.

    For each labeled duplicate pair, ``samples_per_pair`` latent codes are
    drawn per attribute from both tuples' posteriors (the VAE's generative
    facility); the per-sample distance is the mean over attributes of the
    Euclidean distance between the two codes.  The pooled distances estimate
    the distribution ``D+`` from which the KDE is fitted.
    """
    rng = rng or np.random.default_rng()
    all_distances: List[np.ndarray] = []
    for pair in positives:
        left = task.left[pair.left_id]
        right = task.right[pair.right_id]
        z_left = representation.sample_record_latents(left, samples_per_pair, rng=rng)
        z_right = representation.sample_record_latents(right, samples_per_pair, rng=rng)
        # shape (arity, samples, latent) -> per-sample mean over attributes.
        per_attribute = np.sqrt(((z_left - z_right) ** 2).sum(axis=-1))
        all_distances.append(per_attribute.mean(axis=0))
    if not all_distances:
        return np.zeros(0)
    return np.concatenate(all_distances)


def pair_latent_distances(
    task: ERTask,
    representation: EntityRepresentationModel,
    pairs: Sequence[RecordPair],
    store: Optional["EncodingStore"] = None,
) -> np.ndarray:
    """Expected latent distance of each candidate pair (mean over attributes).

    Uses the posterior means, which is the expectation of the sampled
    distances of Equation 6 and keeps the candidate scoring deterministic.
    Scoring is a single gather-then-reduce over the table encodings held by
    an :class:`repro.engine.EncodingStore`; pass ``store`` to reuse encodings
    already cached by other pipeline stages.
    """
    if not pairs:
        return np.zeros(0)
    if store is None:
        from repro.engine.store import EncodingStore

        store = EncodingStore(representation, task)
    return store.pair_latent_distances(pairs)


def _pair_latent_distances_loop(
    task: ERTask,
    representation: EntityRepresentationModel,
    pairs: Sequence[RecordPair],
) -> np.ndarray:
    """Legacy per-pair reference implementation of :func:`pair_latent_distances`.

    Kept (unused by the pipeline) as the ground truth for the engine's
    equivalence tests and the throughput benchmark baseline.
    """
    if not pairs:
        return np.zeros(0)
    left_encoding = representation.encode_table(task.left)
    right_encoding = representation.encode_table(task.right)
    distances = np.zeros(len(pairs))
    for i, pair in enumerate(pairs):
        mu_s, _ = left_encoding.of(pair.left_id)
        mu_t, _ = right_encoding.of(pair.right_id)
        distances[i] = float(np.sqrt(((mu_s - mu_t) ** 2).sum(axis=-1)).mean())
    return distances


@dataclass
class SampleSelection:
    """The four candidate groups chosen in one AL iteration."""

    certain_positives: List[RecordPair]
    certain_negatives: List[RecordPair]
    uncertain_positives: List[RecordPair]
    uncertain_negatives: List[RecordPair]

    def all_pairs(self) -> List[RecordPair]:
        return (
            self.certain_positives
            + self.certain_negatives
            + self.uncertain_positives
            + self.uncertain_negatives
        )

    def __len__(self) -> int:
        return len(self.all_pairs())


class LatentSpaceSampler:
    """Scores and selects unlabeled candidates per Algorithm 2."""

    def __init__(self, config: Optional[ActiveLearningConfig] = None) -> None:
        self.config = config or ActiveLearningConfig()

    # ------------------------------------------------------------------
    def fit_positive_kde(
        self,
        task: ERTask,
        representation: EntityRepresentationModel,
        positives: PairSet,
        rng: Optional[np.random.Generator] = None,
    ) -> GaussianKDE:
        """KDE over duplicate latent distances (``f+`` in the paper)."""
        samples = duplicate_distance_samples(
            task, representation, positives,
            samples_per_pair=self.config.kde_samples_per_pair, rng=rng,
        )
        if samples.size == 0:
            # Degenerate but possible on tiny seed sets: fall back to a point
            # mass at zero so certain positives are still the closest pairs.
            samples = np.zeros(8)
        return GaussianKDE().fit(samples)

    # ------------------------------------------------------------------
    def select(
        self,
        pairs: Sequence[RecordPair],
        probabilities: np.ndarray,
        distances: np.ndarray,
        kde: GaussianKDE,
        per_category: Optional[int] = None,
    ) -> SampleSelection:
        """Choose the four candidate groups from scored unlabeled pairs.

        Parameters
        ----------
        pairs, probabilities, distances:
            Aligned candidate pool, match probabilities under the current
            matcher and latent distances.
        kde:
            Density of duplicate distances (``f+``).
        per_category:
            Batch size per candidate type; defaults to a quarter of
            ``samples_per_iteration``.
        """
        if per_category is None:
            per_category = max(1, self.config.samples_per_iteration // 4)
        pairs = list(pairs)
        probabilities = np.asarray(probabilities, dtype=np.float64)
        distances = np.asarray(distances, dtype=np.float64)
        if len(pairs) != probabilities.shape[0] or len(pairs) != distances.shape[0]:
            raise ValueError("pairs, probabilities and distances must align")
        if not pairs:
            return SampleSelection([], [], [], [])

        entropy = entropy_of(probabilities)
        likelihood = np.maximum(kde.evaluate(distances), _EPS)
        predicted_positive = probabilities > 0.5

        # Scores follow lines 6-9 of Algorithm 2 (all are minimised).
        score_certain_pos = entropy / likelihood
        score_certain_neg = entropy * likelihood
        score_uncertain_pos = likelihood / np.maximum(entropy, _EPS)
        score_uncertain_neg = 1.0 / (np.maximum(entropy, _EPS) * likelihood)

        taken: set = set()

        def top(mask: np.ndarray, scores: np.ndarray) -> List[RecordPair]:
            selected: List[RecordPair] = []
            candidate_indices = np.where(mask)[0]
            if candidate_indices.size == 0:
                return selected
            order = candidate_indices[np.argsort(scores[candidate_indices])]
            for index in order:
                if index in taken:
                    continue
                taken.add(int(index))
                selected.append(pairs[int(index)])
                if len(selected) >= per_category:
                    break
            return selected

        return SampleSelection(
            certain_positives=top(predicted_positive, score_certain_pos),
            certain_negatives=top(~predicted_positive, score_certain_neg),
            uncertain_positives=top(predicted_positive, score_uncertain_pos),
            uncertain_negatives=top(~predicted_positive, score_uncertain_neg),
        )


class RandomSampler:
    """Baseline sampler drawing unlabeled pairs uniformly (AL ablation)."""

    def __init__(self, config: Optional[ActiveLearningConfig] = None, seed: int = 61) -> None:
        self.config = config or ActiveLearningConfig()
        self._rng = np.random.default_rng(seed)

    def select(self, pairs: Sequence[RecordPair], batch_size: Optional[int] = None) -> List[RecordPair]:
        pairs = list(pairs)
        batch_size = batch_size or self.config.samples_per_iteration
        if not pairs:
            return []
        count = min(batch_size, len(pairs))
        indices = self._rng.choice(len(pairs), size=count, replace=False)
        return [pairs[int(i)] for i in indices]


class EntropySampler:
    """Baseline sampler using entropy only (AL ablation: no diversity/balance)."""

    def __init__(self, config: Optional[ActiveLearningConfig] = None) -> None:
        self.config = config or ActiveLearningConfig()

    def select(
        self,
        pairs: Sequence[RecordPair],
        probabilities: np.ndarray,
        batch_size: Optional[int] = None,
    ) -> List[RecordPair]:
        pairs = list(pairs)
        batch_size = batch_size or self.config.samples_per_iteration
        if not pairs:
            return []
        entropy = entropy_of(probabilities)
        order = np.argsort(-entropy)
        return [pairs[int(i)] for i in order[:batch_size]]
