"""Algorithm 1 of the paper: bootstrapping initial training data.

Given the unsupervised representation model, the bootstrap builds the
unlabeled candidate pool ``U`` by LSH top-K nearest-neighbour search in the
latent space (the Euclidean distance over means is a surrogate for the
2-Wasserstein distance, as observed in Section V-A), then automatically
labels the candidate pairs with the smallest tuple distances as positives
(``L+``) and those with the largest as negatives (``L-``).

As in the paper, automatically selected positives can contain false
positives; ``verify_positives`` reproduces the manual clean-up step the
authors apply to the †-marked domains of Table VIII.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.blocking.neighbours import NearestNeighbourSearch
from repro.config import ActiveLearningConfig, BlockingConfig
from repro.core.representation import EntityRepresentationModel
from repro.data.pairs import LabeledPair, PairSet, RecordPair
from repro.data.schema import ERTask
from repro.exceptions import ActiveLearningError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.store import EncodingStore

PairKey = Tuple[str, str]


@dataclass
class BootstrapResult:
    """Output of Algorithm 1: automatic seed labels plus the unlabeled pool."""

    positives: PairSet
    negatives: PairSet
    unlabeled: List[RecordPair]
    distances: Dict[PairKey, float] = field(default_factory=dict)
    false_positives_removed: int = 0

    def labeled(self) -> PairSet:
        """L+ ∪ L- as a single pair set."""
        return self.positives.merge(self.negatives)

    def summary(self) -> str:
        return (
            f"bootstrap: {len(self.positives)} positives, {len(self.negatives)} negatives, "
            f"{len(self.unlabeled)} unlabeled candidates"
            + (f", {self.false_positives_removed} false positives removed" if self.false_positives_removed else "")
        )


def bootstrap_training_data(
    task: ERTask,
    representation: EntityRepresentationModel,
    config: Optional[ActiveLearningConfig] = None,
    blocking: Optional[BlockingConfig] = None,
    verify_positives: bool = False,
    store: Optional["EncodingStore"] = None,
) -> BootstrapResult:
    """Run Algorithm 1 and return seed labels plus the candidate pool.

    Parameters
    ----------
    task:
        The ER task (two aligned tables).
    representation:
        A fitted :class:`EntityRepresentationModel` (``phi`` in the paper).
    config:
        Active-learning configuration (``K`` neighbours, seed-set sizes).
    blocking:
        LSH configuration used for the nearest-neighbour search.
    verify_positives:
        When true, automatically selected positives are checked against the
        ground truth and false positives dropped — the manual clean-up the
        paper applies to the †-marked domains of Table VIII.
    store:
        Optional shared :class:`repro.engine.EncodingStore`; table encodings
        and candidate distances are pulled from / computed through it (one
        batched pass) instead of re-encoding both tables here.
    """
    config = config or ActiveLearningConfig()
    if store is None:
        from repro.engine.store import EncodingStore

        store = EncodingStore(representation, task)
    left, right = store.entity_encoding("left"), store.entity_encoding("right")
    if len(left) == 0 or len(right) == 0:
        raise ActiveLearningError("cannot bootstrap on an empty table")

    # Lines 3-10: build U from LSH top-K neighbours of every left record.
    search = NearestNeighbourSearch.from_store(store, config=blocking)
    neighbour_map = search.neighbour_map(left.flat_mu(), left.keys, k=config.top_neighbours)

    candidate_keys: List[PairKey] = []
    seen: set = set()
    for left_id, neighbours in neighbour_map.items():
        for right_id in neighbours:
            key = (str(left_id), str(right_id))
            if key in seen:
                continue
            seen.add(key)
            candidate_keys.append(key)

    if not candidate_keys:
        raise ActiveLearningError("LSH search produced no candidate pairs")

    # Lines 11-15 ranking statistic: tuple-level W2^2, one vectorized gather
    # over the cached encodings instead of a per-pair loop.
    candidate_pairs = [RecordPair(l, r) for l, r in candidate_keys]
    tuple_distances = store.pair_tuple_wasserstein(candidate_pairs)
    distances: Dict[PairKey, float] = {
        key: float(d) for key, d in zip(candidate_keys, tuple_distances)
    }

    # Lines 11-15: pairs closest to the minimum distance become L+, pairs
    # closest to the maximum become L-.
    ordered = sorted(distances.items(), key=lambda item: item[1])
    num_pos = min(config.bootstrap_positives, max(1, len(ordered) // 4))
    num_neg = min(config.bootstrap_negatives, max(1, len(ordered) // 4))

    positive_keys = [key for key, _ in ordered[:num_pos]]
    negative_keys = [key for key, _ in ordered[-num_neg:]]

    false_positives = 0
    positives = PairSet()
    for left_id, right_id in positive_keys:
        if verify_positives and not task.true_match(left_id, right_id):
            false_positives += 1
            continue
        positives.add(LabeledPair(left_id, right_id, 1))
    negatives = PairSet(LabeledPair(l, r, 0) for l, r in negative_keys)

    labeled_keys = set(positive_keys) | set(negative_keys)
    unlabeled = [RecordPair(l, r) for (l, r) in distances if (l, r) not in labeled_keys]

    return BootstrapResult(
        positives=positives,
        negatives=negatives,
        unlabeled=unlabeled,
        distances=distances,
        false_positives_removed=false_positives,
    )
