"""Active learning in the latent space (Section V of the paper)."""

from repro.core.active.kde import GaussianKDE
from repro.core.active.oracle import (
    LabelingOracle,
    GroundTruthOracle,
    NoisyOracle,
    BudgetedOracle,
)
from repro.core.active.bootstrap import BootstrapResult, bootstrap_training_data
from repro.core.active.sampler import (
    LatentSpaceSampler,
    RandomSampler,
    EntropySampler,
    SampleSelection,
    entropy_of,
    duplicate_distance_samples,
    pair_latent_distances,
)
from repro.core.active.loop import ActiveLearningLoop, ALResult, ALIterationRecord, STRATEGIES

__all__ = [
    "GaussianKDE",
    "LabelingOracle",
    "GroundTruthOracle",
    "NoisyOracle",
    "BudgetedOracle",
    "BootstrapResult",
    "bootstrap_training_data",
    "LatentSpaceSampler",
    "RandomSampler",
    "EntropySampler",
    "SampleSelection",
    "entropy_of",
    "duplicate_distance_samples",
    "pair_latent_distances",
    "ActiveLearningLoop",
    "ALResult",
    "ALIterationRecord",
    "STRATEGIES",
]
