"""Univariate Gaussian Kernel Density Estimation.

The diversity property of the active-learning sampler (Section V-B3) relies
on a KDE over the distribution of Euclidean distances between latent samples
of known duplicates (Equation 6).  This is a from-scratch implementation with
Silverman's rule-of-thumb bandwidth so the repo does not depend on
``scipy.stats`` internals; it is validated against direct computation in the
test suite.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.exceptions import NotFittedError


class GaussianKDE:
    """Kernel density estimator with Gaussian kernels over 1-d samples."""

    def __init__(self, bandwidth: Optional[float] = None) -> None:
        self.bandwidth = bandwidth
        self._samples: Optional[np.ndarray] = None
        self._bandwidth: Optional[float] = None

    # ------------------------------------------------------------------
    def fit(self, samples: Iterable[float]) -> "GaussianKDE":
        samples = np.asarray(list(samples), dtype=np.float64)
        if samples.size == 0:
            raise ValueError("cannot fit a KDE on zero samples")
        self._samples = samples
        self._bandwidth = self.bandwidth or self._silverman_bandwidth(samples)
        return self

    @staticmethod
    def _silverman_bandwidth(samples: np.ndarray) -> float:
        """Silverman's rule of thumb, robust to zero spread."""
        n = samples.size
        std = float(np.std(samples))
        iqr = float(np.subtract(*np.percentile(samples, [75, 25])))
        spread = min(std, iqr / 1.349) if iqr > 0 else std
        if spread <= 0:
            spread = max(abs(float(np.mean(samples))) * 0.1, 1e-3)
        return 0.9 * spread * n ** (-0.2)

    # ------------------------------------------------------------------
    def evaluate(self, points) -> np.ndarray:
        """Density estimate at each point (vectorised)."""
        if self._samples is None or self._bandwidth is None:
            raise NotFittedError("GaussianKDE.evaluate called before fit")
        points = np.atleast_1d(np.asarray(points, dtype=np.float64))
        # (n_points, n_samples) matrix of standardised differences.
        z = (points[:, None] - self._samples[None, :]) / self._bandwidth
        kernel = np.exp(-0.5 * z ** 2) / np.sqrt(2.0 * np.pi)
        return kernel.mean(axis=1) / self._bandwidth

    def __call__(self, points) -> np.ndarray:
        return self.evaluate(points)

    def likelihood(self, point: float, floor: float = 1e-9) -> float:
        """Scalar density with a numerical floor (used in score ratios)."""
        return float(max(self.evaluate([point])[0], floor))

    @property
    def fitted_bandwidth(self) -> float:
        if self._bandwidth is None:
            raise NotFittedError("GaussianKDE has not been fitted")
        return self._bandwidth
