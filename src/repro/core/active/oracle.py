"""Labeling oracles for the active-learning loop.

The paper's AL experiments measure how many *user-provided* labels are needed
to reach a given F1.  In this reproduction the user is simulated by an oracle
that reveals the ground-truth label of a requested pair; a noisy variant
supports robustness experiments where the simulated user sometimes errs.
Every oracle counts how many labels it has been asked for, which is the cost
metric reported in Table VIII.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple

import numpy as np

from repro.data.pairs import RecordPair
from repro.data.schema import ERTask


class LabelingOracle(Protocol):
    """Interface of anything able to label a candidate pair on request."""

    def label(self, pair: RecordPair) -> int:
        """Return 1 for duplicate, 0 for non-duplicate."""
        ...

    @property
    def labels_provided(self) -> int:
        """How many labels have been requested so far."""
        ...


class GroundTruthOracle:
    """Perfect oracle backed by the hidden entity ids of a synthetic task."""

    def __init__(self, task: ERTask) -> None:
        self._task = task
        self._count = 0

    def label(self, pair: RecordPair) -> int:
        self._count += 1
        return int(self._task.true_match(pair.left_id, pair.right_id))

    @property
    def labels_provided(self) -> int:
        return self._count

    def reset(self) -> None:
        self._count = 0


class NoisyOracle:
    """Oracle that flips the true label with a fixed probability.

    Models an imperfect human annotator; used in robustness tests of the AL
    loop rather than in the headline reproduction.
    """

    def __init__(self, task: ERTask, flip_probability: float = 0.05, seed: int = 53) -> None:
        if not 0.0 <= flip_probability < 0.5:
            raise ValueError("flip_probability must be in [0, 0.5)")
        self._inner = GroundTruthOracle(task)
        self.flip_probability = flip_probability
        self._rng = np.random.default_rng(seed)

    def label(self, pair: RecordPair) -> int:
        true_label = self._inner.label(pair)
        if self._rng.random() < self.flip_probability:
            return 1 - true_label
        return true_label

    @property
    def labels_provided(self) -> int:
        return self._inner.labels_provided


class BudgetedOracle:
    """Wrapper enforcing a hard labeling budget.

    Raises ``RuntimeError`` once the budget is exhausted; the AL loop uses it
    to guarantee that the "A250" configuration of Table VIII really asked for
    at most 250 labels.
    """

    def __init__(self, oracle: LabelingOracle, budget: int) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        self._oracle = oracle
        self.budget = budget

    def label(self, pair: RecordPair) -> int:
        if self._oracle.labels_provided >= self.budget:
            raise RuntimeError(f"labeling budget of {self.budget} exhausted")
        return self._oracle.label(pair)

    @property
    def labels_provided(self) -> int:
        return self._oracle.labels_provided

    @property
    def remaining(self) -> int:
        return max(0, self.budget - self._oracle.labels_provided)
