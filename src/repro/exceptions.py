"""Exception hierarchy for the VAER reproduction."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is inconsistent or incomplete."""


class SchemaError(ReproError):
    """Raised when tables or pair sets violate the expected relational schema."""


class NotFittedError(ReproError):
    """Raised when a model is used before it has been trained."""


class ArityMismatchError(ReproError):
    """Raised when a transferred representation model meets an incompatible arity."""


class ActiveLearningError(ReproError):
    """Raised when the active-learning loop cannot make progress."""


class StaleEncodingError(ReproError):
    """Raised when cached encodings are invalidated while still being consumed.

    Streaming and sharded resolution pin the representation model's
    ``encoding_version`` when they start; if the model is refit or transferred
    mid-stream, continuing would silently mix scores from two different
    encoders, so the stream fails loudly instead.
    """
