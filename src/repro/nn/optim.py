"""Gradient-descent optimisers for the numpy neural-network library.

The paper trains both the representation VAE and the Siamese matcher with
Adam at a learning rate of 0.001 (Table III); SGD with momentum is included
for ablations and the simpler baselines.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding the parameter list and the shared ``zero_grad``."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) — the paper's default (Table III)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step
        bias_correction2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (grad * grad)
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.epsilon)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Rescale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping; parameters whose gradient is ``None``
    are skipped.
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
