"""Persist and restore model weights.

The transferability experiments (Section VI-D of the paper) hinge on saving a
representation model trained on one domain and loading it for another; these
helpers provide the ``.npz``-based mechanism used throughout the repo.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.nn.module import Module

PathLike = Union[str, Path]

_META_KEY = "__repro_meta__"


def save_state_dict(state: Dict[str, np.ndarray], path: PathLike, metadata: Optional[Dict[str, Any]] = None) -> None:
    """Write a ``state_dict`` (plus optional JSON-serialisable metadata) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(state)
    if metadata is not None:
        payload[_META_KEY] = np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **payload)


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a ``state_dict`` previously written by :func:`save_state_dict`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files if key != _META_KEY}


def load_metadata(path: PathLike) -> Optional[Dict[str, Any]]:
    """Return the metadata stored alongside a saved model, if any."""
    with np.load(Path(path), allow_pickle=False) as archive:
        if _META_KEY not in archive.files:
            return None
        raw = archive[_META_KEY].tobytes().decode("utf-8")
        return json.loads(raw)


def save_module(module: Module, path: PathLike, metadata: Optional[Dict[str, Any]] = None) -> None:
    """Save the weights of ``module`` to ``path``."""
    save_state_dict(module.state_dict(), path, metadata=metadata)


def load_module(module: Module, path: PathLike, strict: bool = True) -> Module:
    """Load weights into an already-constructed ``module`` and return it."""
    module.load_state_dict(load_state_dict(path), strict=strict)
    return module
