"""Generic training utilities: mini-batch iteration, early stopping, history.

The representation model, the Siamese matcher and the baselines all train
through :class:`Trainer`, which keeps the training loops across the repo
consistent and the per-epoch loss history available to the benchmarks that
report training behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Module
from repro.nn.optim import Optimizer, clip_grad_norm


def batch_indices(
    n: int,
    batch_size: int,
    shuffle: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches of ``batch_size``."""
    if n <= 0:
        return
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(n)
    if shuffle:
        rng = rng or np.random.default_rng()
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        yield order[start:start + batch_size]


def iterate_minibatches(
    arrays: Sequence[np.ndarray],
    batch_size: int,
    shuffle: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Tuple[np.ndarray, ...]]:
    """Yield aligned batches from several arrays with the same leading dim."""
    if not arrays:
        return
    n = len(arrays[0])
    for array in arrays[1:]:
        if len(array) != n:
            raise ValueError("all arrays must have the same number of rows")
    for idx in batch_indices(n, batch_size, shuffle=shuffle, rng=rng):
        yield tuple(array[idx] for array in arrays)


@dataclass
class EarlyStopping:
    """Stop training when the monitored loss stops improving.

    Parameters
    ----------
    patience:
        Number of epochs without improvement tolerated before stopping.
    min_delta:
        Minimum decrease in the monitored value to count as an improvement.
    """

    patience: int = 5
    min_delta: float = 1e-4
    best: float = field(default=float("inf"), init=False)
    epochs_without_improvement: int = field(default=0, init=False)

    def update(self, value: float) -> bool:
        """Record ``value``; return ``True`` when training should stop."""
        if value < self.best - self.min_delta:
            self.best = value
            self.epochs_without_improvement = 0
            return False
        self.epochs_without_improvement += 1
        return self.epochs_without_improvement >= self.patience


@dataclass
class TrainingHistory:
    """Per-epoch record of losses, used for reporting and testing convergence."""

    epoch_losses: List[float] = field(default_factory=list)
    extra: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, loss: float, **extras: float) -> None:
        self.epoch_losses.append(float(loss))
        for key, value in extras.items():
            self.extra.setdefault(key, []).append(float(value))

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("history is empty")
        return self.epoch_losses[-1]

    @property
    def initial_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("history is empty")
        return self.epoch_losses[0]

    def improved(self) -> bool:
        """Whether the loss at the end of training beats the first epoch."""
        return len(self.epoch_losses) >= 2 and self.final_loss < self.initial_loss


class Trainer:
    """Drives mini-batch training of a module given a batch-loss callback.

    Parameters
    ----------
    module:
        The model being optimised (used to toggle train/eval mode and clear
        gradients).
    optimizer:
        Any :class:`repro.nn.optim.Optimizer`.
    loss_fn:
        Callback mapping a tuple of numpy batches to a scalar loss Tensor.
    batch_size:
        Mini-batch size.
    max_epochs:
        Upper bound on training epochs.
    grad_clip:
        Optional global-norm gradient clipping threshold.
    early_stopping:
        Optional :class:`EarlyStopping` monitor on the epoch training loss.
    rng:
        Random generator controlling batch shuffling.
    """

    def __init__(
        self,
        module: Module,
        optimizer: Optimizer,
        loss_fn: Callable[..., "object"],
        batch_size: int = 32,
        max_epochs: int = 20,
        grad_clip: Optional[float] = 5.0,
        early_stopping: Optional[EarlyStopping] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.module = module
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.grad_clip = grad_clip
        self.early_stopping = early_stopping
        self.rng = rng or np.random.default_rng()

    def fit(self, *arrays: np.ndarray) -> TrainingHistory:
        """Train on the given aligned arrays and return the loss history."""
        history = TrainingHistory()
        self.module.train()
        for _ in range(self.max_epochs):
            epoch_loss = 0.0
            batches = 0
            for batch in iterate_minibatches(arrays, self.batch_size, rng=self.rng):
                self.optimizer.zero_grad()
                loss = self.loss_fn(*batch)
                loss.backward()
                if self.grad_clip is not None:
                    clip_grad_norm(self.module.parameters(), self.grad_clip)
                self.optimizer.step()
                epoch_loss += float(loss.data)
                batches += 1
            if batches == 0:
                break
            mean_loss = epoch_loss / batches
            history.record(mean_loss)
            if self.early_stopping is not None and self.early_stopping.update(mean_loss):
                break
        self.module.eval()
        return history
