"""Weight initialisation schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

from typing import Optional

import numpy as np


def xavier_uniform(fan_in: int, fan_out: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation, suited to tanh/sigmoid layers."""
    rng = rng or np.random.default_rng()
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He normal initialisation, suited to ReLU layers."""
    rng = rng or np.random.default_rng()
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(shape)


def normal(shape, std: float = 0.01, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Small-variance normal initialisation (used for embedding tables)."""
    rng = rng or np.random.default_rng()
    return rng.normal(0.0, std, size=shape)
