"""Minimal neural-network library over :mod:`repro.autograd`.

Provides the layers, losses, optimisers and training utilities needed by the
paper's models (the per-attribute VAE, the Siamese matcher) and the deep
baselines (DeepER-, DeepMatcher- and DITTO-style matchers).
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Linear, ReLU, Sigmoid, Tanh, Dropout, Sequential, MLP
from repro.nn.losses import (
    mse_loss,
    sum_squared_error,
    binary_cross_entropy,
    binary_cross_entropy_with_logits,
    gaussian_kl_divergence,
    contrastive_loss,
)
from repro.nn.optim import Optimizer, SGD, Adam, clip_grad_norm
from repro.nn.train import (
    Trainer,
    TrainingHistory,
    EarlyStopping,
    batch_indices,
    iterate_minibatches,
)
from repro.nn.serialization import (
    save_state_dict,
    load_state_dict,
    load_metadata,
    save_module,
    load_module,
)

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Sequential",
    "MLP",
    "mse_loss",
    "sum_squared_error",
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "gaussian_kl_divergence",
    "contrastive_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "Trainer",
    "TrainingHistory",
    "EarlyStopping",
    "batch_indices",
    "iterate_minibatches",
    "save_state_dict",
    "load_state_dict",
    "load_metadata",
    "save_module",
    "load_module",
]
