"""Neural network layers built on the autograd engine.

Only the layer types actually needed by the paper's architectures are
provided: dense layers with optional non-linearity, dropout, and a
``Sequential`` container.  The VAE-specific Gaussian head lives in
:mod:`repro.core.vae` because its reparameterisation behaviour is part of the
paper's contribution rather than generic library code.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.autograd import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine transformation ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to learn an additive bias term.
    activation:
        Initialisation hint: ``"relu"`` selects He initialisation, anything
        else uses Xavier.
    rng:
        Random generator used for reproducible weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        activation: str = "relu",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        if activation == "relu":
            weight = init.he_normal(in_features, out_features, rng=rng)
        else:
            weight = init.xavier_uniform(in_features, out_features, rng=rng)
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(init.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features} -> {self.out_features})"


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout; active only while the module is in training mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = self._rng.binomial(1, keep, size=x.shape) / keep
        return x * Tensor(mask)


class Sequential(Module):
    """Run child modules in order, feeding each output into the next layer."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers: List[Module] = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def append(self, module: Module) -> "Sequential":
        self.layers.append(module)
        return self

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class MLP(Module):
    """Multi-layer perceptron with a configurable stack of hidden layers.

    This is the classifier architecture used by the matching layer of the
    Siamese model (Section IV-A: a two-layer MLP with non-linear activations)
    and by the deep baselines.
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Iterable[int],
        out_features: int,
        activation: Callable[[], Module] = ReLU,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        sizes = [in_features, *hidden_sizes]
        layers: List[Module] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            layers.append(Linear(fan_in, fan_out, rng=rng))
            layers.append(activation())
            if dropout > 0.0:
                layers.append(Dropout(dropout, rng=rng))
        layers.append(Linear(sizes[-1], out_features, activation="linear", rng=rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
