"""Module and parameter abstractions for the numpy neural-network library.

``Module`` mirrors the familiar PyTorch contract: parameters are discovered
recursively through attributes, ``state_dict``/``load_state_dict`` move
weights in and out (used by the transferability experiments of the paper),
and ``train``/``eval`` toggle behaviour of stochastic layers such as dropout
and the VAE sampling layer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autograd import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable weight of a module."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network components.

    Subclasses implement :meth:`forward`; parameters and child modules are
    discovered automatically by inspecting instance attributes, so a subclass
    simply assigns ``self.linear = Linear(...)`` or
    ``self.weight = Parameter(...)`` in its ``__init__``.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs, recursing into child modules."""
        for attr, value in vars(self).items():
            if attr == "training":
                continue
            full_name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full_name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{i}.")

    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(name, module)`` pairs including ``self``."""
        yield prefix.rstrip("."), self
        for attr, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.named_modules(prefix=f"{prefix}{attr}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(prefix=f"{prefix}{attr}.{i}.")

    def num_parameters(self) -> int:
        """Total number of scalar weights (useful for model-size reporting)."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------
    # Training mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode on this module and every child module."""
        for _, module in self.named_modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode (disables dropout, deterministic VAE)."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Gradient management
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # State dict (weight transfer / persistence)
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return a name → array copy of every parameter."""
        return OrderedDict((name, param.data.copy()) for name, param in self.named_parameters())

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load weights produced by :meth:`state_dict`.

        Parameters
        ----------
        state:
            Mapping of parameter name to numpy array.
        strict:
            When true, every parameter must be present in ``state`` and have a
            matching shape; otherwise missing entries are silently skipped.
        """
        own = dict(self.named_parameters())
        if strict:
            missing = sorted(set(own) - set(state))
            unexpected = sorted(set(state) - set(own))
            if missing or unexpected:
                raise KeyError(
                    f"state_dict mismatch: missing={missing}, unexpected={unexpected}"
                )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter {name!r}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    def copy_weights_from(self, other: "Module") -> None:
        """Copy weights from a module with an identical parameter layout."""
        self.load_state_dict(other.state_dict())
