"""Loss functions used across the reproduction.

The VAE objective (Equation 2 of the paper) combines a reconstruction term
with a KL divergence to the standard normal prior; the matcher objective
(Equation 4) combines binary cross-entropy with a contrastive margin term.
Both are assembled from the primitives in this module.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over every element."""
    diff = prediction - target
    return (diff * diff).mean()


def sum_squared_error(prediction: Tensor, target: Tensor) -> Tensor:
    """Summed squared error per example, averaged over the batch.

    This is the Gaussian log-likelihood reconstruction term used for the VAE:
    with a unit-variance Gaussian decoder, ``-log p(x|z)`` is proportional to
    the squared error summed over feature dimensions.
    """
    diff = prediction - target
    per_example = (diff * diff).sum(axis=-1)
    return per_example.mean()


def binary_cross_entropy(probabilities: Tensor, targets: Tensor, epsilon: float = 1e-7) -> Tensor:
    """Binary cross-entropy for probabilities already passed through sigmoid."""
    probs = probabilities.clip(epsilon, 1.0 - epsilon)
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    loss = -(targets * probs.log() + (1.0 - targets) * (1.0 - probs).log())
    return loss.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: Tensor) -> Tensor:
    """Numerically stable BCE computed directly from logits.

    Uses the identity ``BCE(z, y) = max(z, 0) - z * y + softplus(-|z|)``.
    """
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    positive_part = logits.maximum(Tensor(np.zeros(logits.shape)))
    loss = positive_part - logits * targets + (-(logits.abs())).softplus()
    return loss.mean()


def gaussian_kl_divergence(mu: Tensor, log_var: Tensor) -> Tensor:
    """KL( N(mu, sigma^2) || N(0, I) ) for diagonal Gaussians.

    Equation 2 of the paper, analytic form::

        KL = -0.5 * sum(1 + log sigma^2 - mu^2 - sigma^2)

    The sum runs over the latent dimensions; the result is averaged over the
    batch so it can be added directly to a per-example reconstruction loss.
    """
    kl_per_example = -0.5 * (1.0 + log_var - mu * mu - log_var.exp()).sum(axis=-1)
    return kl_per_example.mean()


def contrastive_loss(distances: Tensor, labels: Tensor, margin: float) -> Tensor:
    """Contrastive loss over pairwise distances (second term of Equation 4).

    Duplicate pairs (label 1) are pulled together by minimising their
    distance; non-duplicate pairs (label 0) are pushed apart until the margin
    ``M`` is reached, after which no further effort is spent on them.
    """
    labels = labels if isinstance(labels, Tensor) else Tensor(labels)
    zeros = Tensor(np.zeros(distances.shape))
    margin_term = (Tensor(np.full(distances.shape, margin)) - distances).maximum(zeros)
    loss = labels * distances + (1.0 - labels) * margin_term
    return loss.mean()
