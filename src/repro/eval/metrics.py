"""Evaluation metrics: precision, recall, F1 and recall@K.

Definitions follow Section VI-A2 of the paper: a true positive is a pair
labeled duplicate in both the test set and the prediction; a false positive
is predicted duplicate but labeled non-duplicate; a false negative is labeled
duplicate but predicted non-duplicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float
    f1: float

    def as_dict(self) -> Dict[str, float]:
        return {"precision": self.precision, "recall": self.recall, "f1": self.f1}

    def __str__(self) -> str:
        return f"P={self.precision:.2f} R={self.recall:.2f} F1={self.f1:.2f}"


def precision_recall_f1(true_labels: Sequence[int], predicted_labels: Sequence[int]) -> PRF:
    """Compute P/R/F1 from aligned binary label arrays."""
    truth = np.asarray(true_labels, dtype=np.int64)
    predicted = np.asarray(predicted_labels, dtype=np.int64)
    if truth.shape != predicted.shape:
        raise ValueError("true and predicted labels must have the same length")
    tp = int(np.sum((truth == 1) & (predicted == 1)))
    fp = int(np.sum((truth == 0) & (predicted == 1)))
    fn = int(np.sum((truth == 1) & (predicted == 0)))
    precision = tp / (tp + fp) if (tp + fp) > 0 else 0.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) > 0 else 0.0
    return PRF(precision=precision, recall=recall, f1=f1)


def best_threshold(
    true_labels: Sequence[int],
    probabilities: Sequence[float],
    grid: Optional[Iterable[float]] = None,
) -> float:
    """F1-maximising decision threshold, typically tuned on a validation set."""
    truth = np.asarray(true_labels, dtype=np.int64)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if grid is None:
        grid = np.linspace(0.1, 0.9, 17)
    best, best_f1 = 0.5, -1.0
    for threshold in grid:
        prf = precision_recall_f1(truth, (probabilities > threshold).astype(np.int64))
        if prf.f1 > best_f1:
            best, best_f1 = float(threshold), prf.f1
    return best


def neighbour_prf_at_k(
    neighbour_map: Mapping[str, Sequence[str]],
    test_positives: Iterable,
    k: int,
) -> PRF:
    """P/R/F1 @ K for nearest-neighbour search (Table IV protocol).

    ``neighbour_map`` maps each left-record id to its retrieved right-record
    ids; ``test_positives`` is an iterable of labeled duplicate pairs (only
    pairs with label 1 are considered).  For each test duplicate, the pair
    counts as retrieved (a true positive) when the right record appears among
    the top-K neighbours of the left record; the precision denominator counts
    all retrieved slots for queried records, matching the "measure against
    the top-10 most similar neighbours of either tuple" protocol.
    """
    positives = [pair for pair in test_positives if getattr(pair, "label", 1) == 1]
    if not positives:
        return PRF(0.0, 0.0, 0.0)
    tp = 0
    retrieved = 0
    queried: set = set()
    for pair in positives:
        neighbours = list(neighbour_map.get(pair.left_id, ()))[:k]
        if pair.left_id not in queried:
            queried.add(pair.left_id)
            retrieved += len(neighbours)
        if pair.right_id in neighbours:
            tp += 1
    recall = tp / len(positives)
    precision = tp / retrieved if retrieved else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) > 0 else 0.0
    return PRF(precision=precision, recall=recall, f1=f1)


def recall_at_k(neighbour_map: Mapping[str, Sequence[str]], duplicate_map: Mapping[str, str], k: int) -> float:
    """Fraction of true duplicates whose counterpart appears in the top-K.

    ``duplicate_map`` maps left-record ids to their duplicate right-record id
    (the generator's ground truth); used for Figure 4 and Table VII.
    """
    if not duplicate_map:
        return 0.0
    hits = 0
    for left_id, right_id in duplicate_map.items():
        neighbours = list(neighbour_map.get(left_id, ()))[:k]
        if right_id in neighbours:
            hits += 1
    return hits / len(duplicate_map)
