"""Plain-text table formatting matching the layout of the paper's tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.eval.harness import ActiveLearningRow, MatchingRow, TransferRow
from repro.eval.metrics import PRF
from repro.eval.timing import EngineCounters, ShardTimings, StageTimings, engine_counters


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render a simple fixed-width table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def format_representation_table(results: Mapping[str, Mapping[str, Mapping[str, PRF]]]) -> str:
    """Table IV layout: per domain and IR type, raw-IR vs VAER P/R/F1."""
    headers = ["Domain", "IR", "P raw/vaer", "R raw/vaer", "F1 raw/vaer"]
    rows: List[List[str]] = []
    for domain, by_method in results.items():
        for method, pair in by_method.items():
            raw, vaer = pair["raw"], pair["vaer"]
            rows.append([
                domain,
                method,
                f"{_fmt(raw.precision)}/{_fmt(vaer.precision)}",
                f"{_fmt(raw.recall)}/{_fmt(vaer.recall)}",
                f"{_fmt(raw.f1)}/{_fmt(vaer.f1)}",
            ])
    return format_table(headers, rows)


def format_recall_curve(results: Mapping[str, Mapping[int, float]]) -> str:
    """Figure 4 layout: recall@K per domain as K grows."""
    all_ks = sorted({k for series in results.values() for k in series})
    headers = ["Domain"] + [f"R@{k}" for k in all_ks]
    rows = [
        [domain] + [_fmt(series.get(k, 0.0)) for k in all_ks]
        for domain, series in results.items()
    ]
    return format_table(headers, rows)


def format_matching_table(results: Mapping[str, Sequence[MatchingRow]]) -> str:
    """Table V layout: P/R/F1 of every system per domain."""
    headers = ["Domain", "System", "P", "R", "F1"]
    rows = [
        [domain, row.system, _fmt(row.metrics.precision), _fmt(row.metrics.recall), _fmt(row.metrics.f1)]
        for domain, domain_rows in results.items()
        for row in domain_rows
    ]
    return format_table(headers, rows)


def format_timing_table(results: Mapping[str, Sequence[MatchingRow]]) -> str:
    """Table VI layout: representation and matching training times."""
    headers = ["Domain", "System", "Repr (s)", "Match (s)", "Total (s)"]
    rows = [
        [
            domain,
            row.system,
            _fmt(row.representation_seconds, 2),
            _fmt(row.matching_seconds, 2),
            _fmt(row.total_seconds, 2),
        ]
        for domain, domain_rows in results.items()
        for row in domain_rows
    ]
    return format_table(headers, rows)


def format_transfer_table(rows: Sequence[TransferRow]) -> str:
    """Table VII layout: local vs transferred recall@K and F1 with deltas."""
    headers = ["Domain", "R local", "R transf", "ΔR", "F1 local", "F1 transf", "ΔF1"]
    body = [
        [
            row.domain,
            _fmt(row.local_recall),
            _fmt(row.transferred_recall),
            f"{row.recall_delta:+.2f}",
            _fmt(row.local_f1),
            _fmt(row.transferred_f1),
            f"{row.f1_delta:+.2f}",
        ]
        for row in rows
    ]
    return format_table(headers, body)


def format_active_learning_table(rows: Sequence[ActiveLearningRow]) -> str:
    """Table VIII layout: Bootstrap / Active / Full plus cost percentages."""
    headers = [
        "Domain", "Boot F1", "Active F1", "Full F1", "F1 %", "Labels", "Train size", "Training %",
    ]
    body = [
        [
            row.domain,
            _fmt(row.bootstrap.f1),
            _fmt(row.active.f1),
            _fmt(row.full.f1),
            f"{100 * row.f1_percentage:.0f}%",
            str(row.labels_used),
            str(row.full_training_size),
            f"{100 * row.training_percentage:.0f}%",
        ]
        for row in rows
    ]
    return format_table(headers, body)


def format_engine_stats(counters: Optional[EngineCounters] = None) -> str:
    """Encoding-engine cache report: memory and disk traffic, work saved.

    Defaults to the process-wide counters, so benchmark output can show how
    much re-encoding the shared :class:`repro.engine.EncodingStore` saved.
    ``Tables encoded`` counts tables actually pushed through the encoder —
    zero on a run fully served by a warm persistent cache (``Disk hits``).
    """
    counters = counters if counters is not None else engine_counters()
    headers = [
        "Cache hits", "Cache misses", "Hit rate", "Encodes avoided", "Pairs scored",
        "Tables encoded", "Disk hits", "Disk misses", "Chunk loads",
        "Rows re-encoded", "Rows tombstoned", "Chunks patched",
        "Pairs rescored", "Fingerprints", "Bytes stored", "Bytes decoded",
    ]
    row = [
        str(counters.cache_hits),
        str(counters.cache_misses),
        f"{100 * counters.hit_rate():.0f}%",
        str(counters.encodes_avoided),
        str(counters.pairs_scored),
        str(counters.tables_encoded),
        str(counters.disk_hits),
        str(counters.disk_misses),
        str(counters.chunk_loads),
        str(counters.rows_reencoded),
        str(counters.rows_tombstoned),
        str(counters.chunks_patched),
        str(counters.pairs_rescored),
        str(counters.fingerprints_computed),
        str(counters.bytes_stored),
        str(counters.bytes_decoded),
    ]
    return format_table(headers, [row])


def format_stage_timings(timings: StageTimings) -> str:
    """Per-stage compute report of a planner-driven resolve.

    Stages appear in graph order (encode, block, score); the seconds are
    summed worker compute per stage, so with a pool the total exceeds the
    run's wall clock — the gap is the parallel speedup.
    """
    headers = ["Stage", "Units", "Seconds"]
    rows = [
        [stage, str(timings.units(stage)), f"{timings.seconds(stage):.4f}"]
        for stage in timings.stages()
    ]
    rows.append(["total", str(sum(timings.units(s) for s in timings.stages())), f"{timings.total():.4f}"])
    table = format_table(headers, rows)
    counters = timings.counters()
    if counters:
        # Delta resolves annotate their timing sink with work counters
        # (rows_reencoded, pairs_rescored) — the incremental-cost picture.
        table += "\n" + "\n".join(
            f"{name} = {value}" for name, value in sorted(counters.items())
        )
    return table


def format_shard_timings(timings: ShardTimings) -> str:
    """Per-shard timing report of a sharded resolve, plus an aggregate row.

    ``Total`` sums worker compute across shards; with ``workers > 1`` the
    wall clock of the run approaches ``max`` (the slowest shard) instead of
    the sum — the gap is the parallel speedup.
    """
    headers = ["Shard", "Pairs", "Seconds", "Pairs/s"]
    rows = [
        [str(t.shard_index), str(t.pairs), f"{t.seconds:.4f}", f"{t.pairs_per_second:,.0f}"]
        for t in timings
    ]
    rows.append([
        "total",
        str(timings.total_pairs()),
        f"{timings.total_seconds():.4f}",
        f"{timings.total_pairs() / timings.total_seconds():,.0f}" if timings.total_seconds() > 0 else "0",
    ])
    return format_table(headers, rows)


def format_f1_trace(traces: Mapping[str, Sequence[Tuple[int, float]]]) -> str:
    """Figure 5 layout: test F1 as a function of actively labeled samples."""
    headers = ["Domain", "Labels -> F1"]
    rows = [
        [domain, ", ".join(f"{labels}:{_fmt(f1)}" for labels, f1 in trace)]
        for domain, trace in traces.items()
    ]
    return format_table(headers, rows)
