"""Wall-clock timing helpers (Table VI) and engine instrumentation counters."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Timer:
    """Accumulates named wall-clock durations."""

    durations: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[name] = self.durations.get(name, 0.0) + elapsed

    def seconds(self, name: str) -> float:
        return self.durations.get(name, 0.0)

    def total(self) -> float:
        return sum(self.durations.values())

    def as_dict(self) -> Dict[str, float]:
        return dict(self.durations)


@contextmanager
def timed() -> Iterator[list]:
    """Context manager yielding a single-element list that receives the duration."""
    result = [0.0]
    start = time.perf_counter()
    try:
        yield result
    finally:
        result[0] = time.perf_counter() - start


# ----------------------------------------------------------------------
# Engine instrumentation
# ----------------------------------------------------------------------
@dataclass
class EngineCounters:
    """Cache and throughput counters for the batched encoding engine.

    ``cache_hits``/``cache_misses`` count logical store operations served
    from / added to an :class:`repro.engine.EncodingStore` (one per side per
    operation, not raw internal lookups); ``encodes_avoided`` counts the
    record encodings the legacy path would have recomputed for those
    operations — the whole table for table-level accesses, the referenced
    pair records for gathers; ``pairs_scored`` counts candidate pairs
    featurised or scored through the store's vectorized gather paths.

    The persistence layer (:mod:`repro.engine.persist`) adds four more:
    ``tables_encoded`` counts tables actually pushed through the IR generator
    and VAE (the expensive work a warm disk cache eliminates entirely),
    ``disk_hits``/``disk_misses`` count probes of the persistent on-disk cache
    that served / failed to serve a table, and ``chunk_loads`` counts the
    row-range chunk archives actually read off disk — a lazy shard load
    touches only the chunks overlapping its range, so the counter exposes how
    much of a table a warm load really paid for.  A warm second run therefore
    shows ``tables_encoded == 0``, one disk hit per side, and one chunk load
    per chunk the run consumed.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    encodes_avoided: int = 0
    pairs_scored: int = 0
    tables_encoded: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    chunk_loads: int = 0
    rows_reencoded: int = 0
    rows_tombstoned: int = 0
    chunks_patched: int = 0
    pairs_rescored: int = 0
    fingerprints_computed: int = 0
    bytes_stored: int = 0
    bytes_decoded: int = 0

    def record_hit(self, records_served: int = 0) -> None:
        self.cache_hits += 1
        self.encodes_avoided += int(records_served)

    def record_miss(self) -> None:
        self.cache_misses += 1

    def record_pairs(self, count: int) -> None:
        self.pairs_scored += int(count)

    def record_encode(self) -> None:
        """One table actually encoded (IR transform + VAE forward)."""
        self.tables_encoded += 1

    def record_disk_hit(self) -> None:
        """One table served from the persistent on-disk cache."""
        self.disk_hits += 1

    def record_disk_miss(self) -> None:
        """One persistent-cache probe that found no valid entry."""
        self.disk_misses += 1

    def record_chunk_load(self, count: int = 1) -> None:
        """``count`` row-range chunk archives read from the persistent cache."""
        self.chunk_loads += int(count)

    def record_rows_reencoded(self, count: int) -> None:
        """``count`` rows encoded through the append-only delta path.

        Distinct from ``tables_encoded``: a delta re-encode pushes only the
        new tail rows of a grown table through the IR transform and VAE, so
        the whole-table counter stays put and this one carries the cost.
        """
        self.rows_reencoded += int(count)

    def record_rows_tombstoned(self, count: int) -> None:
        """``count`` rows dropped from cached encodings after a deletion.

        Tombstoned rows cost no encode work — the counter exists so the
        mutation path can prove a deletion re-encoded nothing: a delete-only
        delta shows ``rows_tombstoned > 0`` with ``rows_reencoded == 0``.
        """
        self.rows_tombstoned += int(count)

    def record_chunks_patched(self, count: int) -> None:
        """``count`` superseding chunk generations written by a cache patch.

        Each in-place edit dirties at most the chunks holding the edited
        rows, so the counter bounds the write amplification of the mutation
        layer: proportional to dirty chunks, never to table size.
        """
        self.chunks_patched += int(count)

    def record_pairs_rescored(self, count: int) -> None:
        """``count`` candidate pairs actually scored by a delta resolve.

        Pairs whose probabilities were reused from the baseline run are
        *not* counted — the gap to ``pairs_scored`` is the scoring work the
        incremental path saved.
        """
        self.pairs_rescored += int(count)

    def record_fingerprint(self) -> None:
        """One table fingerprint actually computed (rows CRC'd)."""
        self.fingerprints_computed += 1

    def record_bytes_stored(self, count: int) -> None:
        """``count`` bytes held resident for freshly stored encodings.

        With the ``raw`` codec this is the float array size; with a
        quantized codec it is the code array size — the ratio between the
        two is the memory win the codec tier delivers.
        """
        self.bytes_stored += int(count)

    def record_bytes_decoded(self, count: int) -> None:
        """``count`` float bytes rehydrated from quantized codes.

        Counted at gather time (pair scoring, candidate ranking, hashed
        row blocks), so it measures how much of the float store the run
        actually materialised — the lazy-decode contract keeps this far
        below ``rows * dims * 8`` for blocking-dominated workloads.
        """
        self.bytes_decoded += int(count)

    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "encodes_avoided": self.encodes_avoided,
            "pairs_scored": self.pairs_scored,
            "tables_encoded": self.tables_encoded,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "chunk_loads": self.chunk_loads,
            "rows_reencoded": self.rows_reencoded,
            "rows_tombstoned": self.rows_tombstoned,
            "chunks_patched": self.chunks_patched,
            "pairs_rescored": self.pairs_rescored,
            "fingerprints_computed": self.fingerprints_computed,
            "bytes_stored": self.bytes_stored,
            "bytes_decoded": self.bytes_decoded,
        }

    def reset(self) -> None:
        self.cache_hits = 0
        self.cache_misses = 0
        self.encodes_avoided = 0
        self.pairs_scored = 0
        self.tables_encoded = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.chunk_loads = 0
        self.rows_reencoded = 0
        self.rows_tombstoned = 0
        self.chunks_patched = 0
        self.pairs_rescored = 0
        self.fingerprints_computed = 0
        self.bytes_stored = 0
        self.bytes_decoded = 0


# ----------------------------------------------------------------------
# Sharded-resolution instrumentation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardTiming:
    """Wall-clock record of one scored work unit of a sharded resolve."""

    shard_index: int
    pairs: int
    seconds: float

    @property
    def pairs_per_second(self) -> float:
        return self.pairs / self.seconds if self.seconds > 0 else 0.0


class ShardTimings:
    """Per-shard timing sink for :func:`repro.engine.shard.resolve_sharded`.

    Each scored candidate slice reports its worker-side wall-clock time here;
    the aggregate views answer the two scaling questions — how much compute
    the pool performed in total and how imbalanced the shards were.
    """

    def __init__(self) -> None:
        self._records: list = []

    def record(self, shard_index: int, pairs: int, seconds: float) -> None:
        self._records.append(ShardTiming(shard_index=int(shard_index), pairs=int(pairs), seconds=float(seconds)))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(sorted(self._records, key=lambda r: r.shard_index))

    def total_pairs(self) -> int:
        return sum(r.pairs for r in self._records)

    def total_seconds(self) -> float:
        """Summed worker compute time (exceeds wall clock when parallel)."""
        return sum(r.seconds for r in self._records)

    def max_seconds(self) -> float:
        """The slowest shard — the lower bound on parallel wall clock."""
        return max((r.seconds for r in self._records), default=0.0)

    def as_rows(self) -> list:
        return [(r.shard_index, r.pairs, r.seconds) for r in self]


# ----------------------------------------------------------------------
# Planner-stage instrumentation
# ----------------------------------------------------------------------
#: Stage names of the planner's resolve graph, in dependency order.
RESOLUTION_STAGES = ("encode", "block", "score")

#: Overhead stages the distributed coordinator adds on top of the
#: resolution stages: ``dispatch`` (state publication + unit submission),
#: ``lease`` (enqueue → first observed worker lease) and ``merge`` (result
#: transfer, validation and deterministic reassembly).
DISTRIB_STAGES = ("dispatch", "lease", "merge")


class StageTimings:
    """Per-stage compute-time sink for planner-driven resolution.

    The :class:`repro.engine.plan.ResolutionExecutor` reports every timed
    work unit here under its stage name (``encode``, ``block``, ``score``),
    accumulating seconds and unit counts per stage.  Pooled runs add the
    parallel-overhead stages — ``dispatch`` (task submission), ``block-ipc``
    (a result-transfer sample) and ``merge`` (deterministic reassembly) —
    plus a ``query_tasks`` counter, so a sweep can show where the wall clock
    went, not just that it moved.  Like :class:`ShardTimings`, the
    per-stage seconds are *worker compute* time: with a pool, the summed
    figure exceeds the run's wall clock — the gap is the parallel speedup.
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._units: Dict[str, int] = {}
        self._counters: Dict[str, int] = {}

    def record(self, stage: str, seconds: float, units: int = 1) -> None:
        self._seconds[stage] = self._seconds.get(stage, 0.0) + float(seconds)
        self._units[stage] = self._units.get(stage, 0) + int(units)

    def record_counter(self, name: str, value: int) -> None:
        """Accumulate a named work counter (delta resolves report
        ``rows_reencoded`` and ``pairs_rescored`` here so the timing sink
        carries the full incremental-cost picture)."""
        self._counters[name] = self._counters.get(name, 0) + int(value)

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    def seconds(self, stage: str) -> float:
        return self._seconds.get(stage, 0.0)

    def units(self, stage: str) -> int:
        return self._units.get(stage, 0)

    def stages(self) -> list:
        """Recorded stages, canonical resolution stages first."""
        ordered = [stage for stage in RESOLUTION_STAGES if stage in self._seconds]
        ordered.extend(sorted(set(self._seconds) - set(RESOLUTION_STAGES)))
        return ordered

    def total(self) -> float:
        return sum(self._seconds.values())

    def as_dict(self) -> Dict[str, float]:
        return {stage: self._seconds[stage] for stage in self.stages()}

    def __len__(self) -> int:
        return len(self._seconds)


#: Process-wide default counters: stores created without explicit counters
#: report here, so harness runs and benchmarks can read one aggregate.
ENGINE_COUNTERS = EngineCounters()


def engine_counters() -> EngineCounters:
    """The process-wide engine counters instance."""
    return ENGINE_COUNTERS


def reset_engine_counters() -> None:
    """Zero the process-wide engine counters (between benchmark phases)."""
    ENGINE_COUNTERS.reset()
