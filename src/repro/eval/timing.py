"""Wall-clock timing helpers (Table VI) and engine instrumentation counters."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Timer:
    """Accumulates named wall-clock durations."""

    durations: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[name] = self.durations.get(name, 0.0) + elapsed

    def seconds(self, name: str) -> float:
        return self.durations.get(name, 0.0)

    def total(self) -> float:
        return sum(self.durations.values())

    def as_dict(self) -> Dict[str, float]:
        return dict(self.durations)


@contextmanager
def timed() -> Iterator[list]:
    """Context manager yielding a single-element list that receives the duration."""
    result = [0.0]
    start = time.perf_counter()
    try:
        yield result
    finally:
        result[0] = time.perf_counter() - start


# ----------------------------------------------------------------------
# Engine instrumentation
# ----------------------------------------------------------------------
@dataclass
class EngineCounters:
    """Cache and throughput counters for the batched encoding engine.

    ``cache_hits``/``cache_misses`` count logical store operations served
    from / added to an :class:`repro.engine.EncodingStore` (one per side per
    operation, not raw internal lookups); ``encodes_avoided`` counts the
    record encodings the legacy path would have recomputed for those
    operations — the whole table for table-level accesses, the referenced
    pair records for gathers; ``pairs_scored`` counts candidate pairs
    featurised or scored through the store's vectorized gather paths.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    encodes_avoided: int = 0
    pairs_scored: int = 0

    def record_hit(self, records_served: int = 0) -> None:
        self.cache_hits += 1
        self.encodes_avoided += int(records_served)

    def record_miss(self) -> None:
        self.cache_misses += 1

    def record_pairs(self, count: int) -> None:
        self.pairs_scored += int(count)

    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "encodes_avoided": self.encodes_avoided,
            "pairs_scored": self.pairs_scored,
        }

    def reset(self) -> None:
        self.cache_hits = 0
        self.cache_misses = 0
        self.encodes_avoided = 0
        self.pairs_scored = 0


#: Process-wide default counters: stores created without explicit counters
#: report here, so harness runs and benchmarks can read one aggregate.
ENGINE_COUNTERS = EngineCounters()


def engine_counters() -> EngineCounters:
    """The process-wide engine counters instance."""
    return ENGINE_COUNTERS


def reset_engine_counters() -> None:
    """Zero the process-wide engine counters (between benchmark phases)."""
    ENGINE_COUNTERS.reset()
