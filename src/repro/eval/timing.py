"""Wall-clock timing helpers for the training-time experiments (Table VI)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Timer:
    """Accumulates named wall-clock durations."""

    durations: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[name] = self.durations.get(name, 0.0) + elapsed

    def seconds(self, name: str) -> float:
        return self.durations.get(name, 0.0)

    def total(self) -> float:
        return sum(self.durations.values())

    def as_dict(self) -> Dict[str, float]:
        return dict(self.durations)


@contextmanager
def timed() -> Iterator[list]:
    """Context manager yielding a single-element list that receives the duration."""
    result = [0.0]
    start = time.perf_counter()
    try:
        yield result
    finally:
        result[0] = time.perf_counter() - start
