"""Experiment harness reproducing the paper's tables and figures.

Each function regenerates one experiment of Section VI on a given synthetic
domain and returns plain dictionaries/rows that the benchmark suite prints in
the same layout as the paper.  The harness is deliberately configuration-
driven (a :class:`HarnessConfig` holding reduced model sizes) so the full
sweep completes on CPU in minutes rather than hours.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import BASELINES, BaselineMatcher
from repro.blocking.neighbours import NearestNeighbourSearch
from repro.config import (
    ActiveLearningConfig,
    BlockingConfig,
    MatcherConfig,
    VAEConfig,
    VAERConfig,
)
from repro.core.active import ActiveLearningLoop, GroundTruthOracle
from repro.core.matcher import SiameseMatcher, fit_matcher_with_threshold, pair_ir_arrays
from repro.core.representation import EntityRepresentationModel
from repro.core.transfer import adapt_task_arity, transfer_representation
from repro.data.generators import GeneratedDomain, load_domain
from repro.data.pairs import PairSet
from repro.engine import (
    EncodingStore,
    PersistentEncodingCache,
    ShardedEncodingStore,
    merge_scored_batches,
    resolve_sharded,
)
from repro.eval.metrics import PRF, neighbour_prf_at_k, precision_recall_f1, recall_at_k
from repro.eval.timing import EngineCounters, ShardTimings, StageTimings
from repro.text.ir import IRGenerator


@dataclass
class HarnessConfig:
    """Model sizes and schedules used by the experiment harness.

    The defaults are intentionally small so that regenerating every table on
    CPU stays fast; they keep the Table III ratios (hidden twice the latent
    dimension, Adam at 0.001) while shrinking absolute sizes.
    """

    ir_dim: int = 32
    hidden_dim: int = 64
    latent_dim: int = 24
    vae_epochs: int = 10
    matcher_epochs: int = 40
    al_retrain_epochs: int = 12
    top_k: int = 10
    scale: float = 1.0
    seed: int = 7

    def vae_config(self) -> VAEConfig:
        return VAEConfig(
            ir_dim=self.ir_dim,
            hidden_dim=self.hidden_dim,
            latent_dim=self.latent_dim,
            epochs=self.vae_epochs,
            seed=self.seed,
        )

    def matcher_config(self) -> MatcherConfig:
        return MatcherConfig(epochs=self.matcher_epochs, seed=self.seed + 1)

    def al_config(self, iterations: int = 25) -> ActiveLearningConfig:
        return ActiveLearningConfig(
            iterations=iterations,
            retrain_epochs=self.al_retrain_epochs,
            kde_samples_per_pair=50,
            top_neighbours=self.top_k,
            seed=self.seed + 2,
        )

    def vaer_config(self, ir_method: str = "lsa") -> VAERConfig:
        return VAERConfig(
            vae=self.vae_config(),
            matcher=self.matcher_config(),
            active_learning=self.al_config(),
            blocking=BlockingConfig(),
            ir_method=ir_method,
        )


def fit_representation(
    domain: GeneratedDomain,
    config: HarnessConfig,
    ir_method: str = "lsa",
) -> Tuple[EntityRepresentationModel, float]:
    """Fit a representation model on a domain; return it with wall-clock time."""
    start = time.perf_counter()
    model = EntityRepresentationModel(config.vae_config(), ir_method=ir_method).fit(domain.task)
    return model, time.perf_counter() - start


def _store_for(
    representation: EntityRepresentationModel,
    domain: GeneratedDomain,
    store: Optional[EncodingStore],
) -> EncodingStore:
    """Adopt or create the encoding store for an experiment.

    A caller-supplied store must be bound to the exact representation and
    task the experiment uses — silently gathering features from a different
    model would produce metrics for mismatched encoder/feature pairs.
    """
    if store is None:
        return EncodingStore(representation, domain.task)
    if store.representation is not representation:
        raise ValueError("supplied store is bound to a different representation model")
    if store.task is not domain.task:
        raise ValueError("supplied store is bound to a different task")
    return store


# ----------------------------------------------------------------------
# Table IV / Figure 4: representation learning
# ----------------------------------------------------------------------
def _neighbour_map_from_vectors(
    left_vectors: np.ndarray,
    left_keys: Sequence[str],
    right_vectors: np.ndarray,
    right_keys: Sequence[str],
    k: int,
) -> Dict[str, List[str]]:
    search = NearestNeighbourSearch().build(right_vectors, right_keys)
    return {
        str(key): [str(n) for n in neighbours]
        for key, neighbours in search.neighbour_map(left_vectors, left_keys, k=k).items()
    }


def raw_ir_neighbour_map(domain: GeneratedDomain, ir_method: str, config: HarnessConfig, k: Optional[int] = None) -> Dict[str, List[str]]:
    """Top-K neighbour map using raw IR record vectors (the Table IV baseline)."""
    k = k or config.top_k
    generator = IRGenerator(method=ir_method, dim=config.ir_dim).fit(domain.task)
    left = generator.transform_table(domain.task.left).reshape(len(domain.task.left), -1)
    right = generator.transform_table(domain.task.right).reshape(len(domain.task.right), -1)
    return _neighbour_map_from_vectors(left, domain.task.left.record_ids(), right, domain.task.right.record_ids(), k)


def vaer_neighbour_map(
    domain: GeneratedDomain,
    representation: EntityRepresentationModel,
    config: HarnessConfig,
    k: Optional[int] = None,
    store: Optional[EncodingStore] = None,
) -> Dict[str, List[str]]:
    """Top-K neighbour map using VAER encodings (search on means, Table IV)."""
    k = k or config.top_k
    store = _store_for(representation, domain, store)
    left, right = store.table_encodings("left"), store.table_encodings("right")
    return _neighbour_map_from_vectors(
        left.flat_mu(), list(left.keys), right.flat_mu(), list(right.keys), k
    )


def representation_experiment(
    domain: GeneratedDomain,
    config: Optional[HarnessConfig] = None,
    ir_methods: Sequence[str] = ("lsa", "w2v", "bert", "embdi"),
    k: Optional[int] = None,
) -> Dict[str, Dict[str, PRF]]:
    """Table IV: raw-IR vs VAER nearest-neighbour P/R/F1 @ K per IR type.

    Returns ``{ir_method: {"raw": PRF, "vaer": PRF}}``.
    """
    config = config or HarnessConfig()
    k = k or config.top_k
    test_positives = domain.splits.test.positives().pairs()
    results: Dict[str, Dict[str, PRF]] = {}
    for method in ir_methods:
        raw_map = raw_ir_neighbour_map(domain, method, config, k=k)
        representation, _ = fit_representation(domain, config, ir_method=method)
        vaer_map = vaer_neighbour_map(domain, representation, config, k=k)
        results[method] = {
            "raw": neighbour_prf_at_k(raw_map, test_positives, k),
            "vaer": neighbour_prf_at_k(vaer_map, test_positives, k),
        }
    return results


def recall_at_k_experiment(
    domain: GeneratedDomain,
    config: Optional[HarnessConfig] = None,
    ks: Sequence[int] = (10, 20, 30, 50),
    ir_method: str = "lsa",
    representation: Optional[EntityRepresentationModel] = None,
    store: Optional[EncodingStore] = None,
) -> Dict[int, float]:
    """Figure 4: VAER-LSA recall@K against the generator's duplicate map."""
    config = config or HarnessConfig()
    if representation is None and store is not None:
        representation = store.representation
    elif representation is None:
        representation, _ = fit_representation(domain, config, ir_method=ir_method)
    max_k = max(ks)
    neighbour_map = vaer_neighbour_map(domain, representation, config, k=max_k, store=store)
    return {k: recall_at_k(neighbour_map, domain.duplicate_map, k) for k in ks}


# ----------------------------------------------------------------------
# Table V / Table VI: supervised matching effectiveness and training time
# ----------------------------------------------------------------------
@dataclass
class MatchingRow:
    """One system's result on one domain (a cell group of Tables V and VI)."""

    system: str
    metrics: PRF
    representation_seconds: float = 0.0
    matching_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.representation_seconds + self.matching_seconds


def run_vaer_matching(
    domain: GeneratedDomain,
    config: Optional[HarnessConfig] = None,
    ir_method: str = "lsa",
    representation: Optional[EntityRepresentationModel] = None,
    distance: str = "wasserstein",
    contrastive_weight: Optional[float] = None,
    store: Optional[EncodingStore] = None,
) -> MatchingRow:
    """Train and evaluate the VAER matcher on a domain's given splits."""
    config = config or HarnessConfig()
    representation_seconds = 0.0
    if representation is None and store is not None:
        representation = store.representation
    elif representation is None:
        representation, representation_seconds = fit_representation(domain, config, ir_method=ir_method)
    store = _store_for(representation, domain, store)

    matcher_config = config.matcher_config()
    if contrastive_weight is not None:
        matcher_config.contrastive_weight = contrastive_weight
    start = time.perf_counter()
    matcher, threshold = fit_matcher_with_threshold(
        representation,
        domain.task,
        domain.splits.train,
        domain.splits.validation,
        config=matcher_config,
        distance=distance,
        store=store,
    )
    matching_seconds = time.perf_counter() - start

    t_left, t_right, t_labels = pair_ir_arrays(representation, domain.task, domain.splits.test, store=store)
    predictions = (matcher.predict_proba(t_left, t_right) > threshold).astype(int)
    metrics = precision_recall_f1(t_labels.astype(int), predictions)
    return MatchingRow(
        system="vaer",
        metrics=metrics,
        representation_seconds=representation_seconds,
        matching_seconds=matching_seconds,
    )


def run_baseline_matching(domain: GeneratedDomain, system: str, **kwargs) -> MatchingRow:
    """Train and evaluate one baseline matcher on a domain's given splits."""
    matcher_cls = BASELINES[system]
    matcher: BaselineMatcher = matcher_cls(**kwargs)
    start = time.perf_counter()
    matcher.fit(domain.task, domain.splits.train, domain.splits.validation)
    seconds = time.perf_counter() - start
    metrics = matcher.evaluate(domain.task, domain.splits.test)
    return MatchingRow(system=system, metrics=metrics, matching_seconds=seconds)


def matching_experiment(
    domain: GeneratedDomain,
    config: Optional[HarnessConfig] = None,
    systems: Sequence[str] = ("deeper", "deepmatcher", "ditto"),
    ir_method: str = "lsa",
) -> List[MatchingRow]:
    """Tables V and VI: VAER vs baselines, effectiveness and training time."""
    config = config or HarnessConfig()
    rows = [run_vaer_matching(domain, config, ir_method=ir_method)]
    for system in systems:
        rows.append(run_baseline_matching(domain, system))
    return rows


# ----------------------------------------------------------------------
# Table VII: transferability
# ----------------------------------------------------------------------
@dataclass
class TransferRow:
    """Local vs transferred representation quality on one target domain."""

    domain: str
    local_recall: float
    transferred_recall: float
    local_f1: float
    transferred_f1: float

    @property
    def recall_delta(self) -> float:
        return self.transferred_recall - self.local_recall

    @property
    def f1_delta(self) -> float:
        return self.transferred_f1 - self.local_f1


def transfer_experiment(
    source_domain: GeneratedDomain,
    target_domains: Iterable[GeneratedDomain],
    config: Optional[HarnessConfig] = None,
    ir_method: str = "lsa",
) -> List[TransferRow]:
    """Table VII: recall@K and matching F1 with local vs transferred models.

    The source representation model is trained once (on the source domain);
    each target domain is arity-adapted to the source arity, encoded with the
    transferred model and with a locally trained model, and evaluated on both
    the unsupervised recall@K protocol and the supervised matching protocol.
    """
    config = config or HarnessConfig()
    source_model, _ = fit_representation(source_domain, config, ir_method=ir_method)
    source_arity = source_domain.task.arity

    rows: List[TransferRow] = []
    for target in target_domains:
        adapted_task = adapt_task_arity(target.task, source_arity)
        adapted_domain = GeneratedDomain(
            task=adapted_task, splits=target.splits, spec=target.spec, duplicate_map=target.duplicate_map
        )

        local_model, _ = fit_representation(adapted_domain, config, ir_method=ir_method)
        transferred_model = transfer_representation(source_model, adapted_task)

        # One store per model: the recall@K and matching protocols below then
        # share a single encoding pass of the adapted tables.
        local_store = EncodingStore(local_model, adapted_domain.task)
        transferred_store = EncodingStore(transferred_model, adapted_domain.task)

        local_recall = recall_at_k_experiment(
            adapted_domain, config, ks=(config.top_k,), representation=local_model, store=local_store
        )[config.top_k]
        transferred_recall = recall_at_k_experiment(
            adapted_domain, config, ks=(config.top_k,),
            representation=transferred_model, store=transferred_store,
        )[config.top_k]

        local_f1 = run_vaer_matching(
            adapted_domain, config, representation=local_model, store=local_store
        ).metrics.f1
        transferred_f1 = run_vaer_matching(
            adapted_domain, config, representation=transferred_model, store=transferred_store
        ).metrics.f1

        rows.append(
            TransferRow(
                domain=target.name,
                local_recall=local_recall,
                transferred_recall=transferred_recall,
                local_f1=local_f1,
                transferred_f1=transferred_f1,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table VIII / Figure 5: active learning
# ----------------------------------------------------------------------
@dataclass
class ActiveLearningRow:
    """One domain's Bootstrap / A-budget / Full comparison (Table VIII)."""

    domain: str
    bootstrap: PRF
    active: PRF
    full: PRF
    labels_used: int
    full_training_size: int
    f1_trace: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def f1_percentage(self) -> float:
        """Share of the Full model's F1 achieved by the actively trained model."""
        return self.active.f1 / self.full.f1 if self.full.f1 > 0 else 0.0

    @property
    def training_percentage(self) -> float:
        """Share of the full training set the active labels represent."""
        return self.labels_used / self.full_training_size if self.full_training_size else 0.0


def active_learning_experiment(
    domain: GeneratedDomain,
    config: Optional[HarnessConfig] = None,
    label_budget: int = 100,
    iterations: int = 20,
    strategy: str = "vaer",
    ir_method: str = "lsa",
    representation: Optional[EntityRepresentationModel] = None,
) -> ActiveLearningRow:
    """Table VIII row: Bootstrap vs actively-labeled vs Full-data matcher.

    ``label_budget`` plays the role of the paper's 250 actively labeled
    samples (scaled to the reduced synthetic training sets).
    """
    config = config or HarnessConfig()
    if representation is None:
        representation, _ = fit_representation(domain, config, ir_method=ir_method)

    # One store serves the AL loop and the full-data reference matcher alike.
    store = EncodingStore(representation, domain.task)
    oracle = GroundTruthOracle(domain.task)
    loop = ActiveLearningLoop(
        task=domain.task,
        representation=representation,
        oracle=oracle,
        config=config.al_config(iterations=iterations),
        matcher_config=config.matcher_config(),
        strategy=strategy,
        test_pairs=domain.splits.test,
        store=store,
    )
    result = loop.run(iterations=iterations, label_budget=label_budget)

    bootstrap_metrics = result.history[0].test_metrics or PRF(0.0, 0.0, 0.0)
    active_metrics = result.history[-1].test_metrics or PRF(0.0, 0.0, 0.0)
    full_metrics = run_vaer_matching(domain, config, representation=representation, store=store).metrics

    return ActiveLearningRow(
        domain=domain.name,
        bootstrap=bootstrap_metrics,
        active=active_metrics,
        full=full_metrics,
        labels_used=oracle.labels_provided,
        full_training_size=len(domain.splits.train),
        f1_trace=result.f1_trace(),
    )


# ----------------------------------------------------------------------
# End-to-end resolution (sharded workers + persistent cache)
# ----------------------------------------------------------------------
@dataclass
class ResolutionRow:
    """One end-to-end resolution run: throughput, matches and cache reuse."""

    domain: str
    workers: int
    candidate_pairs: int
    predicted_matches: int
    batches: int
    resolve_seconds: float
    threshold: float
    counters: Dict[str, int]
    shard_timings: ShardTimings
    match_keys: List[Tuple[str, str]] = field(default_factory=list)
    stage_seconds: Dict[str, float] = field(default_factory=dict)


def resolution_experiment(
    domain: GeneratedDomain,
    config: Optional[HarnessConfig] = None,
    ir_method: str = "lsa",
    k: Optional[int] = None,
    batch_size: int = 2048,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    representation: Optional[EntityRepresentationModel] = None,
    matcher: Optional[SiameseMatcher] = None,
    threshold: float = 0.5,
) -> ResolutionRow:
    """Blocking + matching over the full task through the sharded engine.

    Fits a representation and matcher when not supplied (so sweeps can share
    them across worker counts), builds a :class:`ShardedEncodingStore` with
    its own counters — attached to a :class:`PersistentEncodingCache` when
    ``cache_dir`` is given — and resolves the task with ``workers`` pool
    workers, recording per-shard timings and engine cache traffic.
    """
    config = config or HarnessConfig()
    k = k or config.top_k
    if representation is None:
        representation, _ = fit_representation(domain, config, ir_method=ir_method)
    if matcher is None:
        matcher, threshold = fit_matcher_with_threshold(
            representation,
            domain.task,
            domain.splits.train,
            domain.splits.validation,
            config=config.matcher_config(),
        )

    counters = EngineCounters()
    persistent = PersistentEncodingCache(cache_dir) if cache_dir is not None else None
    store = ShardedEncodingStore(
        representation, domain.task, counters=counters, persistent=persistent
    )
    timings = ShardTimings()
    stage_timings = StageTimings()
    start = time.perf_counter()
    batches = list(
        resolve_sharded(
            store, matcher, k=k, batch_size=batch_size,
            threshold=threshold, workers=workers, shard_timings=timings,
            stage_timings=stage_timings,
        )
    )
    resolve_seconds = time.perf_counter() - start
    merged = merge_scored_batches(batches)
    matches = merged.matches()
    return ResolutionRow(
        domain=domain.name,
        workers=workers,
        candidate_pairs=len(merged),
        predicted_matches=len(matches),
        batches=len(batches),
        resolve_seconds=resolve_seconds,
        threshold=threshold,
        counters=store.stats(),
        shard_timings=timings,
        match_keys=[pair.key() for pair in matches],
        stage_seconds=stage_timings.as_dict(),
    )


# ----------------------------------------------------------------------
# Convenience loader
# ----------------------------------------------------------------------
def load_domains(names: Iterable[str], scale: float = 1.0) -> Dict[str, GeneratedDomain]:
    """Generate the requested benchmark domains keyed by name."""
    return {name: load_domain(name, scale=scale) for name in names}
