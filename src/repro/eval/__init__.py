"""Evaluation: metrics, timing, the experiment harness and table formatting.

The harness imports the core models (which themselves use
:mod:`repro.eval.metrics`), so harness and reporting symbols are loaded
lazily to keep the import graph acyclic.
"""

from repro.eval.metrics import (
    PRF,
    precision_recall_f1,
    best_threshold,
    neighbour_prf_at_k,
    recall_at_k,
)
from repro.eval.timing import (
    EngineCounters,
    Timer,
    engine_counters,
    reset_engine_counters,
    timed,
)

_HARNESS_EXPORTS = {
    "HarnessConfig",
    "MatchingRow",
    "TransferRow",
    "ActiveLearningRow",
    "fit_representation",
    "raw_ir_neighbour_map",
    "vaer_neighbour_map",
    "representation_experiment",
    "recall_at_k_experiment",
    "run_vaer_matching",
    "run_baseline_matching",
    "matching_experiment",
    "transfer_experiment",
    "active_learning_experiment",
    "load_domains",
}

__all__ = [
    "PRF",
    "precision_recall_f1",
    "best_threshold",
    "neighbour_prf_at_k",
    "recall_at_k",
    "Timer",
    "timed",
    "EngineCounters",
    "engine_counters",
    "reset_engine_counters",
    "reporting",
    *sorted(_HARNESS_EXPORTS),
]


def __getattr__(name: str):
    """Lazily resolve harness/reporting attributes to avoid import cycles."""
    import importlib

    if name in _HARNESS_EXPORTS:
        return getattr(importlib.import_module("repro.eval.harness"), name)
    if name == "reporting":
        return importlib.import_module("repro.eval.reporting")
    raise AttributeError(f"module 'repro.eval' has no attribute {name!r}")
