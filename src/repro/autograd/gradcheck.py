"""Numerical gradient checking for the autograd engine.

These helpers back the test suite: every primitive operation in
:mod:`repro.autograd.tensor` is validated against central finite differences,
which is what makes the from-scratch substitution for PyTorch trustworthy.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Estimate ``d fn / d inputs[index]`` with central finite differences.

    Parameters
    ----------
    fn:
        Function mapping numpy arrays (wrapped internally) to a scalar Tensor.
    inputs:
        The raw numpy inputs.
    index:
        Which input to differentiate with respect to.
    epsilon:
        Finite-difference step size.
    """
    base = [np.array(x, dtype=np.float64) for x in inputs]
    target = base[index]
    grad = np.zeros_like(target)

    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = target[idx]

        target[idx] = original + epsilon
        plus = float(fn(*[Tensor(x) for x in base]).data)

        target[idx] = original - epsilon
        minus = float(fn(*[Tensor(x) for x in base]).data)

        target[idx] = original
        grad[idx] = (plus - minus) / (2.0 * epsilon)
        it.iternext()

    return grad


def check_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    epsilon: float = 1e-6,
) -> bool:
    """Compare analytic and numerical gradients for every input of ``fn``.

    Returns ``True`` when all gradients agree within tolerance; raises
    ``AssertionError`` with a diagnostic message otherwise.
    """
    tensors = [Tensor(np.array(x, dtype=np.float64), requires_grad=True) for x in inputs]
    output = fn(*tensors)
    if output.size != 1:
        raise ValueError("check_gradient requires a scalar-valued function")
    output.backward()

    for i, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, [t.data.copy() for t in tensors], i, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            max_err = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"Gradient mismatch for input {i}: max abs error {max_err:.3e}\n"
                f"analytic=\n{analytic}\nnumeric=\n{numeric}"
            )
    return True
