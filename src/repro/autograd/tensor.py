"""Reverse-mode automatic differentiation over numpy arrays.

This module provides the :class:`Tensor` class used by every neural model in
the reproduction (the VAE representation model, the Siamese matcher, and the
baseline matchers).  It implements a small but complete dynamic computation
graph: each operation records the inputs it consumed and a backward closure
that propagates gradients to them.  Calling :meth:`Tensor.backward` on a
scalar output walks the graph in reverse topological order and accumulates
gradients into every tensor created with ``requires_grad=True``.

The design intentionally mirrors the subset of the PyTorch tensor API that
the paper's models need (matmul, elementwise arithmetic, exp/log, reductions,
indexing, concatenation, broadcasting), so the higher-level ``repro.nn``
package reads like the PyTorch code the original authors would have written.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]


def _as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` to a float64 numpy array without copying needlessly."""
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            return value.astype(np.float64)
        return value
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    Numpy broadcasting can expand an operand along new leading axes or along
    axes of size one.  The gradient flowing back through a broadcast operation
    must be summed over those expanded axes to recover the operand's shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size one.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the dynamic computation graph.

    Parameters
    ----------
    data:
        The underlying numpy array (any shape, stored as float64).
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    _parents:
        Tensors this node was computed from (internal).
    _backward:
        Closure propagating ``self.grad`` into the parents (internal).
    name:
        Optional label used in error messages and graph dumps.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = tuple(_parents)
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a direct reference, not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad``, allocating on first use."""
        if not self.requires_grad:
            return
        grad = _unbroadcast(_as_array(grad), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            The upstream gradient.  Defaults to ``1.0`` which is only valid
            when ``self`` is a scalar (the usual loss case).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only defined "
                    f"for scalar tensors, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        self._accumulate(grad)

        order = self._topological_order()
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def _topological_order(self) -> list:
        """Return graph nodes reachable from ``self`` in topological order."""
        order: list = []
        visited: set = set()
        stack: list = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out = Tensor(
            self.data + other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def _backward() -> None:
            self._accumulate(out.grad)
            other._accumulate(out.grad)

        out._backward = _backward
        return out

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._ensure(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out = Tensor(
            self.data * other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def _backward() -> None:
            self._accumulate(out.grad * other.data)
            other._accumulate(out.grad * self.data)

        out._backward = _backward
        return out

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out = Tensor(
            self.data / other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def _backward() -> None:
            self._accumulate(out.grad / other.data)
            other._accumulate(-out.grad * self.data / (other.data ** 2))

        out._backward = _backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out = Tensor(
            self.data ** exponent,
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def _backward() -> None:
            self._accumulate(out.grad * exponent * (self.data ** (exponent - 1)))

        out._backward = _backward
        return out

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        """Matrix product supporting 1-D and 2-D operands."""
        other = self._ensure(other)
        out = Tensor(
            self.data @ other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def _backward() -> None:
            grad = out.grad
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
            elif a.ndim == 2 and b.ndim == 2:
                self._accumulate(grad @ b.T)
                other._accumulate(a.T @ grad)
            elif a.ndim == 1 and b.ndim == 2:
                self._accumulate(grad @ b.T)
                other._accumulate(np.outer(a, grad))
            elif a.ndim == 2 and b.ndim == 1:
                self._accumulate(np.outer(grad, b))
                other._accumulate(a.T @ grad)
            else:  # pragma: no cover - guarded by supported model shapes
                raise NotImplementedError(
                    f"matmul backward undefined for shapes {a.shape} @ {b.shape}"
                )

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(np.clip(self.data, -60.0, 60.0))
        out = Tensor(value, requires_grad=self.requires_grad, _parents=(self,))

        def _backward() -> None:
            self._accumulate(out.grad * value)

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        safe = np.maximum(self.data, 1e-12)
        out = Tensor(np.log(safe), requires_grad=self.requires_grad, _parents=(self,))

        def _backward() -> None:
            self._accumulate(out.grad / safe)

        out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        out = Tensor(np.abs(self.data), requires_grad=self.requires_grad, _parents=(self,))

        def _backward() -> None:
            self._accumulate(out.grad * np.sign(self.data))

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = Tensor(self.data * mask, requires_grad=self.requires_grad, _parents=(self,))

        def _backward() -> None:
            self._accumulate(out.grad * mask)

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        out = Tensor(value, requires_grad=self.requires_grad, _parents=(self,))

        def _backward() -> None:
            self._accumulate(out.grad * value * (1.0 - value))

        out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = Tensor(value, requires_grad=self.requires_grad, _parents=(self,))

        def _backward() -> None:
            self._accumulate(out.grad * (1.0 - value ** 2))

        out._backward = _backward
        return out

    def softplus(self) -> "Tensor":
        """Numerically stable ``log(1 + exp(x))``."""
        value = np.logaddexp(0.0, self.data)
        out = Tensor(value, requires_grad=self.requires_grad, _parents=(self,))

        def _backward() -> None:
            # d/dx softplus(x) = sigmoid(x); clip to keep exp() in range.
            sigmoid = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
            self._accumulate(out.grad * sigmoid)

        out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; the gradient is passed through inside the bounds."""
        mask = (self.data >= low) & (self.data <= high)
        out = Tensor(
            np.clip(self.data, low, high),
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def _backward() -> None:
            self._accumulate(out.grad * mask)

        out._backward = _backward
        return out

    def maximum(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        """Elementwise maximum; ties send the full gradient to ``self``."""
        other = self._ensure(other)
        take_self = self.data >= other.data
        out = Tensor(
            np.maximum(self.data, other.data),
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def _backward() -> None:
            self._accumulate(out.grad * take_self)
            other._accumulate(out.grad * (~take_self))

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out = Tensor(
            self.data.sum(axis=axis, keepdims=keepdims),
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def _backward() -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        out._backward = _backward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out = Tensor(
            self.data.reshape(shape),
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def _backward() -> None:
            self._accumulate(out.grad.reshape(original))

        out._backward = _backward
        return out

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        out = Tensor(
            np.transpose(self.data, axes),
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def _backward() -> None:
            if axes is None:
                self._accumulate(np.transpose(out.grad))
            else:
                inverse = np.argsort(axes)
                self._accumulate(np.transpose(out.grad, inverse))

        out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = Tensor(
            self.data[index],
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def _backward() -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing back to each."""
    tensors = [Tensor._ensure(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor(
        data,
        requires_grad=any(t.requires_grad for t in tensors),
        _parents=tuple(tensors),
    )
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * data.ndim
            slicer[axis] = slice(int(start), int(end))
            tensor._accumulate(out.grad[tuple(slicer)])

    out._backward = _backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing back to each."""
    tensors = [Tensor._ensure(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    out = Tensor(
        data,
        requires_grad=any(t.requires_grad for t in tensors),
        _parents=tuple(tensors),
    )

    def _backward() -> None:
        grads = np.split(out.grad, len(tensors), axis=axis)
        for tensor, grad in zip(tensors, grads):
            tensor._accumulate(np.squeeze(grad, axis=axis))

    out._backward = _backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select between two tensors based on a boolean array."""
    a = Tensor._ensure(a)
    b = Tensor._ensure(b)
    condition = np.asarray(condition, dtype=bool)
    out = Tensor(
        np.where(condition, a.data, b.data),
        requires_grad=a.requires_grad or b.requires_grad,
        _parents=(a, b),
    )

    def _backward() -> None:
        a._accumulate(out.grad * condition)
        b._accumulate(out.grad * (~condition))

    out._backward = _backward
    return out
