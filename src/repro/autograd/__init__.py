"""Reverse-mode automatic differentiation engine used by :mod:`repro.nn`.

The engine is a self-contained substitute for the subset of PyTorch that the
paper's models (VAE representation model, Siamese matcher, deep baselines)
require.  See :mod:`repro.autograd.tensor` for the graph mechanics and
:mod:`repro.autograd.gradcheck` for numerical verification utilities.
"""

from repro.autograd.tensor import Tensor, concatenate, stack, where
from repro.autograd.gradcheck import numerical_gradient, check_gradient

__all__ = [
    "Tensor",
    "concatenate",
    "stack",
    "where",
    "numerical_gradient",
    "check_gradient",
]
