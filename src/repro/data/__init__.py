"""Relational data substrate: schema, labeled pairs, CSV I/O and generators."""

from repro.data.schema import MISSING, Record, Table, ERTask
from repro.data.pairs import RecordPair, LabeledPair, PairSet, DatasetSplits
from repro.data.io import read_table, write_table, read_pairs, write_pairs

__all__ = [
    "MISSING",
    "Record",
    "Table",
    "ERTask",
    "RecordPair",
    "LabeledPair",
    "PairSet",
    "DatasetSplits",
    "read_table",
    "write_table",
    "read_pairs",
    "write_pairs",
]
