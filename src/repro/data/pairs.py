"""Labeled tuple pairs and pair sets.

The supervised matcher and every baseline consume sets of
``(left record, right record, label)`` triples.  :class:`PairSet` is the
container used for train/validation/test splits throughout the repo, mirroring
the "Training"/"Test" columns of Table II in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.schema import ERTask, Record
from repro.exceptions import SchemaError


@dataclass(frozen=True)
class RecordPair:
    """A candidate pair referencing one record on each side of the task."""

    left_id: str
    right_id: str

    def key(self) -> Tuple[str, str]:
        return (self.left_id, self.right_id)


@dataclass(frozen=True)
class LabeledPair:
    """A record pair together with its duplicate / non-duplicate label."""

    left_id: str
    right_id: str
    label: int

    def __post_init__(self) -> None:
        if self.label not in (0, 1):
            raise SchemaError(f"pair label must be 0 or 1, got {self.label}")

    @property
    def pair(self) -> RecordPair:
        return RecordPair(self.left_id, self.right_id)

    def key(self) -> Tuple[str, str]:
        return (self.left_id, self.right_id)


class PairSet:
    """An ordered, duplicate-free collection of labeled pairs."""

    def __init__(self, pairs: Optional[Iterable[LabeledPair]] = None) -> None:
        self._pairs: List[LabeledPair] = []
        self._seen: set = set()
        for pair in pairs or []:
            self.add(pair)

    # ------------------------------------------------------------------
    def add(self, pair: LabeledPair) -> bool:
        """Add ``pair`` unless an identical (left, right) key already exists.

        Returns ``True`` when the pair was inserted.
        """
        key = pair.key()
        if key in self._seen:
            return False
        self._seen.add(key)
        self._pairs.append(pair)
        return True

    def extend(self, pairs: Iterable[LabeledPair]) -> int:
        """Add many pairs; return how many were actually inserted."""
        return sum(1 for pair in pairs if self.add(pair))

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[LabeledPair]:
        return iter(self._pairs)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._seen

    def __repr__(self) -> str:
        return f"PairSet(size={len(self)}, positives={self.num_positives()})"

    # ------------------------------------------------------------------
    def pairs(self) -> List[LabeledPair]:
        return list(self._pairs)

    def labels(self) -> np.ndarray:
        return np.array([pair.label for pair in self._pairs], dtype=np.int64)

    def num_positives(self) -> int:
        return int(sum(pair.label for pair in self._pairs))

    def num_negatives(self) -> int:
        return len(self) - self.num_positives()

    def positive_rate(self) -> float:
        return self.num_positives() / len(self) if self._pairs else 0.0

    def positives(self) -> "PairSet":
        return PairSet(pair for pair in self._pairs if pair.label == 1)

    def negatives(self) -> "PairSet":
        return PairSet(pair for pair in self._pairs if pair.label == 0)

    def merge(self, other: "PairSet") -> "PairSet":
        """Return a new pair set containing pairs from both sets."""
        merged = PairSet(self._pairs)
        merged.extend(other.pairs())
        return merged

    def subset(self, indices: Sequence[int]) -> "PairSet":
        return PairSet(self._pairs[i] for i in indices)

    def shuffled(self, rng: np.random.Generator) -> "PairSet":
        order = rng.permutation(len(self._pairs))
        return self.subset(list(order))

    def head(self, n: int) -> "PairSet":
        return PairSet(self._pairs[:n])

    def split(self, fraction: float, rng: Optional[np.random.Generator] = None) -> Tuple["PairSet", "PairSet"]:
        """Split into two disjoint sets, the first holding ``fraction`` of pairs.

        The split is stratified by label so both parts keep a usable balance.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be strictly between 0 and 1")
        rng = rng or np.random.default_rng()
        first: List[LabeledPair] = []
        second: List[LabeledPair] = []
        for label in (1, 0):
            group = [p for p in self._pairs if p.label == label]
            order = rng.permutation(len(group))
            cut = int(round(fraction * len(group)))
            first.extend(group[i] for i in order[:cut])
            second.extend(group[i] for i in order[cut:])
        return PairSet(first), PairSet(second)

    # ------------------------------------------------------------------
    def materialize(self, task: ERTask) -> List[Tuple[Record, Record, int]]:
        """Resolve record ids to actual records of the task."""
        return [
            (task.left[pair.left_id], task.right[pair.right_id], pair.label)
            for pair in self._pairs
        ]


@dataclass
class DatasetSplits:
    """Train/validation/test pair splits accompanying an ER task."""

    train: PairSet
    validation: PairSet
    test: PairSet

    def sizes(self) -> Tuple[int, int, int]:
        return (len(self.train), len(self.validation), len(self.test))

    def summary(self) -> str:
        return (
            f"train={len(self.train)} (+{self.train.num_positives()}), "
            f"valid={len(self.validation)} (+{self.validation.num_positives()}), "
            f"test={len(self.test)} (+{self.test.num_positives()})"
        )
