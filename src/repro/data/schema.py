"""Relational schema primitives: records, tables and ER tasks.

The paper performs ER between two tables with aligned attributes (Table II).
A :class:`Table` is an ordered collection of :class:`Record` objects sharing
one schema; an :class:`ERTask` bundles the two tables together with their
labeled train/validation/test pair sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import SchemaError

MISSING = ""


@dataclass(frozen=True)
class Record:
    """One tuple (entity description) in a table.

    Attributes
    ----------
    record_id:
        Identifier unique within the owning table.
    values:
        Attribute values in schema order.  Missing values are stored as the
        empty string (``MISSING``).
    entity_id:
        Hidden ground-truth identifier of the real-world entity this record
        describes.  It is used only by dataset generators and evaluation
        oracles, never by the models themselves.
    """

    record_id: str
    values: Tuple[str, ...]
    entity_id: Optional[str] = None

    def value(self, index: int) -> str:
        return self.values[index]

    def is_missing(self, index: int) -> bool:
        return self.values[index] == MISSING

    def text(self, separator: str = " ") -> str:
        """Concatenate all attribute values (used by sequence baselines)."""
        return separator.join(v for v in self.values if v != MISSING)


class Table:
    """An ordered collection of records sharing one attribute schema."""

    def __init__(self, name: str, attributes: Sequence[str], records: Optional[Sequence[Record]] = None) -> None:
        if not attributes:
            raise SchemaError("a table needs at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"duplicate attribute names in table {name!r}")
        self.name = name
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self._records: List[Record] = []
        self._index: Dict[str, int] = {}
        self._revision: int = 0
        for record in records or []:
            self.add(record)

    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, record_id: str) -> Record:
        try:
            return self._records[self._index[record_id]]
        except KeyError as exc:
            raise KeyError(f"record {record_id!r} not in table {self.name!r}") from exc

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._index

    def __repr__(self) -> str:
        return f"Table(name={self.name!r}, arity={self.arity}, records={len(self)})"

    @property
    def revision(self) -> int:
        """Monotonic mutation counter, bumped by every add/replace/remove.

        Consumers that cache derived state per table (the encoding store's
        fingerprint memo) key it on ``(len(table), revision)`` so an in-place
        edit or deletion — which may leave the length unchanged — still
        invalidates, without re-hashing the rows on every access.
        """
        return self._revision

    # ------------------------------------------------------------------
    def add(self, record: Record) -> None:
        """Append a record, enforcing schema arity and id uniqueness."""
        if len(record.values) != self.arity:
            raise SchemaError(
                f"record {record.record_id!r} has {len(record.values)} values, "
                f"table {self.name!r} expects {self.arity}"
            )
        if record.record_id in self._index:
            raise SchemaError(f"duplicate record id {record.record_id!r} in table {self.name!r}")
        self._index[record.record_id] = len(self._records)
        self._records.append(record)
        self._revision += 1

    def replace(self, record: Record) -> Record:
        """In-place edit: swap the record with the same id, keeping its position.

        Returns the record that was replaced.  The row-identity contract of
        incremental resolution: an edit changes a record's *values* but never
        its id or position, so delta probes can match rows across table
        states by id alone.
        """
        if len(record.values) != self.arity:
            raise SchemaError(
                f"record {record.record_id!r} has {len(record.values)} values, "
                f"table {self.name!r} expects {self.arity}"
            )
        try:
            position = self._index[record.record_id]
        except KeyError as exc:
            raise KeyError(f"record {record.record_id!r} not in table {self.name!r}") from exc
        previous = self._records[position]
        self._records[position] = record
        self._revision += 1
        return previous

    def remove(self, record_id: str) -> Record:
        """Delete a record by id; later rows shift up one position.

        Returns the removed record.
        """
        try:
            position = self._index.pop(record_id)
        except KeyError as exc:
            raise KeyError(f"record {record_id!r} not in table {self.name!r}") from exc
        removed = self._records.pop(position)
        for shifted in self._records[position:]:
            self._index[shifted.record_id] = self._index[shifted.record_id] - 1
        self._revision += 1
        return removed

    def records(self) -> List[Record]:
        """Return the records as a list (a shallow copy)."""
        return list(self._records)

    def record_ids(self) -> List[str]:
        return [record.record_id for record in self._records]

    def attribute_values(self, attribute: str) -> List[str]:
        """All values of one attribute, in record order."""
        try:
            index = self.attributes.index(attribute)
        except ValueError as exc:
            raise SchemaError(f"unknown attribute {attribute!r} in table {self.name!r}") from exc
        return [record.values[index] for record in self._records]

    def missing_rate(self) -> float:
        """Fraction of attribute cells that are missing (empty)."""
        if not self._records:
            return 0.0
        total = len(self._records) * self.arity
        missing = sum(1 for record in self._records for value in record.values if value == MISSING)
        return missing / total

    def sample(self, n: int, rng) -> "Table":
        """Return a new table with ``n`` records sampled without replacement."""
        n = min(n, len(self._records))
        chosen = rng.choice(len(self._records), size=n, replace=False)
        return Table(self.name, self.attributes, [self._records[i] for i in sorted(chosen)])

    def project(self, arity: int, pad_value: str = MISSING) -> "Table":
        """Return a copy truncated or padded to ``arity`` attributes.

        This implements the arity-adaptation rule of the transferability
        experiment (Section VI-D): extra columns are dropped, missing columns
        are padded with empty values.
        """
        if arity <= 0:
            raise SchemaError("projected arity must be positive")
        if arity <= self.arity:
            attributes = self.attributes[:arity]
            records = [
                Record(r.record_id, r.values[:arity], r.entity_id) for r in self._records
            ]
        else:
            extra = arity - self.arity
            attributes = self.attributes + tuple(f"_pad_{i}" for i in range(extra))
            records = [
                Record(r.record_id, r.values + (pad_value,) * extra, r.entity_id)
                for r in self._records
            ]
        return Table(self.name, attributes, records)


@dataclass
class ERTask:
    """A complete entity-resolution task between two aligned tables."""

    name: str
    left: Table
    right: Table
    clean: bool = True
    description: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.left.arity != self.right.arity:
            raise SchemaError(
                f"ER task {self.name!r}: tables have mismatched arity "
                f"({self.left.arity} vs {self.right.arity})"
            )

    @property
    def arity(self) -> int:
        return self.left.arity

    @property
    def cardinality(self) -> Tuple[int, int]:
        return (len(self.left), len(self.right))

    def record(self, side: str, record_id: str) -> Record:
        """Fetch a record from the ``"left"`` or ``"right"`` table."""
        if side == "left":
            return self.left[record_id]
        if side == "right":
            return self.right[record_id]
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")

    def true_match(self, left_id: str, right_id: str) -> bool:
        """Ground-truth duplicate decision based on hidden entity ids."""
        left_entity = self.left[left_id].entity_id
        right_entity = self.right[right_id].entity_id
        if left_entity is None or right_entity is None:
            raise SchemaError("ground-truth entity ids are not available for this task")
        return left_entity == right_entity

    def all_records(self) -> List[Tuple[str, Record]]:
        """All records of both tables tagged by side."""
        out: List[Tuple[str, Record]] = [("left", r) for r in self.left]
        out.extend(("right", r) for r in self.right)
        return out

    def project(self, arity: int) -> "ERTask":
        """Arity-adapt both tables (see :meth:`Table.project`)."""
        return ERTask(
            name=self.name,
            left=self.left.project(arity),
            right=self.right.project(arity),
            clean=self.clean,
            description=self.description,
            metadata=dict(self.metadata),
        )
