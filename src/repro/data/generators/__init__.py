"""Synthetic benchmark dataset generators (stand-ins for Table II datasets)."""

from repro.data.generators.base import (
    DomainSpec,
    GeneratedDomain,
    PaperStats,
    SyntheticDomainGenerator,
    compose,
    pick,
)
from repro.data.generators.corruption import CorruptionModel
from repro.data.generators.registry import (
    CLEAN_DOMAINS,
    DOMAIN_NAMES,
    NOISY_DOMAINS,
    append_rows,
    available_domains,
    delete_rows,
    domain_spec,
    load_all_domains,
    load_domain,
    mutate_rows,
)

__all__ = [
    "DomainSpec",
    "GeneratedDomain",
    "PaperStats",
    "SyntheticDomainGenerator",
    "CorruptionModel",
    "compose",
    "pick",
    "CLEAN_DOMAINS",
    "DOMAIN_NAMES",
    "NOISY_DOMAINS",
    "append_rows",
    "available_domains",
    "delete_rows",
    "domain_spec",
    "load_all_domains",
    "load_domain",
    "mutate_rows",
]
