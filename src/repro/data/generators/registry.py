"""Registry of the nine benchmark domains and a convenience loader."""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional

from repro.data.generators import domains
from repro.data.generators.base import DomainSpec, GeneratedDomain, SyntheticDomainGenerator

_BUILDERS: Dict[str, Callable[[], DomainSpec]] = {
    "restaurants": domains.restaurants,
    "citations1": domains.citations1,
    "citations2": domains.citations2,
    "cosmetics": domains.cosmetics,
    "software": domains.software,
    "music": domains.music,
    "beer": domains.beer,
    "stocks": domains.stocks,
    "crm": domains.crm,
}

#: Domain order used by the paper's tables.
DOMAIN_NAMES: List[str] = list(_BUILDERS)

#: Domains marked † (clean) in Table II.
CLEAN_DOMAINS = ("restaurants", "citations1", "citations2", "crm")

#: Domains marked ‡ (noisy) in Table II.
NOISY_DOMAINS = ("cosmetics", "software", "music", "beer", "stocks")


def available_domains() -> List[str]:
    """Names of every registered benchmark domain, in Table II order."""
    return list(DOMAIN_NAMES)


def domain_spec(name: str, scale: float = 1.0) -> DomainSpec:
    """Return the (optionally scaled) spec for ``name``."""
    try:
        builder = _BUILDERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown domain {name!r}; available: {', '.join(DOMAIN_NAMES)}"
        ) from exc
    spec = builder()
    return spec.scaled(scale) if scale != 1.0 else spec


def load_domain(name: str, scale: float = 1.0, seed: Optional[int] = None) -> GeneratedDomain:
    """Generate one benchmark domain.

    Parameters
    ----------
    name:
        One of :data:`DOMAIN_NAMES`.
    scale:
        Multiplier on table and pair-set sizes (1.0 = default reduced sizes).
    seed:
        Seed of the generation; defaults to a per-domain constant so repeated
        calls return identical datasets.
    """
    spec = domain_spec(name, scale=scale)
    if seed is None:
        # A deterministic per-domain seed (str hash() is randomised per process).
        seed = zlib.crc32(name.encode("utf-8")) % (2 ** 31)
    return SyntheticDomainGenerator(spec, seed=seed).generate()


def load_all_domains(scale: float = 1.0, seed: Optional[int] = None) -> Dict[str, GeneratedDomain]:
    """Generate every benchmark domain keyed by name."""
    return {name: load_domain(name, scale=scale, seed=seed) for name in DOMAIN_NAMES}
