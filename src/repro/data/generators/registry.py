"""Registry of the nine benchmark domains and a convenience loader."""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.data.generators import domains
from repro.data.generators.base import DomainSpec, GeneratedDomain, SyntheticDomainGenerator
from repro.data.schema import Record

_BUILDERS: Dict[str, Callable[[], DomainSpec]] = {
    "restaurants": domains.restaurants,
    "citations1": domains.citations1,
    "citations2": domains.citations2,
    "cosmetics": domains.cosmetics,
    "software": domains.software,
    "music": domains.music,
    "beer": domains.beer,
    "stocks": domains.stocks,
    "crm": domains.crm,
}

#: Domain order used by the paper's tables.
DOMAIN_NAMES: List[str] = list(_BUILDERS)

#: Domains marked † (clean) in Table II.
CLEAN_DOMAINS = ("restaurants", "citations1", "citations2", "crm")

#: Domains marked ‡ (noisy) in Table II.
NOISY_DOMAINS = ("cosmetics", "software", "music", "beer", "stocks")


def available_domains() -> List[str]:
    """Names of every registered benchmark domain, in Table II order."""
    return list(DOMAIN_NAMES)


def domain_spec(name: str, scale: float = 1.0) -> DomainSpec:
    """Return the (optionally scaled) spec for ``name``."""
    try:
        builder = _BUILDERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown domain {name!r}; available: {', '.join(DOMAIN_NAMES)}"
        ) from exc
    spec = builder()
    return spec.scaled(scale) if scale != 1.0 else spec


def load_domain(name: str, scale: float = 1.0, seed: Optional[int] = None) -> GeneratedDomain:
    """Generate one benchmark domain.

    Parameters
    ----------
    name:
        One of :data:`DOMAIN_NAMES`.
    scale:
        Multiplier on table and pair-set sizes (1.0 = default reduced sizes).
    seed:
        Seed of the generation; defaults to a per-domain constant so repeated
        calls return identical datasets.
    """
    spec = domain_spec(name, scale=scale)
    if seed is None:
        # A deterministic per-domain seed (str hash() is randomised per process).
        seed = zlib.crc32(name.encode("utf-8")) % (2 ** 31)
    return SyntheticDomainGenerator(spec, seed=seed).generate()


def load_all_domains(scale: float = 1.0, seed: Optional[int] = None) -> Dict[str, GeneratedDomain]:
    """Generate every benchmark domain keyed by name."""
    return {name: load_domain(name, scale=scale, seed=seed) for name in DOMAIN_NAMES}


def append_rows(
    domain: GeneratedDomain,
    side: str = "right",
    rows: int = 32,
    seed: Optional[int] = None,
) -> List[Record]:
    """Deterministically extend one table of a generated domain *in place*.

    The growing-table counterpart of :func:`load_domain`: tests and
    benchmarks that exercise incremental resolution need the same task
    object to gain rows between runs, not a regenerated lookalike.  New
    records are fresh entities drawn from the domain's own factory (right-
    side rows pass through the spec's corruption model, like the generator's
    right-only records), with record and entity ids continuing the existing
    numbering — so labeled splits, the duplicate map and all previously
    issued record ids stay valid.

    ``seed`` defaults to a CRC of the domain name, side and current table
    size, so two identically generated domains extended by the same call
    receive identical rows, while successive appends to one domain differ.
    Returns the appended records.
    """
    if rows <= 0:
        raise ValueError("rows must be positive")
    if side == "left":
        table, prefix = domain.task.left, "l"
    elif side == "right":
        table, prefix = domain.task.right, "r"
    else:
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    spec = domain.spec
    start = len(table)
    if seed is None:
        seed = zlib.crc32(f"{domain.name}-append-{side}-{start}".encode("utf-8")) % (2 ** 31)
    rng = np.random.default_rng(seed)
    numeric = list(spec.numeric_attributes)
    appended: List[Record] = []
    for offset in range(rows):
        values = tuple(spec.entity_factory(rng))
        if side == "right" and spec.corruption is not None:
            values = tuple(spec.corruption.corrupt_record_values(list(values), rng, numeric))
        record = Record(
            record_id=f"{prefix}{start + offset}",
            values=values,
            entity_id=f"{domain.name}-append-{side}-e{start + offset}",
        )
        table.add(record)
        appended.append(record)
    return appended
