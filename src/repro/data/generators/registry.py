"""Registry of the nine benchmark domains and a convenience loader."""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.data.generators import domains
from repro.data.generators.base import DomainSpec, GeneratedDomain, SyntheticDomainGenerator
from repro.data.schema import Record

_BUILDERS: Dict[str, Callable[[], DomainSpec]] = {
    "restaurants": domains.restaurants,
    "citations1": domains.citations1,
    "citations2": domains.citations2,
    "cosmetics": domains.cosmetics,
    "software": domains.software,
    "music": domains.music,
    "beer": domains.beer,
    "stocks": domains.stocks,
    "crm": domains.crm,
}

#: Domain order used by the paper's tables.
DOMAIN_NAMES: List[str] = list(_BUILDERS)

#: Domains marked † (clean) in Table II.
CLEAN_DOMAINS = ("restaurants", "citations1", "citations2", "crm")

#: Domains marked ‡ (noisy) in Table II.
NOISY_DOMAINS = ("cosmetics", "software", "music", "beer", "stocks")


def available_domains() -> List[str]:
    """Names of every registered benchmark domain, in Table II order."""
    return list(DOMAIN_NAMES)


def domain_spec(name: str, scale: float = 1.0) -> DomainSpec:
    """Return the (optionally scaled) spec for ``name``."""
    try:
        builder = _BUILDERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown domain {name!r}; available: {', '.join(DOMAIN_NAMES)}"
        ) from exc
    spec = builder()
    return spec.scaled(scale) if scale != 1.0 else spec


def load_domain(name: str, scale: float = 1.0, seed: Optional[int] = None) -> GeneratedDomain:
    """Generate one benchmark domain.

    Parameters
    ----------
    name:
        One of :data:`DOMAIN_NAMES`.
    scale:
        Multiplier on table and pair-set sizes (1.0 = default reduced sizes).
    seed:
        Seed of the generation; defaults to a per-domain constant so repeated
        calls return identical datasets.
    """
    spec = domain_spec(name, scale=scale)
    if seed is None:
        # A deterministic per-domain seed (str hash() is randomised per process).
        seed = zlib.crc32(name.encode("utf-8")) % (2 ** 31)
    return SyntheticDomainGenerator(spec, seed=seed).generate()


def load_all_domains(scale: float = 1.0, seed: Optional[int] = None) -> Dict[str, GeneratedDomain]:
    """Generate every benchmark domain keyed by name."""
    return {name: load_domain(name, scale=scale, seed=seed) for name in DOMAIN_NAMES}


def append_rows(
    domain: GeneratedDomain,
    side: str = "right",
    rows: int = 32,
    seed: Optional[int] = None,
) -> List[Record]:
    """Deterministically extend one table of a generated domain *in place*.

    The growing-table counterpart of :func:`load_domain`: tests and
    benchmarks that exercise incremental resolution need the same task
    object to gain rows between runs, not a regenerated lookalike.  New
    records are fresh entities drawn from the domain's own factory (right-
    side rows pass through the spec's corruption model, like the generator's
    right-only records), with record and entity ids continuing the existing
    numbering — so labeled splits, the duplicate map and all previously
    issued record ids stay valid.

    ``seed`` defaults to a CRC of the domain name, side and current table
    size, so two identically generated domains extended by the same call
    receive identical rows, while successive appends to one domain differ.
    Returns the appended records.
    """
    if rows <= 0:
        raise ValueError("rows must be positive")
    if side == "left":
        table, prefix = domain.task.left, "l"
    elif side == "right":
        table, prefix = domain.task.right, "r"
    else:
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    spec = domain.spec
    start = len(table)
    if seed is None:
        seed = zlib.crc32(f"{domain.name}-append-{side}-{start}".encode("utf-8")) % (2 ** 31)
    rng = np.random.default_rng(seed)
    numeric = list(spec.numeric_attributes)
    appended: List[Record] = []
    # Numbering continues past every id ever issued (the high-water mark kept
    # by this helper and delete_rows), never merely from the table size — a
    # deleted id must stay dead, not be resurrected for an unrelated entity.
    number = _issue_high_water(domain, side, table, prefix)
    for _ in range(rows):
        values = tuple(spec.entity_factory(rng))
        if side == "right" and spec.corruption is not None:
            values = tuple(spec.corruption.corrupt_record_values(list(values), rng, numeric))
        while f"{prefix}{number}" in table:
            number += 1
        record = Record(
            record_id=f"{prefix}{number}",
            values=values,
            entity_id=f"{domain.name}-append-{side}-e{number}",
        )
        table.add(record)
        appended.append(record)
        number += 1
    domain.task.metadata[f"_issued_{side}_rows"] = number
    return appended


def _issue_high_water(domain: GeneratedDomain, side: str, table, prefix: str) -> int:
    """The lowest row number never issued for one side of a domain.

    Combines three sources: the table size (the generator numbers densely),
    the highest numeric suffix still present (appends past earlier
    deletions), and the mark recorded in the task metadata by previous
    :func:`append_rows`/:func:`delete_rows` calls (which alone remembers
    trailing deletions).
    """
    best = len(table)
    for record_id in table.record_ids():
        if record_id.startswith(prefix):
            suffix = record_id[len(prefix):]
            if suffix.isdigit():
                best = max(best, int(suffix) + 1)
    return max(best, int(domain.task.metadata.get(f"_issued_{side}_rows", 0)))


def _mutation_table(domain: GeneratedDomain, side: str):
    if side == "left":
        return domain.task.left
    if side == "right":
        return domain.task.right
    raise ValueError(f"side must be 'left' or 'right', got {side!r}")


def mutate_rows(
    domain: GeneratedDomain,
    side: str = "right",
    rows: int = 8,
    seed: Optional[int] = None,
) -> List[Record]:
    """Deterministically edit rows of a generated domain *in place*.

    The in-place-edit counterpart of :func:`append_rows`: each chosen row
    keeps its record id and position but receives freshly drawn values from
    the domain's own factory (right-side rows pass through the spec's
    corruption model) and a new entity id — upsert semantics, the row now
    describes a different entity.  The new values are guaranteed to differ
    from the old ones, so every edited row is genuinely dirty to the
    incremental-resolution machinery.

    ``seed`` defaults to a CRC of the domain name, side, table size and
    mutation revision, so two identically generated-and-mutated domains
    receive identical edits while successive calls on one domain differ.
    Returns the edited (new-state) records.
    """
    if rows <= 0:
        raise ValueError("rows must be positive")
    table = _mutation_table(domain, side)
    if rows > len(table):
        raise ValueError(f"cannot edit {rows} rows of a {len(table)}-row table")
    spec = domain.spec
    revision = table.revision
    if seed is None:
        seed = zlib.crc32(
            f"{domain.name}-mutate-{side}-{len(table)}-{revision}".encode("utf-8")
        ) % (2 ** 31)
    rng = np.random.default_rng(seed)
    numeric = list(spec.numeric_attributes)
    positions = sorted(int(p) for p in rng.choice(len(table), size=rows, replace=False))
    records = table.records()
    edited: List[Record] = []
    for position in positions:
        old = records[position]
        values = old.values
        while values == old.values:
            values = tuple(spec.entity_factory(rng))
            if side == "right" and spec.corruption is not None:
                values = tuple(spec.corruption.corrupt_record_values(list(values), rng, numeric))
        record = Record(
            record_id=old.record_id,
            values=values,
            entity_id=f"{domain.name}-edit-{side}-r{revision}-p{position}",
        )
        table.replace(record)
        edited.append(record)
    return edited


def delete_rows(
    domain: GeneratedDomain,
    side: str = "right",
    rows: int = 8,
    seed: Optional[int] = None,
) -> List[Record]:
    """Deterministically delete rows of a generated domain *in place*.

    Rows are chosen uniformly without replacement and removed from the
    table; later rows shift up, exercising the position-shift handling of
    the incremental machinery.  Labeled splits referencing a deleted record
    become stale — callers that still need them should fit matchers before
    deleting (the registry tests do).

    ``seed`` defaults like :func:`mutate_rows`.  Returns the removed
    records, in ascending original-position order.
    """
    if rows <= 0:
        raise ValueError("rows must be positive")
    table = _mutation_table(domain, side)
    if rows >= len(table):
        raise ValueError(f"cannot delete {rows} of {len(table)} rows (table must survive)")
    if seed is None:
        seed = zlib.crc32(
            f"{domain.name}-delete-{side}-{len(table)}-{table.revision}".encode("utf-8")
        ) % (2 ** 31)
    rng = np.random.default_rng(seed)
    prefix = "l" if side == "left" else "r"
    # Record the issue mark *before* removing: a deleted trailing id would
    # otherwise look available again to the next append_rows.
    domain.task.metadata[f"_issued_{side}_rows"] = _issue_high_water(
        domain, side, table, prefix
    )
    positions = sorted(int(p) for p in rng.choice(len(table), size=rows, replace=False))
    records = table.records()
    return [table.remove(records[position].record_id) for position in positions]
