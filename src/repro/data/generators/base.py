"""Framework for synthesising benchmark ER domains.

The paper evaluates on nine datasets (Table II) drawn from the DeepMatcher
benchmark plus two private ones.  Those files are not redistributable and are
unavailable offline, so this module builds synthetic stand-ins that preserve
the properties the evaluation depends on:

* two tables with aligned attributes and a hidden ground-truth mapping of
  records to real-world entities;
* duplicates that are *perturbed* versions of each other (typos, missing
  values, dropped tokens), with clean (†) vs noisy (‡) corruption levels;
* labeled train/validation/test pair sets containing both easy negatives and
  hard negatives (textually similar non-duplicates such as the
  same-song-different-album example of Table I in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.generators.corruption import CorruptionModel
from repro.data.pairs import DatasetSplits, LabeledPair, PairSet
from repro.data.schema import ERTask, Record, Table

EntityFactory = Callable[[np.random.Generator], Tuple[str, ...]]
VariantFactory = Callable[[Tuple[str, ...], np.random.Generator], Tuple[str, ...]]


@dataclass
class PaperStats:
    """The sizes reported in Table II of the paper, kept for reference."""

    cardinality: Tuple[int, int]
    arity: int
    training: int
    test: int


@dataclass
class DomainSpec:
    """Everything needed to synthesise one benchmark domain."""

    name: str
    attributes: Tuple[str, ...]
    entity_factory: EntityFactory
    clean: bool
    numeric_attributes: Tuple[bool, ...] = ()
    hard_negative_factory: Optional[VariantFactory] = None
    corruption: Optional[CorruptionModel] = None
    left_size: int = 200
    right_size: int = 200
    overlap_fraction: float = 0.5
    train_size: int = 300
    valid_size: int = 60
    test_size: int = 100
    positive_fraction: float = 0.25
    description: str = ""
    paper_stats: Optional[PaperStats] = None

    def __post_init__(self) -> None:
        if not self.numeric_attributes:
            self.numeric_attributes = tuple(False for _ in self.attributes)
        if len(self.numeric_attributes) != len(self.attributes):
            raise ValueError("numeric_attributes must align with attributes")
        if self.corruption is None:
            self.corruption = CorruptionModel.clean() if self.clean else CorruptionModel.noisy()
        if not 0.0 < self.overlap_fraction <= 1.0:
            raise ValueError("overlap_fraction must be in (0, 1]")
        if not 0.0 < self.positive_fraction < 1.0:
            raise ValueError("positive_fraction must be in (0, 1)")

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def scaled(self, scale: float) -> "DomainSpec":
        """Return a copy with table and pair-set sizes multiplied by ``scale``."""
        def _s(value: int, minimum: int) -> int:
            return max(minimum, int(round(value * scale)))

        return DomainSpec(
            name=self.name,
            attributes=self.attributes,
            entity_factory=self.entity_factory,
            clean=self.clean,
            numeric_attributes=self.numeric_attributes,
            hard_negative_factory=self.hard_negative_factory,
            corruption=self.corruption,
            left_size=_s(self.left_size, 30),
            right_size=_s(self.right_size, 30),
            overlap_fraction=self.overlap_fraction,
            train_size=_s(self.train_size, 40),
            valid_size=_s(self.valid_size, 12),
            test_size=_s(self.test_size, 20),
            positive_fraction=self.positive_fraction,
            description=self.description,
            paper_stats=self.paper_stats,
        )


@dataclass
class GeneratedDomain:
    """The output of the generator: the ER task plus its labeled splits."""

    task: ERTask
    splits: DatasetSplits
    spec: DomainSpec
    duplicate_map: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.task.name


class SyntheticDomainGenerator:
    """Builds a :class:`GeneratedDomain` from a :class:`DomainSpec`.

    The generation procedure:

    1. sample canonical entities from the spec's factory;
    2. split entities into left-only, right-only and overlapping sets so the
       two tables reach their target cardinalities;
    3. write the canonical values into the left table and *corrupted*
       duplicates into the right table for overlapping entities;
    4. build the labeled pair pool: all duplicate pairs as positives, plus
       hard negatives (perturbed non-duplicates and most-token-overlapping
       cross-entity pairs) and random negatives;
    5. split the pool into train/validation/test, stratified by label.
    """

    def __init__(self, spec: DomainSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    # ------------------------------------------------------------------
    def generate(self) -> GeneratedDomain:
        rng = np.random.default_rng(self.seed)
        spec = self.spec

        overlap = max(2, int(round(min(spec.left_size, spec.right_size) * spec.overlap_fraction)))
        left_only = spec.left_size - overlap
        right_only = spec.right_size - overlap
        total_entities = overlap + left_only + right_only

        entities = [spec.entity_factory(rng) for _ in range(total_entities)]
        entity_ids = [f"{spec.name}-e{i}" for i in range(total_entities)]

        left_table = Table(f"{spec.name}_left", spec.attributes)
        right_table = Table(f"{spec.name}_right", spec.attributes)
        duplicate_map: Dict[str, str] = {}

        numeric = list(spec.numeric_attributes)
        corruption = spec.corruption

        # Overlapping entities: canonical on the left, corrupted on the right.
        for i in range(overlap):
            left_id = f"l{i}"
            right_id = f"r{i}"
            left_table.add(Record(left_id, tuple(entities[i]), entity_ids[i]))
            corrupted = corruption.corrupt_record_values(list(entities[i]), rng, numeric)
            right_table.add(Record(right_id, tuple(corrupted), entity_ids[i]))
            duplicate_map[left_id] = right_id

        # Left-only entities.
        for j in range(left_only):
            index = overlap + j
            left_table.add(Record(f"l{overlap + j}", tuple(entities[index]), entity_ids[index]))

        # Right-only entities (lightly corrupted so both tables look alike).
        for j in range(right_only):
            index = overlap + left_only + j
            corrupted = corruption.corrupt_record_values(list(entities[index]), rng, numeric)
            right_table.add(Record(f"r{overlap + j}", tuple(corrupted), entity_ids[index]))

        task = ERTask(
            name=spec.name,
            left=left_table,
            right=right_table,
            clean=spec.clean,
            description=spec.description,
            metadata={
                "paper_stats": spec.paper_stats,
                "overlap": overlap,
            },
        )

        pool = self._build_pair_pool(task, duplicate_map, rng)
        splits = self._split(pool, rng)
        return GeneratedDomain(task=task, splits=splits, spec=spec, duplicate_map=duplicate_map)

    # ------------------------------------------------------------------
    def _build_pair_pool(
        self,
        task: ERTask,
        duplicate_map: Dict[str, str],
        rng: np.random.Generator,
    ) -> PairSet:
        spec = self.spec
        total_needed = spec.train_size + spec.valid_size + spec.test_size
        num_positives = min(len(duplicate_map), max(4, int(round(total_needed * spec.positive_fraction))))
        num_negatives = total_needed - num_positives

        pool = PairSet()
        positive_items = list(duplicate_map.items())
        rng.shuffle(positive_items)
        for left_id, right_id in positive_items[:num_positives]:
            pool.add(LabeledPair(left_id, right_id, 1))

        hard_target = num_negatives // 2
        hard = self._hard_negatives(task, duplicate_map, hard_target, rng)
        pool.extend(hard)

        left_ids = task.left.record_ids()
        right_ids = task.right.record_ids()
        attempts = 0
        max_attempts = 50 * num_negatives + 100
        while len(pool) < num_positives + num_negatives and attempts < max_attempts:
            attempts += 1
            left_id = left_ids[int(rng.integers(0, len(left_ids)))]
            right_id = right_ids[int(rng.integers(0, len(right_ids)))]
            if task.true_match(left_id, right_id):
                continue
            pool.add(LabeledPair(left_id, right_id, 0))
        return pool

    def _hard_negatives(
        self,
        task: ERTask,
        duplicate_map: Dict[str, str],
        count: int,
        rng: np.random.Generator,
    ) -> List[LabeledPair]:
        """Pick non-duplicate pairs whose values share many tokens.

        These reproduce the "same song, different album" style of confusable
        pairs discussed around Table I of the paper, which is what makes the
        supervised matcher necessary on top of unsupervised representations.
        """
        if count <= 0:
            return []
        left_records = task.left.records()
        right_records = task.right.records()
        sample_left = min(len(left_records), max(20, count * 2))
        sample_right = min(len(right_records), max(20, count * 2))
        left_sample = [left_records[i] for i in rng.choice(len(left_records), sample_left, replace=False)]
        right_sample = [right_records[i] for i in rng.choice(len(right_records), sample_right, replace=False)]

        right_tokens = [(r, set(r.text().lower().split())) for r in right_sample]
        scored: List[Tuple[float, str, str]] = []
        for left in left_sample:
            left_tokens = set(left.text().lower().split())
            if not left_tokens:
                continue
            for right, tokens in right_tokens:
                if left.entity_id == right.entity_id:
                    continue
                if not tokens:
                    continue
                overlap = len(left_tokens & tokens)
                if overlap == 0:
                    continue
                score = overlap / len(left_tokens | tokens)
                scored.append((score, left.record_id, right.record_id))
        scored.sort(key=lambda item: item[0], reverse=True)
        return [LabeledPair(left_id, right_id, 0) for _, left_id, right_id in scored[:count]]

    def _split(self, pool: PairSet, rng: np.random.Generator) -> DatasetSplits:
        spec = self.spec
        shuffled = pool.shuffled(rng)
        positives = shuffled.positives().pairs()
        negatives = shuffled.negatives().pairs()

        def take(pairs: List[LabeledPair], fraction: float) -> Tuple[List[LabeledPair], List[LabeledPair]]:
            cut = max(1, int(round(len(pairs) * fraction))) if pairs else 0
            return pairs[:cut], pairs[cut:]

        total = spec.train_size + spec.valid_size + spec.test_size
        train_frac = spec.train_size / total
        valid_frac = spec.valid_size / total

        train_pos, rest_pos = take(positives, train_frac)
        valid_pos, test_pos = take(rest_pos, valid_frac / (1 - train_frac) if train_frac < 1 else 0.5)
        train_neg, rest_neg = take(negatives, train_frac)
        valid_neg, test_neg = take(rest_neg, valid_frac / (1 - train_frac) if train_frac < 1 else 0.5)

        return DatasetSplits(
            train=PairSet(train_pos + train_neg).shuffled(rng),
            validation=PairSet(valid_pos + valid_neg).shuffled(rng),
            test=PairSet(test_pos + test_neg).shuffled(rng),
        )


def compose(rng: np.random.Generator, pool: Sequence[str], n_min: int = 1, n_max: int = 3) -> str:
    """Draw ``n_min``..``n_max`` distinct tokens from ``pool`` and join them."""
    n = int(rng.integers(n_min, n_max + 1))
    n = min(n, len(pool))
    indices = rng.choice(len(pool), size=n, replace=False)
    return " ".join(pool[i] for i in indices)


def pick(rng: np.random.Generator, pool: Sequence[str]) -> str:
    """Draw a single token from ``pool``."""
    return pool[int(rng.integers(0, len(pool)))]
