"""Token vocabularies used to synthesise realistic attribute values.

Each domain generator composes entity descriptions from these word pools.
They deliberately contain overlapping tokens across entities (brand names,
city names, common nouns) so that non-duplicate records can still be textually
similar — the situation that makes entity resolution hard and that the
paper's latent-space matcher is designed to resolve.
"""

from __future__ import annotations

FIRST_NAMES = [
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael", "linda",
    "william", "elizabeth", "david", "barbara", "richard", "susan", "joseph", "jessica",
    "thomas", "sarah", "charles", "karen", "daniel", "nancy", "matthew", "lisa",
    "anthony", "betty", "mark", "margaret", "donald", "sandra", "steven", "ashley",
    "paul", "kimberly", "andrew", "emily", "joshua", "donna", "kenneth", "michelle",
]

LAST_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller", "davis",
    "rodriguez", "martinez", "hernandez", "lopez", "gonzalez", "wilson", "anderson",
    "thomas", "taylor", "moore", "jackson", "martin", "lee", "perez", "thompson",
    "white", "harris", "sanchez", "clark", "ramirez", "lewis", "robinson", "walker",
    "young", "allen", "king", "wright", "scott", "torres", "nguyen", "hill", "flores",
]

CITIES = [
    "new york", "los angeles", "chicago", "houston", "phoenix", "philadelphia",
    "san antonio", "san diego", "dallas", "san jose", "austin", "jacksonville",
    "san francisco", "columbus", "charlotte", "indianapolis", "seattle", "denver",
    "boston", "portland", "manchester", "london", "leeds", "bristol", "glasgow",
]

STREETS = [
    "main st", "oak ave", "park blvd", "maple dr", "cedar ln", "elm st", "pine rd",
    "washington ave", "lake view dr", "sunset blvd", "river rd", "church st",
    "high st", "station rd", "victoria rd", "green ln", "mill ln", "kings rd",
]

CUISINES = [
    "italian", "french", "chinese", "japanese", "mexican", "thai", "indian",
    "american", "mediterranean", "korean", "vietnamese", "spanish", "greek",
    "steakhouse", "seafood", "vegan", "barbecue", "fusion", "bistro", "diner",
]

RESTAURANT_WORDS = [
    "golden", "dragon", "palace", "garden", "house", "grill", "kitchen", "corner",
    "royal", "blue", "little", "old", "river", "terrace", "villa", "cafe", "bistro",
    "tavern", "brasserie", "trattoria", "osteria", "cantina", "delight", "spice",
]

RESEARCH_WORDS = [
    "learning", "database", "query", "optimization", "neural", "network", "deep",
    "distributed", "parallel", "graph", "stream", "index", "transaction", "storage",
    "mining", "clustering", "classification", "embedding", "representation",
    "entity", "resolution", "matching", "integration", "cleaning", "schema",
    "knowledge", "semantic", "probabilistic", "scalable", "efficient", "adaptive",
    "approximate", "incremental", "federated", "variational", "generative",
]

VENUES = [
    "sigmod", "vldb", "icde", "kdd", "www", "cikm", "edbt", "icml", "nips",
    "acl", "emnlp", "aaai", "ijcai", "tkde", "pvldb", "jmlr", "tods", "sigir",
]

BRANDS = [
    "loreal", "nivea", "maybelline", "revlon", "clinique", "lancome", "dior",
    "chanel", "estee lauder", "neutrogena", "olay", "dove", "garnier", "avon",
    "microsoft", "adobe", "oracle", "ibm", "google", "apple", "mozilla", "autodesk",
    "symantec", "intuit", "corel", "mcafee", "norton", "sap", "vmware", "salesforce",
]

COSMETIC_WORDS = [
    "moisturizing", "matte", "liquid", "foundation", "lipstick", "mascara",
    "eyeliner", "serum", "cream", "lotion", "cleanser", "toner", "primer",
    "concealer", "blush", "bronzer", "palette", "shade", "natural", "radiant",
    "hydrating", "long lasting", "waterproof", "spf", "anti aging", "vitamin",
]

COLORS = [
    "red", "crimson", "scarlet", "pink", "rose", "nude", "beige", "ivory", "brown",
    "chocolate", "black", "onyx", "blue", "navy", "teal", "green", "olive", "gold",
    "silver", "bronze", "copper", "plum", "violet", "coral", "peach", "taupe",
]

SOFTWARE_WORDS = [
    "professional", "ultimate", "premium", "standard", "enterprise", "home",
    "student", "edition", "suite", "studio", "creative", "security", "antivirus",
    "office", "photo", "video", "editing", "backup", "recovery", "utilities",
    "windows", "mac", "license", "download", "upgrade", "full version", "bundle",
]

ARTISTS = [
    "coldplay", "radiohead", "beyonce", "rihanna", "eminem", "adele", "drake",
    "madonna", "prince", "nirvana", "metallica", "oasis", "blur", "muse",
    "the beatles", "the rolling stones", "queen", "u2", "abba", "daft punk",
    "kendrick lamar", "taylor swift", "ed sheeran", "bruno mars", "lady gaga",
]

SONG_WORDS = [
    "love", "night", "heart", "dance", "fire", "dream", "light", "shadow", "rain",
    "summer", "midnight", "golden", "paradise", "echo", "silence", "thunder",
    "gravity", "horizon", "velvet", "crystal", "wild", "broken", "forever", "lost",
]

GENRES = [
    "rock", "pop", "hip hop", "electronic", "jazz", "classical", "indie", "folk",
    "metal", "r&b", "soul", "country", "reggae", "punk", "ambient", "house",
]

BREWERIES = [
    "sierra nevada", "stone brewing", "dogfish head", "founders", "bells",
    "lagunitas", "deschutes", "new belgium", "oskar blues", "great divide",
    "brooklyn brewery", "goose island", "anchor brewing", "ballast point",
    "firestone walker", "russian river", "three floyds", "cigar city",
]

BEER_STYLES = [
    "ipa", "double ipa", "pale ale", "stout", "imperial stout", "porter", "lager",
    "pilsner", "wheat beer", "saison", "sour ale", "amber ale", "brown ale",
    "barleywine", "hefeweizen", "gose", "kolsch", "tripel", "dubbel",
]

BEER_WORDS = [
    "hoppy", "citra", "mosaic", "galaxy", "tropical", "hazy", "juicy", "crisp",
    "roasted", "chocolate", "coffee", "vanilla", "barrel aged", "bourbon",
    "dry hopped", "session", "imperial", "vintage", "reserve", "small batch",
]

COMPANIES = [
    "acme", "globex", "initech", "umbrella", "stark", "wayne", "wonka", "tyrell",
    "cyberdyne", "aperture", "soylent", "massive dynamic", "hooli", "pied piper",
    "dunder mifflin", "sterling cooper", "oceanic", "virtucon", "zorg", "monarch",
]

SECTORS = [
    "technology", "healthcare", "finance", "energy", "utilities", "materials",
    "industrials", "consumer staples", "consumer discretionary", "real estate",
    "telecommunications", "aerospace", "automotive", "retail", "pharmaceutical",
]

EXCHANGES = ["nyse", "nasdaq", "lse", "tsx", "asx", "hkex", "euronext"]

PRODUCT_CATEGORIES = [
    "dresses", "jackets", "jeans", "shirts", "skirts", "knitwear", "footwear",
    "accessories", "activewear", "outerwear", "swimwear", "loungewear",
]

JOB_TITLES = [
    "data scientist", "software engineer", "account manager", "product manager",
    "sales director", "marketing analyst", "operations lead", "finance manager",
    "customer success manager", "head of engineering", "consultant", "designer",
]

EMAIL_DOMAINS = [
    "gmail.com", "yahoo.com", "outlook.com", "hotmail.com", "icloud.com",
    "protonmail.com", "mail.com", "aol.com", "live.com", "me.com",
]

STREET_TYPES = ["street", "avenue", "road", "lane", "drive", "boulevard", "close", "way"]
