"""Value-corruption models used by the synthetic dataset generators.

The paper distinguishes clean datasets (marked † in Table II: few missing
values) from noisy ones (marked ‡: many missing values, unstructured
attributes).  The corruption model here reproduces that distinction: duplicate
records of the same entity receive perturbed attribute values — typos,
dropped or abbreviated tokens, case changes, missing values — with rates
controlled per domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data.schema import MISSING

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def random_typo(word: str, rng: np.random.Generator) -> str:
    """Apply one character-level edit (substitute, delete, insert or swap)."""
    if len(word) < 2:
        return word
    action = rng.integers(0, 4)
    position = int(rng.integers(0, len(word)))
    letter = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
    if action == 0:  # substitution
        return word[:position] + letter + word[position + 1:]
    if action == 1:  # deletion
        return word[:position] + word[position + 1:]
    if action == 2:  # insertion
        return word[:position] + letter + word[position:]
    # adjacent transposition
    if position == len(word) - 1:
        position -= 1
    return word[:position] + word[position + 1] + word[position] + word[position + 2:]


def abbreviate(word: str, rng: np.random.Generator) -> str:
    """Abbreviate a token: keep a prefix, optionally with a trailing dot."""
    if len(word) <= 3:
        return word
    keep = int(rng.integers(1, min(4, len(word) - 1)))
    suffix = "." if rng.random() < 0.5 else ""
    return word[:keep] + suffix


def drop_token(tokens: List[str], rng: np.random.Generator) -> List[str]:
    """Remove one token from a multi-token value."""
    if len(tokens) <= 1:
        return tokens
    index = int(rng.integers(0, len(tokens)))
    return tokens[:index] + tokens[index + 1:]


def reorder_tokens(tokens: List[str], rng: np.random.Generator) -> List[str]:
    """Swap two adjacent tokens."""
    if len(tokens) <= 1:
        return tokens
    index = int(rng.integers(0, len(tokens) - 1))
    reordered = list(tokens)
    reordered[index], reordered[index + 1] = reordered[index + 1], reordered[index]
    return reordered


def change_case(value: str, rng: np.random.Generator) -> str:
    """Randomly change capitalisation of the whole value."""
    choice = rng.integers(0, 3)
    if choice == 0:
        return value.upper()
    if choice == 1:
        return value.lower()
    return value.title()


@dataclass
class CorruptionModel:
    """Probabilities governing how a duplicate's attribute values are mangled.

    Each rate is applied independently per attribute value.  The ``noisy``
    preset corresponds to the ‡ datasets of the paper; ``clean`` to †.
    """

    typo_rate: float = 0.15
    abbreviation_rate: float = 0.05
    token_drop_rate: float = 0.05
    token_reorder_rate: float = 0.05
    case_change_rate: float = 0.10
    missing_rate: float = 0.02
    numeric_jitter_rate: float = 0.10
    numeric_jitter_scale: float = 0.02

    def __post_init__(self) -> None:
        for name, value in vars(self).items():
            if name.endswith("_rate") and not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    # ------------------------------------------------------------------
    @staticmethod
    def clean() -> "CorruptionModel":
        """Light perturbation: the † datasets (Restaurants, Citations, CRM)."""
        return CorruptionModel(
            typo_rate=0.08,
            abbreviation_rate=0.04,
            token_drop_rate=0.03,
            token_reorder_rate=0.03,
            case_change_rate=0.08,
            missing_rate=0.01,
        )

    @staticmethod
    def noisy() -> "CorruptionModel":
        """Heavy perturbation: the ‡ datasets (Cosmetics, Software, Music...)."""
        return CorruptionModel(
            typo_rate=0.22,
            abbreviation_rate=0.12,
            token_drop_rate=0.15,
            token_reorder_rate=0.08,
            case_change_rate=0.15,
            missing_rate=0.18,
            numeric_jitter_rate=0.20,
        )

    # ------------------------------------------------------------------
    def corrupt_value(self, value: str, rng: np.random.Generator, numeric: bool = False) -> str:
        """Return a perturbed version of ``value`` for a duplicate record."""
        if value == MISSING:
            return value
        if rng.random() < self.missing_rate:
            return MISSING
        if numeric:
            return self._corrupt_numeric(value, rng)

        tokens = value.split()
        if rng.random() < self.token_drop_rate:
            tokens = drop_token(tokens, rng)
        if rng.random() < self.token_reorder_rate:
            tokens = reorder_tokens(tokens, rng)
        tokens = [
            self._corrupt_token(token, rng)
            for token in tokens
        ]
        corrupted = " ".join(tokens) if tokens else MISSING
        if corrupted != MISSING and rng.random() < self.case_change_rate:
            corrupted = change_case(corrupted, rng)
        return corrupted

    def _corrupt_token(self, token: str, rng: np.random.Generator) -> str:
        if rng.random() < self.abbreviation_rate:
            return abbreviate(token, rng)
        if rng.random() < self.typo_rate:
            return random_typo(token, rng)
        return token

    def _corrupt_numeric(self, value: str, rng: np.random.Generator) -> str:
        try:
            number = float(value)
        except ValueError:
            return self.corrupt_value(value, rng, numeric=False)
        if rng.random() < self.numeric_jitter_rate:
            jitter = 1.0 + rng.normal(0.0, self.numeric_jitter_scale)
            number *= jitter
        if float(number).is_integer() and abs(number) < 1e12:
            return str(int(round(number)))
        return f"{number:.2f}"

    def corrupt_record_values(
        self,
        values: List[str],
        rng: np.random.Generator,
        numeric_attributes: Optional[List[bool]] = None,
    ) -> List[str]:
        """Corrupt every attribute value of a duplicate record."""
        numeric_attributes = numeric_attributes or [False] * len(values)
        return [
            self.corrupt_value(value, rng, numeric=numeric)
            for value, numeric in zip(values, numeric_attributes)
        ]
