"""The nine benchmark domains of Table II, synthesised.

Each builder returns a :class:`repro.data.generators.base.DomainSpec` whose
attribute structure, clean/noisy character and relative sizes follow the
paper's Table II.  Cardinalities and pair-set sizes default to roughly one
tenth of the paper's (the reproduction runs on CPU); the registry accepts a
``scale`` factor to grow or shrink them.

Domains marked clean (†): Restaurants, Citations 1, Citations 2, CRM.
Domains marked noisy (‡): Cosmetics, Software, Music, Beer, Stocks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.generators import vocabularies as vocab
from repro.data.generators.base import DomainSpec, PaperStats, compose, pick


# ----------------------------------------------------------------------
# Entity factories
# ----------------------------------------------------------------------
def _restaurant_entity(rng: np.random.Generator) -> Tuple[str, ...]:
    name = f"{pick(rng, vocab.RESTAURANT_WORDS)} {pick(rng, vocab.RESTAURANT_WORDS)} {pick(rng, vocab.CUISINES)}"
    address = f"{int(rng.integers(1, 999))} {pick(rng, vocab.STREETS)}"
    city = pick(rng, vocab.CITIES)
    phone = f"{rng.integers(200, 999)}-{rng.integers(100, 999)}-{rng.integers(1000, 9999)}"
    cuisine = pick(rng, vocab.CUISINES)
    price = pick(rng, ["$", "$$", "$$$", "$$$$"])
    return (name, address, city, phone, cuisine, price)


def _citation_entity(rng: np.random.Generator) -> Tuple[str, ...]:
    title = compose(rng, vocab.RESEARCH_WORDS, 4, 8)
    authors = ", ".join(
        f"{pick(rng, vocab.FIRST_NAMES)} {pick(rng, vocab.LAST_NAMES)}"
        for _ in range(int(rng.integers(1, 4)))
    )
    venue = pick(rng, vocab.VENUES)
    year = str(int(rng.integers(1995, 2021)))
    return (title, authors, venue, year)


def _cosmetics_entity(rng: np.random.Generator) -> Tuple[str, ...]:
    title = f"{pick(rng, vocab.BRANDS[:14])} {compose(rng, vocab.COSMETIC_WORDS, 2, 4)}"
    color = pick(rng, vocab.COLORS)
    price = f"{rng.uniform(3, 80):.2f}"
    return (title, color, price)


def _software_entity(rng: np.random.Generator) -> Tuple[str, ...]:
    name = f"{pick(rng, vocab.BRANDS[14:])} {compose(rng, vocab.SOFTWARE_WORDS, 2, 5)}"
    price = f"{rng.uniform(10, 900):.2f}"
    description = compose(rng, vocab.SOFTWARE_WORDS, 5, 12)
    return (name, price, description)


def _music_entity(rng: np.random.Generator) -> Tuple[str, ...]:
    song = compose(rng, vocab.SONG_WORDS, 1, 3)
    artist = pick(rng, vocab.ARTISTS)
    album = compose(rng, vocab.SONG_WORDS, 1, 2) + " " + pick(rng, ["deluxe", "live", "remastered", "sessions", "vol 1", "vol 2"])
    year = str(int(rng.integers(1975, 2021)))
    genre = pick(rng, vocab.GENRES)
    length = f"{rng.integers(2, 7)}:{rng.integers(0, 59):02d}"
    price = f"{rng.uniform(0.5, 2.0):.2f}"
    copyright_ = f"(c) {rng.integers(1975, 2021)} {pick(rng, vocab.COMPANIES)} records"
    return (song, artist, album, year, genre, length, price, copyright_)


def _beer_entity(rng: np.random.Generator) -> Tuple[str, ...]:
    name = f"{compose(rng, vocab.BEER_WORDS, 1, 3)} {pick(rng, vocab.BEER_STYLES)}"
    brewery = pick(rng, vocab.BREWERIES)
    style = pick(rng, vocab.BEER_STYLES)
    abv = f"{rng.uniform(3.5, 13.0):.1f}"
    return (name, brewery, style, abv)


def _stocks_entity(rng: np.random.Generator) -> Tuple[str, ...]:
    company = f"{pick(rng, vocab.COMPANIES)} {pick(rng, ['inc', 'corp', 'ltd', 'plc', 'holdings', 'group'])}"
    letters = "abcdefghijklmnopqrstuvwxyz"
    symbol = "".join(letters[int(rng.integers(0, 26))] for _ in range(int(rng.integers(2, 5)))).upper()
    sector = pick(rng, vocab.SECTORS)
    exchange = pick(rng, vocab.EXCHANGES)
    price = f"{rng.uniform(2, 500):.2f}"
    market_cap = f"{rng.uniform(0.1, 900):.1f}"
    dividend = f"{rng.uniform(0, 6):.2f}"
    country = pick(rng, ["usa", "uk", "canada", "germany", "france", "japan", "australia"])
    return (company, symbol, sector, exchange, price, market_cap, dividend, country)


def _crm_entity(rng: np.random.Generator) -> Tuple[str, ...]:
    first = pick(rng, vocab.FIRST_NAMES)
    last = pick(rng, vocab.LAST_NAMES)
    email = f"{first}.{last}@{pick(rng, vocab.EMAIL_DOMAINS)}"
    phone = f"+44 {rng.integers(7000, 7999)} {rng.integers(100000, 999999)}"
    company = pick(rng, vocab.COMPANIES)
    title = pick(rng, vocab.JOB_TITLES)
    street = f"{int(rng.integers(1, 300))} {pick(rng, vocab.LAST_NAMES)} {pick(rng, vocab.STREET_TYPES)}"
    city = pick(rng, vocab.CITIES)
    postcode = f"{pick(rng, ['m', 'sw', 'nw', 'ec', 'wc', 'b', 'ls'])}{rng.integers(1, 30)} {rng.integers(1, 9)}{pick(rng, ['aa', 'bb', 'cd', 'ef', 'gh', 'jk'])}"
    country = "united kingdom"
    segment = pick(rng, ["enterprise", "mid market", "smb", "startup"])
    status = pick(rng, ["active", "churned", "prospect", "lead"])
    notes = compose(rng, vocab.PRODUCT_CATEGORIES, 1, 3)
    return (f"{first} {last}", email, phone, company, title, street, city, postcode, country, segment, status, notes)


# ----------------------------------------------------------------------
# Domain specs (sizes ~1/10 of Table II, scaled further via the registry)
# ----------------------------------------------------------------------
def restaurants() -> DomainSpec:
    """Restaurants (†): clean, 6 attributes — the Fodors/Zagat-style task."""
    return DomainSpec(
        name="restaurants",
        attributes=("name", "address", "city", "phone", "cuisine", "price"),
        entity_factory=_restaurant_entity,
        clean=True,
        left_size=100,
        right_size=80,
        overlap_fraction=0.55,
        train_size=100,
        valid_size=20,
        test_size=40,
        positive_fraction=0.25,
        description="Clean restaurant listings with aligned name/address/phone.",
        paper_stats=PaperStats(cardinality=(533, 331), arity=6, training=567, test=189),
    )


def citations1() -> DomainSpec:
    """Citations 1 (†): clean bibliographic records (DBLP/ACM-style)."""
    return DomainSpec(
        name="citations1",
        attributes=("title", "authors", "venue", "year"),
        entity_factory=_citation_entity,
        clean=True,
        left_size=180,
        right_size=160,
        overlap_fraction=0.5,
        train_size=220,
        valid_size=40,
        test_size=80,
        positive_fraction=0.3,
        description="Clean bibliographic records with title/authors/venue/year.",
        paper_stats=PaperStats(cardinality=(2616, 2294), arity=4, training=7417, test=2473),
    )


def citations2() -> DomainSpec:
    """Citations 2 (†): clean but with a much larger right-hand table."""
    return DomainSpec(
        name="citations2",
        attributes=("title", "authors", "venue", "year"),
        entity_factory=_citation_entity,
        clean=True,
        left_size=140,
        right_size=380,
        overlap_fraction=0.6,
        train_size=300,
        valid_size=50,
        test_size=110,
        positive_fraction=0.2,
        description="Bibliographic task with strongly asymmetric table sizes (DBLP/Scholar-style).",
        paper_stats=PaperStats(cardinality=(2612, 64263), arity=4, training=17223, test=5742),
    )


def cosmetics() -> DomainSpec:
    """Cosmetics (‡): noisy product descriptions, entities differing only in colour."""
    return DomainSpec(
        name="cosmetics",
        attributes=("title", "color", "price"),
        entity_factory=_cosmetics_entity,
        clean=False,
        numeric_attributes=(False, False, True),
        left_size=220,
        right_size=130,
        overlap_fraction=0.45,
        train_size=90,
        valid_size=15,
        test_size=30,
        positive_fraction=0.3,
        description="Noisy cosmetics products; many near-duplicates differ only in colour.",
        paper_stats=PaperStats(cardinality=(11026, 6443), arity=3, training=327, test=81),
    )


def software() -> DomainSpec:
    """Software (‡): three columns, one numeric, long noisy descriptions."""
    return DomainSpec(
        name="software",
        attributes=("name", "price", "description"),
        entity_factory=_software_entity,
        clean=False,
        numeric_attributes=(False, True, False),
        left_size=130,
        right_size=200,
        overlap_fraction=0.45,
        train_size=200,
        valid_size=35,
        test_size=70,
        positive_fraction=0.25,
        description="Noisy software products with free-text descriptions and missing values.",
        paper_stats=PaperStats(cardinality=(1363, 3226), arity=3, training=6874, test=2293),
    )


def music() -> DomainSpec:
    """Music (‡): songs with 8 attributes (the Table I running example)."""
    return DomainSpec(
        name="music",
        attributes=("song", "artist", "album", "year", "genre", "length", "price", "copyright"),
        entity_factory=_music_entity,
        clean=False,
        numeric_attributes=(False, False, False, True, False, False, True, False),
        left_size=220,
        right_size=300,
        overlap_fraction=0.4,
        train_size=90,
        valid_size=15,
        test_size=35,
        positive_fraction=0.3,
        description="Noisy song metadata; same song may appear on different albums.",
        paper_stats=PaperStats(cardinality=(6907, 55923), arity=8, training=321, test=109),
    )


def beer() -> DomainSpec:
    """Beer (‡): noisy craft-beer listings."""
    return DomainSpec(
        name="beer",
        attributes=("name", "brewery", "style", "abv"),
        entity_factory=_beer_entity,
        clean=False,
        numeric_attributes=(False, False, False, True),
        left_size=160,
        right_size=120,
        overlap_fraction=0.45,
        train_size=80,
        valid_size=15,
        test_size=30,
        positive_fraction=0.3,
        description="Noisy craft-beer listings with overlapping style vocabulary.",
        paper_stats=PaperStats(cardinality=(4345, 3000), arity=4, training=268, test=91),
    )


def stocks() -> DomainSpec:
    """Stocks (‡): listed companies with mostly numeric attributes."""
    return DomainSpec(
        name="stocks",
        attributes=("company", "symbol", "sector", "exchange", "price", "market_cap", "dividend", "country"),
        entity_factory=_stocks_entity,
        clean=False,
        numeric_attributes=(False, False, False, False, True, True, True, False),
        left_size=150,
        right_size=280,
        overlap_fraction=0.5,
        train_size=230,
        valid_size=40,
        test_size=70,
        positive_fraction=0.25,
        description="Noisy stock listings dominated by numeric attributes.",
        paper_stats=PaperStats(cardinality=(2768, 21863), arity=8, training=4472, test=1117),
    )


def crm() -> DomainSpec:
    """CRM (†): clean person-contact records, the widest schema (12 attributes)."""
    return DomainSpec(
        name="crm",
        attributes=(
            "name", "email", "phone", "company", "title", "street",
            "city", "postcode", "country", "segment", "status", "notes",
        ),
        entity_factory=_crm_entity,
        clean=True,
        left_size=160,
        right_size=220,
        overlap_fraction=0.5,
        train_size=110,
        valid_size=20,
        test_size=45,
        positive_fraction=0.3,
        description="Clean CRM contact records (stand-in for the private Peak AI dataset).",
        paper_stats=PaperStats(cardinality=(5742, 9683), arity=12, training=440, test=220),
    )
