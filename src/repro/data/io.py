"""CSV persistence for tables and labeled pair sets.

Real deployments of VAER consume relational tables from files; this module
keeps the repo usable on a user's own data (see ``examples/custom_dataset.py``)
and lets the synthetic benchmark datasets be exported for inspection.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Union

from repro.data.pairs import LabeledPair, PairSet
from repro.data.schema import MISSING, Record, Table
from repro.exceptions import SchemaError

PathLike = Union[str, Path]

_ID_COLUMN = "id"
_ENTITY_COLUMN = "entity_id"


def write_table(table: Table, path: PathLike, include_entity_ids: bool = False) -> None:
    """Write ``table`` to a CSV file with an ``id`` column first."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = [_ID_COLUMN, *table.attributes]
    if include_entity_ids:
        header.append(_ENTITY_COLUMN)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for record in table:
            row = [record.record_id, *record.values]
            if include_entity_ids:
                row.append(record.entity_id or "")
            writer.writerow(row)


def read_table(path: PathLike, name: Optional[str] = None) -> Table:
    """Read a CSV file written by :func:`write_table` (or hand-authored).

    The first column is treated as the record id; a trailing ``entity_id``
    column, if present, populates the ground-truth entity identifiers.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise SchemaError(f"empty CSV file: {path}") from exc
        if not header or header[0] != _ID_COLUMN:
            raise SchemaError(f"expected first column {_ID_COLUMN!r} in {path}")
        has_entity = header[-1] == _ENTITY_COLUMN
        attributes = header[1:-1] if has_entity else header[1:]
        table = Table(name or path.stem, attributes)
        for row in reader:
            if not row:
                continue
            record_id = row[0]
            if has_entity:
                values = tuple(v if v else MISSING for v in row[1:-1])
                entity_id = row[-1] or None
            else:
                values = tuple(v if v else MISSING for v in row[1:])
                entity_id = None
            table.add(Record(record_id, values, entity_id))
    return table


def write_pairs(pairs: PairSet, path: PathLike) -> None:
    """Write a labeled pair set as ``left_id,right_id,label`` CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["left_id", "right_id", "label"])
        for pair in pairs:
            writer.writerow([pair.left_id, pair.right_id, pair.label])


def read_pairs(path: PathLike) -> PairSet:
    """Read a labeled pair set written by :func:`write_pairs`."""
    path = Path(path)
    pairs = PairSet()
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["left_id", "right_id", "label"]:
            raise SchemaError(f"unexpected pair-file header in {path}: {header}")
        for row in reader:
            if not row:
                continue
            left_id, right_id, label = row[0], row[1], int(row[2])
            pairs.add(LabeledPair(left_id, right_id, label))
    return pairs
