"""Command-line interface for running VAER experiments.

Usage (after installing the package)::

    python -m repro list-domains
    python -m repro supervised --domain restaurants
    python -m repro active --domain cosmetics --budget 60
    python -m repro transfer --source citations2 --target beer
    python -m repro representation --domain beer --ir lsa
    python -m repro resolve --domain restaurants --k 10 --batch-size 2048
    python -m repro resolve --domain music --workers 4 --cache-dir .repro-cache
    python -m repro resolve --domain music --incremental --append-rows 64
    python -m repro resolve --domain music --incremental --edit-rows 16 --delete-rows 8
    python -m repro plan --domain music --workers 4 --shard-rows 1024
    python -m repro cache list --cache-dir .repro-cache --json
    python -m repro cache prune --cache-dir .repro-cache --dry-run
    python -m repro cache verify --cache-dir .repro-cache
    python -m repro serve --domain music --cache-dir .repro-cache --port 8123
    python -m repro resolve --domain music --distributed 4 --queue-dir /shared/queue
    python -m repro worker --queue-dir /shared/queue

Each sub-command drives the same harness functions the benchmark suite uses,
so the CLI is a convenient way to reproduce a single cell of the paper's
tables without running the whole pytest-benchmark sweep.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence


def _default_workers() -> int:
    """Default worker count: ``REPRO_ENGINE_WORKERS`` when set, else 1.

    Garbage (``abc``), zero and negative values all degrade to 1 — an env
    knob must never make the CLI unusable.
    """
    raw = os.environ.get("REPRO_ENGINE_WORKERS", "").strip()
    try:
        value = int(raw)
    except ValueError:
        return 1
    return value if value > 0 else 1


def _codec_arg(value: str) -> str:
    """Validate ``--codec`` at flag-parse time.

    Runs the engine's own :func:`repro.engine.resolve_codec_name`, so an
    unknown or unusable codec name is refused here — with the usable
    codecs named — instead of surfacing as an error deep inside the
    first encode.
    """
    from repro.engine import resolve_codec_name

    try:
        return resolve_codec_name(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _check_positive(*checks: tuple) -> int:
    """Shared positive-argument validation for every subcommand.

    ``checks`` are ``(flag, value)`` pairs; the first non-positive one
    prints the canonical ``error: <flag> must be positive`` line to stderr
    and returns exit code 2 (argparse's own usage-error convention).
    Returns 0 when every value is positive, so callers can write
    ``if code := _check_positive(...): return code``.
    """
    for flag, value in checks:
        if value <= 0:
            print(f"error: {flag} must be positive", file=sys.stderr)
            return 2
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Cost-effective Variational Active Entity Resolution' (ICDE 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-domains", help="List the nine synthetic benchmark domains (Table II).")

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--domain", default="restaurants", help="Benchmark domain name (see list-domains).")
        sub.add_argument("--ir", default="lsa", choices=["lsa", "w2v", "bert", "embdi"], help="IR type.")
        sub.add_argument("--scale", type=float, default=1.0, help="Dataset size multiplier.")
        sub.add_argument("--seed", type=int, default=7, help="Random seed for the harness.")

    supervised = subparsers.add_parser("supervised", help="Representation + supervised matching (Tables V/VI).")
    add_common(supervised)

    representation = subparsers.add_parser("representation", help="Raw-IR vs VAER nearest-neighbour search (Table IV).")
    add_common(representation)
    representation.add_argument("--k", type=int, default=10, help="Top-K for the neighbour search.")

    active = subparsers.add_parser("active", help="Active-learning run (Table VIII / Figure 5).")
    add_common(active)
    active.add_argument("--budget", type=int, default=60, help="Oracle labeling budget.")
    active.add_argument("--iterations", type=int, default=12, help="Maximum AL iterations.")
    active.add_argument("--strategy", default="vaer", choices=["vaer", "entropy", "random"], help="Sampling strategy.")

    transfer = subparsers.add_parser("transfer", help="Transfer a representation model across domains (Table VII).")
    transfer.add_argument("--source", default="citations2", help="Source domain for the representation model.")
    transfer.add_argument("--target", default="beer", help="Target domain to transfer to.")
    transfer.add_argument("--scale", type=float, default=1.0, help="Dataset size multiplier.")

    resolve = subparsers.add_parser(
        "resolve",
        help="End-to-end streamed resolution (blocking + matching) through the encoding engine.",
    )
    add_common(resolve)
    resolve.add_argument("--k", type=int, default=10, help="Top-K neighbours per record for blocking.")
    resolve.add_argument("--batch-size", type=int, default=2048, help="Candidate pairs scored per batch.")
    resolve.add_argument(
        "--workers", type=int, default=_default_workers(),
        help="Worker pool size for sharded parallel blocking and scoring "
             "(1 = single process; defaults to REPRO_ENGINE_WORKERS when set).",
    )
    resolve.add_argument(
        "--cache-dir", default=None,
        help="Directory for the persistent encoding cache; repeated runs skip table encoding.",
    )
    resolve.add_argument(
        "--codec", default=None, type=_codec_arg,
        help="Encoding storage codec. raw: float64, exact. int8: per-dimension "
             "affine scalar quantization (~8x smaller, near-exact blocking). "
             "pq: trained product quantization (~16-32x smaller codes; blocking "
             "ranks an ADC lookup-table shortlist, matcher still scores "
             "rehydrated floats). Defaults to REPRO_ENGINE_CODEC when set, "
             "else raw.",
    )
    resolve.add_argument(
        "--distributed", type=int, default=0, metavar="N",
        help="Fan resolution out to N worker subprocesses over a shared work "
             "queue (requires --queue-dir; the match stream stays "
             "byte-identical to a serial run).",
    )
    resolve.add_argument(
        "--queue-dir", default=None,
        help="Shared work-queue directory for --distributed (any filesystem "
             "every worker can reach).",
    )
    resolve.add_argument(
        "--incremental", action="store_true",
        help="Resolve, mutate the right table (append/edit/delete), then re-resolve "
             "through the delta engine (only new and dirty rows are encoded and rescored).",
    )
    resolve.add_argument(
        "--append-rows", type=int, default=48,
        help="Rows appended to the right table between the two --incremental passes.",
    )
    resolve.add_argument(
        "--edit-rows", type=int, default=0,
        help="Rows edited in place in the right table between the two --incremental passes.",
    )
    resolve.add_argument(
        "--delete-rows", type=int, default=0,
        help="Rows deleted from the right table between the two --incremental passes.",
    )

    plan = subparsers.add_parser(
        "plan",
        help="Print the encode -> block -> score stage graph a resolve run would execute (no training, no encoding).",
    )
    plan.add_argument("--domain", default="restaurants", help="Benchmark domain name (see list-domains).")
    plan.add_argument("--scale", type=float, default=1.0, help="Dataset size multiplier.")
    plan.add_argument("--k", type=int, default=10, help="Top-K neighbours per record for blocking.")
    plan.add_argument("--batch-size", type=int, default=2048, help="Candidate pairs scored per batch.")
    plan.add_argument(
        "--workers", type=int, default=_default_workers(),
        help="Worker pool size the plan schedules for (defaults to REPRO_ENGINE_WORKERS when set).",
    )
    plan.add_argument("--shard-rows", type=int, default=2048, help="Rows per row-range shard.")

    cache = subparsers.add_parser(
        "cache",
        help="Inspect (list) or clean up (prune) a persistent encoding cache directory.",
    )
    cache.add_argument(
        "action", choices=["list", "prune", "verify"],
        help="list: one summary row per entry; prune: remove stale generations; "
             "verify: audit every manifest and chunk fingerprint without "
             "loading arrays (non-zero exit if anything fails).",
    )
    cache.add_argument("--cache-dir", required=True, help="Root of the persistent encoding cache.")
    cache.add_argument(
        "--dry-run", action="store_true",
        help="With prune: report what would be removed without deleting anything.",
    )
    cache.add_argument(
        "--json", action="store_true",
        help="With list/verify: emit machine-readable JSON instead of a table.",
    )

    serve = subparsers.add_parser(
        "serve",
        help="Run the warm match daemon: load a domain once, answer point "
             "queries and mutations over JSON/HTTP at interactive latency.",
    )
    add_common(serve)
    serve.add_argument("--host", default="127.0.0.1", help="Interface to bind.")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks an ephemeral port; the bound port is printed).",
    )
    serve.add_argument("--k", type=int, default=10, help="Top-K neighbours per record for blocking.")
    serve.add_argument("--batch-size", type=int, default=2048, help="Candidate pairs scored per batch.")
    serve.add_argument(
        "--workers", type=int, default=_default_workers(),
        help="Worker pool size for delta refreshes (defaults to REPRO_ENGINE_WORKERS when set).",
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help="Directory for the persistent encoding cache; warm restarts skip table encoding.",
    )
    serve.add_argument(
        "--codec", default=None, type=_codec_arg,
        help="Encoding storage codec for the resident store. int8 keeps the warm "
             "daemon's encodings quantized (~8x smaller RSS); pq stores trained "
             "product-quantization codes (~16-32x smaller, point queries rank "
             "via ADC lookup tables); raw keeps float64.",
    )

    worker = subparsers.add_parser(
        "worker",
        help="Run one distributed resolution worker: claim stage units from a "
             "shared queue, execute them against the shared encoding cache, "
             "publish content-addressed results.",
    )
    transport = worker.add_mutually_exclusive_group(required=True)
    transport.add_argument(
        "--queue-dir", default=None,
        help="File-lease queue directory (shared-filesystem transport).",
    )
    transport.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="Coordinator socket-queue address (TCP transport).",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=None,
        help="Seconds between claim attempts when the queue is empty.",
    )
    worker.add_argument(
        "--heartbeat-interval", type=float, default=None,
        help="Seconds between lease heartbeats while a unit runs.",
    )
    worker.add_argument(
        "--max-units", type=int, default=None,
        help="Exit after executing this many units (default: serve forever).",
    )
    worker.add_argument(
        "--idle-timeout", type=float, default=None,
        help="Exit after this many seconds without claimable work "
             "(default: serve forever).",
    )

    return parser


def _harness_config(seed: int = 7):
    from repro.eval.harness import HarnessConfig

    return HarnessConfig(
        ir_dim=48, hidden_dim=96, latent_dim=32,
        vae_epochs=10, matcher_epochs=50, al_retrain_epochs=12, seed=seed,
    )


def _cmd_list_domains() -> int:
    from repro.data.generators import DOMAIN_NAMES, domain_spec

    for name in DOMAIN_NAMES:
        spec = domain_spec(name)
        kind = "clean" if spec.clean else "noisy"
        print(f"{name:12s} arity={spec.arity:2d} {kind:5s}  {spec.description}")
    return 0


def _cmd_supervised(args: argparse.Namespace) -> int:
    from repro.data.generators import load_domain
    from repro.eval.harness import run_vaer_matching

    domain = load_domain(args.domain, scale=args.scale)
    row = run_vaer_matching(domain, _harness_config(args.seed), ir_method=args.ir)
    print(f"domain={args.domain} ir={args.ir}")
    print(f"  representation training: {row.representation_seconds:.2f}s")
    print(f"  matcher training:        {row.matching_seconds:.2f}s")
    print(f"  test effectiveness:      {row.metrics}")
    return 0


def _cmd_representation(args: argparse.Namespace) -> int:
    from repro.data.generators import load_domain
    from repro.eval.harness import representation_experiment

    domain = load_domain(args.domain, scale=args.scale)
    results = representation_experiment(
        domain, _harness_config(args.seed), ir_methods=(args.ir,), k=args.k
    )[args.ir]
    print(f"domain={args.domain} ir={args.ir} K={args.k}")
    print(f"  raw IR search : {results['raw']}")
    print(f"  VAER search   : {results['vaer']}")
    return 0


def _cmd_active(args: argparse.Namespace) -> int:
    from repro.data.generators import load_domain
    from repro.eval.harness import active_learning_experiment

    domain = load_domain(args.domain, scale=args.scale)
    row = active_learning_experiment(
        domain, _harness_config(args.seed),
        label_budget=args.budget, iterations=args.iterations,
        strategy=args.strategy, ir_method=args.ir,
    )
    print(f"domain={args.domain} strategy={args.strategy} budget={args.budget}")
    print(f"  bootstrap matcher: {row.bootstrap}")
    print(f"  active matcher   : {row.active}  ({row.labels_used} oracle labels)")
    print(f"  full-data matcher: {row.full}  ({row.full_training_size} given labels)")
    print("  F1 trace:", ", ".join(f"{labels}:{f1:.2f}" for labels, f1 in row.f1_trace))
    return 0


def _cmd_transfer(args: argparse.Namespace) -> int:
    from repro.data.generators import load_domain
    from repro.eval.harness import transfer_experiment

    source = load_domain(args.source, scale=args.scale)
    target = load_domain(args.target, scale=args.scale)
    row = transfer_experiment(source, [target], _harness_config())[0]
    print(f"source={args.source} target={args.target}")
    print(f"  recall@10 local/transferred: {row.local_recall:.2f} / {row.transferred_recall:.2f} ({row.recall_delta:+.2f})")
    print(f"  matching F1 local/transferred: {row.local_f1:.2f} / {row.transferred_f1:.2f} ({row.f1_delta:+.2f})")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.data.generators import load_domain
    from repro.engine import ResolutionPlanner

    code = _check_positive(
        ("--k", args.k), ("--batch-size", args.batch_size),
        ("--workers", args.workers), ("--shard-rows", args.shard_rows),
    )
    if code:
        return code
    domain = load_domain(args.domain, scale=args.scale)
    plan = ResolutionPlanner(
        domain.task,
        k=args.k,
        batch_size=args.batch_size,
        workers=args.workers,
        shard_rows=args.shard_rows,
    ).plan()
    print(plan.describe())
    return 0


def _cmd_resolve(args: argparse.Namespace) -> int:
    from repro.core import VAER
    from repro.data.generators import load_domain
    from repro.eval.reporting import format_engine_stats, format_shard_timings, format_stage_timings
    from repro.eval.timing import ShardTimings, StageTimings, reset_engine_counters

    code = _check_positive(
        ("--batch-size", args.batch_size), ("--k", args.k), ("--workers", args.workers),
    )
    if code:
        return code
    if args.append_rows < 0 or args.edit_rows < 0 or args.delete_rows < 0:
        print("error: --append-rows/--edit-rows/--delete-rows must be non-negative", file=sys.stderr)
        return 2
    if args.incremental and args.append_rows + args.edit_rows + args.delete_rows == 0:
        print("error: --incremental needs at least one of --append-rows/--edit-rows/--delete-rows", file=sys.stderr)
        return 2
    if args.distributed < 0:
        print("error: --distributed must be non-negative", file=sys.stderr)
        return 2
    if args.distributed and not args.queue_dir:
        print("error: --distributed requires --queue-dir", file=sys.stderr)
        return 2
    reset_engine_counters()
    domain = load_domain(args.domain, scale=args.scale)
    config = _harness_config(args.seed).vaer_config(ir_method=args.ir)
    model = VAER(config, cache_dir=args.cache_dir, codec=args.codec)
    model.fit_representation(domain.task)
    model.fit_matcher(domain.splits.train, domain.splits.validation)

    worker_procs = []
    if args.distributed:
        import subprocess

        for _ in range(args.distributed):
            worker_procs.append(subprocess.Popen([
                sys.executable, "-m", "repro", "worker",
                "--queue-dir", args.queue_dir,
            ]))

    def _stream(shard_timings, stage_timings, incremental):
        if args.distributed:
            return model.resolve_distributed(
                workers=args.distributed, queue_dir=args.queue_dir,
                k=args.k, batch_size=args.batch_size,
                shard_timings=shard_timings, stage_timings=stage_timings,
                incremental=incremental,
            )
        return model.resolve_stream(
            k=args.k, batch_size=args.batch_size, workers=args.workers,
            shard_timings=shard_timings, stage_timings=stage_timings,
            incremental=incremental,
        )

    def _reap_workers():
        for proc in worker_procs:
            proc.terminate()
        for proc in worker_procs:
            try:
                proc.wait(timeout=10)
            except Exception:  # pragma: no cover - stuck worker
                proc.kill()

    timings = ShardTimings()
    stage_timings = StageTimings()
    candidates = matches = batches = 0
    try:
        for batch in _stream(
            shard_timings=None if args.incremental else timings,
            stage_timings=stage_timings, incremental=args.incremental,
        ):
            candidates += len(batch)
            matches += len(batch.matches())
            batches += 1
    except BaseException:
        _reap_workers()
        raise

    print(
        f"domain={args.domain} ir={args.ir} k={args.k} batch_size={args.batch_size} "
        f"workers={args.distributed or args.workers} codec={model.codec}"
        + (" transport=file-queue" if args.distributed else "")
    )
    print(f"  candidate pairs scored: {candidates} (in {batches} batches)")
    print(f"  predicted matches:      {matches} (threshold {model.threshold:.2f})")
    if args.cache_dir:
        print(f"  encoding cache:         {args.cache_dir}")

    if args.incremental:
        from repro.data.generators import append_rows, delete_rows, mutate_rows

        mutations = []
        if args.edit_rows:
            mutate_rows(domain, side="right", rows=args.edit_rows)
            mutations.append(f"{args.edit_rows} edited")
        if args.delete_rows:
            delete_rows(domain, side="right", rows=args.delete_rows)
            mutations.append(f"{args.delete_rows} deleted")
        if args.append_rows:
            append_rows(domain, side="right", rows=args.append_rows)
            mutations.append(f"{args.append_rows} appended")
        reset_engine_counters()
        delta_timings = StageTimings()
        candidates = matches = 0
        try:
            for batch in _stream(
                shard_timings=None, stage_timings=delta_timings, incremental=True,
            ):
                candidates += len(batch)
                matches += len(batch.matches())
        except BaseException:
            _reap_workers()
            raise
        print(f"\nIncremental re-resolve after mutating the right table ({', '.join(mutations)} rows)\n")
        print(f"  candidate pairs:        {candidates}")
        print(f"  predicted matches:      {matches}")
        print(f"  rows re-encoded:        {delta_timings.counter('rows_reencoded')}")
        print(f"  rows tombstoned:        {delta_timings.counter('rows_tombstoned')}")
        print(f"  pairs rescored:         {delta_timings.counter('pairs_rescored')} "
              f"(of {candidates} candidates)")
        print("\nDelta-stage timings\n")
        print(format_stage_timings(delta_timings))

    _reap_workers()
    print("\nEngine cache statistics\n")
    print(format_engine_stats())
    if not args.incremental:
        print("\nPer-stage timings (encode -> block -> score, plus dispatch/IPC/merge for pooled runs)\n")
        print(format_stage_timings(stage_timings))
        print("\nPer-shard timings\n")
        print(format_shard_timings(timings))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from repro.engine import PersistentEncodingCache
    from repro.eval.reporting import format_table

    cache = PersistentEncodingCache(args.cache_dir)
    if args.action == "verify":
        reports = cache.verify_entries()
        if args.json:
            print(json.dumps(reports, indent=2, default=str))
        elif not reports:
            print(f"no cache entries under {args.cache_dir}")
        else:
            for report in reports:
                status = "ok" if report["ok"] else "FAIL"
                print(
                    f"{status:4s} {report['task']}/{report['side']}-v{report['version']} "
                    f"({report['layout']}, {report['chunks_checked']} chunk(s) checked)"
                )
                for problem in report["problems"]:
                    print(f"       {problem}")
        return 0 if all(report["ok"] for report in reports) else 1
    if args.action == "prune":
        removed = cache.prune(dry_run=args.dry_run)
        verb = "would prune" if args.dry_run else "pruned"
        print(
            f"{verb} {removed['entries']} stale entr(ies) and unreferenced chunks: "
            f"{removed['files']} file(s), {removed['bytes']} bytes"
        )
        by_codec = removed.get("bytes_by_codec") or {}
        for codec in sorted(by_codec):
            label = "reclaimable" if args.dry_run else "reclaimed"
            print(f"  {label} from codec={codec}: {by_codec[codec]} bytes")
        return 0
    rows = cache.describe_entries()
    if args.json:
        print(json.dumps(rows, indent=2, default=str))
        return 0
    if not rows:
        print(f"no cache entries under {args.cache_dir}")
        return 0

    def _show(value) -> str:
        return "?" if value is None else str(value)

    def _ratio(value) -> str:
        return "?" if value is None else f"{value:.1f}x"

    print(format_table(
        ["Task", "Side", "Version", "Layout", "Codec", "Rows", "Tombstones",
         "Chunks", "Generations", "Bytes", "Decoded", "Ratio",
         "Content CRC", "Weights CRC"],
        [
            [row["task"], row["side"], _show(row["version"]), row["layout"],
             _show(row.get("codec")), _show(row["rows"]), _show(row["tombstones"]),
             _show(row["chunks"]), _show(row["generations"]), _show(row["bytes"]),
             _show(row.get("decoded_bytes")),
             _ratio(row.get("compression_ratio")),
             _show(row["content_crc"]), _show(row["weights_crc"])]
            for row in rows
        ],
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core import VAER
    from repro.data.generators import load_domain
    from repro.serve import MatchServer, ServeSession

    code = _check_positive(
        ("--k", args.k), ("--batch-size", args.batch_size), ("--workers", args.workers),
    )
    if code:
        return code
    if args.port < 0:
        print("error: --port must be non-negative", file=sys.stderr)
        return 2

    domain = load_domain(args.domain, scale=args.scale)
    config = _harness_config(args.seed).vaer_config(ir_method=args.ir)
    model = VAER(config, cache_dir=args.cache_dir, codec=args.codec)
    print(
        f"loading domain={args.domain} ir={args.ir} scale={args.scale} "
        f"codec={model.codec} ...", flush=True,
    )
    model.fit_representation(domain.task)
    model.fit_matcher(domain.splits.train, domain.splits.validation)

    session = ServeSession(
        model, k=args.k, batch_size=args.batch_size, workers=args.workers
    ).start()
    server = MatchServer(session, host=args.host, port=args.port)
    snapshot = session.snapshot
    print(
        f"warm: {snapshot.left_rows}x{snapshot.right_rows} rows, "
        f"{len(snapshot.pairs)} candidate pairs, {snapshot.match_count} matches "
        f"(threshold {snapshot.threshold:.2f})"
    )
    print(f"serving on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.shutdown()
    print("daemon stopped: queue drained, cache flushed, pool released")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.distrib import run_worker
    from repro.distrib.worker import DEFAULT_HEARTBEAT_INTERVAL, DEFAULT_POLL_INTERVAL

    if args.poll_interval is not None and args.poll_interval <= 0:
        print("error: --poll-interval must be positive", file=sys.stderr)
        return 2
    if args.heartbeat_interval is not None and args.heartbeat_interval <= 0:
        print("error: --heartbeat-interval must be positive", file=sys.stderr)
        return 2
    try:
        executed = run_worker(
            queue_dir=args.queue_dir,
            connect=args.connect,
            poll_interval=(
                args.poll_interval if args.poll_interval is not None else DEFAULT_POLL_INTERVAL
            ),
            heartbeat_interval=(
                args.heartbeat_interval
                if args.heartbeat_interval is not None
                else DEFAULT_HEARTBEAT_INTERVAL
            ),
            max_units=args.max_units,
            idle_timeout=args.idle_timeout,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"worker exiting: {executed} unit(s) executed")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    args = _build_parser().parse_args(argv)
    if args.command == "list-domains":
        return _cmd_list_domains()
    if args.command == "supervised":
        return _cmd_supervised(args)
    if args.command == "representation":
        return _cmd_representation(args)
    if args.command == "active":
        return _cmd_active(args)
    if args.command == "transfer":
        return _cmd_transfer(args)
    if args.command == "resolve":
        return _cmd_resolve(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
