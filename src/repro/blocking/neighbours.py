"""Top-K nearest-neighbour search over entity representations.

Used in three places that mirror the paper:

* the representation-learning evaluation (Table IV) performs LSH top-K search
  on raw IRs and on VAER encodings and measures P/R/F1 @ K;
* Algorithm 1 (AL bootstrapping) builds the unlabeled candidate pool from
  each tuple's K nearest neighbours;
* the same search doubles as a blocking step for an end-to-end ER pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocking.lsh import EuclideanLSHIndex
from repro.config import BlockingConfig
from repro.data.pairs import RecordPair
from repro.exceptions import NotFittedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.store import EncodingStore


@dataclass
class NeighbourResult:
    """Top-K neighbours of one query record."""

    query_key: object
    neighbours: List[Tuple[object, float]]

    def keys(self) -> List[object]:
        return [key for key, _ in self.neighbours]


def assemble_candidate_pairs(results: Iterable[NeighbourResult]) -> List[RecordPair]:
    """(query, neighbour) results flattened into deduplicated candidate pairs.

    The single definition of blocking-output assembly: every consumer of
    top-K results — :meth:`NearestNeighbourSearch.candidate_pairs`, the
    parallel blocking workers — flattens through here, so the pair order
    (query order, then neighbour rank) and the dedup policy cannot diverge.
    """
    pairs: List[RecordPair] = []
    seen: set = set()
    for result in results:
        for neighbour_key, _ in result.neighbours:
            key = (result.query_key, neighbour_key)
            if key in seen:
                continue
            seen.add(key)
            pairs.append(RecordPair(str(result.query_key), str(neighbour_key)))
    return pairs


def assemble_neighbour_map(results: Iterable[NeighbourResult]) -> Dict[object, List[object]]:
    """(query, neighbour) results as a mapping query key -> neighbour keys."""
    return {result.query_key: result.keys() for result in results}


class NearestNeighbourSearch:
    """LSH-backed top-K search between the two sides of an ER task."""

    def __init__(self, config: Optional[BlockingConfig] = None) -> None:
        self.config = config or BlockingConfig()
        self._index: Optional[EuclideanLSHIndex] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls,
        store: "EncodingStore",
        side: str = "right",
        config: Optional[BlockingConfig] = None,
    ) -> "NearestNeighbourSearch":
        """Build a search over one side's cached encodings.

        ``store`` is an :class:`repro.engine.EncodingStore`; the index is
        built from its cached record-level mean vectors, so blocking shares
        the same single encoding pass as matching and active learning.
        """
        encodings = store.table_encodings(side)
        return cls(config).build(encodings.flat_mu(), encodings.keys)

    @classmethod
    def from_index(
        cls, index: EuclideanLSHIndex, config: Optional[BlockingConfig] = None
    ) -> "NearestNeighbourSearch":
        """Wrap an already-built index (e.g. one assembled by parallel build)."""
        search = cls(config)
        search._index = index
        return search

    def build(self, vectors: np.ndarray, keys: Sequence[object]) -> "NearestNeighbourSearch":
        """Index the right-hand-side (or full) collection of vectors."""
        self._index = EuclideanLSHIndex(
            num_tables=self.config.num_tables,
            hash_size=self.config.hash_size,
            bucket_width=self.config.bucket_width,
            seed=self.config.seed,
        ).build(vectors, keys)
        return self

    @property
    def index(self) -> EuclideanLSHIndex:
        """The underlying LSH index (raises before :meth:`build`)."""
        if self._index is None:
            raise NotFittedError("NearestNeighbourSearch.index accessed before build")
        return self._index

    # ------------------------------------------------------------------
    # In-place mutation passthroughs (the incremental-blocking surface)
    # ------------------------------------------------------------------
    def extend(self, vectors: np.ndarray, keys: Sequence[object]) -> "NearestNeighbourSearch":
        """Install appended rows into the built index (no rebuild)."""
        self.index.extend(vectors, keys)
        return self

    def remove(self, keys: Sequence[object]) -> "NearestNeighbourSearch":
        """Tombstone deleted rows; answers exclude them immediately."""
        self.index.remove(keys)
        return self

    def patch(self, vectors: np.ndarray, keys: Sequence[object]) -> "NearestNeighbourSearch":
        """Swap edited rows' vectors in place and rebucket just those rows."""
        self.index.patch(vectors, keys)
        return self

    def top_k(self, query_vectors: np.ndarray, query_keys: Sequence[object], k: int = 10) -> List[NeighbourResult]:
        """Top-K neighbours of every query vector.

        Bucket hashing for the whole query block happens in one vectorized
        pass (:meth:`EuclideanLSHIndex.query_batch`); each query's own key is
        excluded from its results.
        """
        if self._index is None:
            raise NotFittedError("NearestNeighbourSearch.top_k called before build")
        query_keys = list(query_keys)
        neighbour_lists = self._index.query_batch(query_vectors, k=k, exclude=query_keys)
        return [
            NeighbourResult(query_key=key, neighbours=neighbours)
            for key, neighbours in zip(query_keys, neighbour_lists)
        ]

    # ------------------------------------------------------------------
    def candidate_pairs(
        self,
        query_vectors: np.ndarray,
        query_keys: Sequence[object],
        k: int = 10,
    ) -> List[RecordPair]:
        """Blocking output: every (query, neighbour) pair as a candidate."""
        return assemble_candidate_pairs(self.top_k(query_vectors, query_keys, k=k))

    def neighbour_map(
        self,
        query_vectors: np.ndarray,
        query_keys: Sequence[object],
        k: int = 10,
    ) -> Dict[object, List[object]]:
        """Mapping query key → list of neighbour keys."""
        return assemble_neighbour_map(self.top_k(query_vectors, query_keys, k=k))
