"""Locality Sensitive Hashing for Euclidean distance (p-stable scheme).

Algorithm 1 of the paper generates the unlabeled candidate pool by LSH
nearest-neighbour search over entity representations, exploiting the fact
that the 2-Wasserstein distance between diagonal Gaussians is positively
correlated with the Euclidean distance between their means.  This module
implements the classic p-stable LSH of Datar et al. (2004): each hash table
projects vectors onto random Gaussian directions, shifts and quantises them
into buckets of width ``w``; near vectors collide in at least one table with
high probability.

The index build is decomposed for parallel construction: :meth:`prepare`
fixes the random projections and registers the vectors, :meth:`hash_rows`
hashes any row range into per-table partial bucket maps (safe to run in a
worker over a shard of the rows), and :meth:`install_tables` merges partial
maps back in row order.  :meth:`build` composes the three for the serial
case, so a sharded build produces hash tables with the identical bucket
membership.  Queries hash array-at-a-time: :meth:`query_batch` computes the
bucket ids of a whole block of query vectors in one projection pass and only
the candidate re-ranking remains per row.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import NotFittedError

#: One hash table: bucket key -> row indices of the vectors hashed into it.
BucketMap = Dict[Tuple[int, ...], List[int]]


class EuclideanLSHIndex:
    """Multi-table p-stable LSH index over dense vectors.

    Parameters
    ----------
    num_tables:
        Number of independent hash tables; more tables raise recall.
    hash_size:
        Number of random projections concatenated into one bucket key.
    bucket_width:
        Quantisation width ``w``; larger widths make collisions more likely.
    seed:
        Seed of the random projections.
    """

    def __init__(
        self,
        num_tables: int = 8,
        hash_size: int = 12,
        bucket_width: float = 4.0,
        seed: int = 41,
    ) -> None:
        if num_tables <= 0 or hash_size <= 0:
            raise ValueError("num_tables and hash_size must be positive")
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.num_tables = num_tables
        self.hash_size = hash_size
        self.bucket_width = bucket_width
        self.seed = seed
        self._projections: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None
        self._tables: List[BucketMap] = []
        self._vectors: Optional[np.ndarray] = None
        self._keys: List[object] = []

    # ------------------------------------------------------------------
    # Build: prepare -> hash_rows (parallelisable) -> install_tables
    # ------------------------------------------------------------------
    def prepare(self, vectors: np.ndarray, keys: Optional[Sequence[object]] = None) -> "EuclideanLSHIndex":
        """Fix the projections and register ``vectors`` without hashing them.

        After ``prepare`` the index is *not* queryable yet: the hash tables
        are built by feeding :meth:`hash_rows` output (possibly computed in
        parallel over row ranges) to :meth:`install_tables`.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError(f"expected a 2-d array of vectors, got shape {vectors.shape}")
        n, dim = vectors.shape
        rng = np.random.default_rng(self.seed)
        self._projections = rng.standard_normal((self.num_tables, self.hash_size, dim))
        self._offsets = rng.uniform(0.0, self.bucket_width, size=(self.num_tables, self.hash_size))
        self._vectors = vectors
        self._keys = list(keys) if keys is not None else list(range(n))
        if len(self._keys) != n:
            raise ValueError("keys must align with vectors")
        self._tables = []
        return self

    def hash_rows(self, start: int, stop: int) -> List[BucketMap]:
        """Per-table bucket maps of rows ``[start, stop)`` (global indices).

        Pure function of the prepared projections and vectors — row ranges
        can be hashed concurrently (each worker hashes its shard) and merged
        with :meth:`install_tables`.  Bucket ids for the whole range are
        computed in one array-at-a-time projection pass.
        """
        if self._vectors is None:
            raise NotFittedError("EuclideanLSHIndex.hash_rows called before prepare")
        start = max(0, start)
        stop = min(len(self._vectors), stop)
        partial: List[BucketMap] = [defaultdict(list) for _ in range(self.num_tables)]
        if start >= stop:
            return [dict(table) for table in partial]
        bucket_ids = self._bucket_ids(self._vectors[start:stop])
        for table_index in range(self.num_tables):
            table = partial[table_index]
            for local, bucket in enumerate(map(tuple, bucket_ids[table_index])):
                table[bucket].append(start + local)
        return [dict(table) for table in partial]

    def install_tables(self, partials: Iterable[List[BucketMap]]) -> "EuclideanLSHIndex":
        """Merge partial bucket maps (in ascending row-range order) into the index.

        Feeding the ranges in row order keeps each bucket's row list sorted
        exactly as a serial :meth:`build` would produce it, so a sharded
        build is indistinguishable from a serial one.
        """
        if self._vectors is None:
            raise NotFittedError("EuclideanLSHIndex.install_tables called before prepare")
        tables: List[BucketMap] = [defaultdict(list) for _ in range(self.num_tables)]
        for partial in partials:
            if len(partial) != self.num_tables:
                raise ValueError("partial bucket maps must cover every hash table")
            for table_index, bucket_map in enumerate(partial):
                table = tables[table_index]
                for bucket, rows in bucket_map.items():
                    table[bucket].extend(rows)
        self._tables = tables
        return self

    def build(self, vectors: np.ndarray, keys: Optional[Sequence[object]] = None) -> "EuclideanLSHIndex":
        """Index ``vectors``; ``keys`` are the identifiers returned by queries."""
        self.prepare(vectors, keys)
        assert self._vectors is not None
        return self.install_tables([self.hash_rows(0, len(self._vectors))])

    def extend(self, vectors: np.ndarray, keys: Sequence[object]) -> "EuclideanLSHIndex":
        """Install additional rows into a built index without a rebuild.

        The incremental-blocking primitive: appended rows are hashed with
        the *existing* projections through :meth:`hash_rows` (the same
        partial-map machinery a sharded build uses) and appended into the
        existing bucket lists in place — O(delta) bucket work, not O(table).
        New rows receive the next global indices, so every bucket's row list
        stays exactly what a from-scratch :meth:`build` over the
        concatenated vectors produces; query answers are therefore
        identical to a full rebuild.
        """
        self._require_built("extend")
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError(f"expected a 2-d array of vectors, got shape {vectors.shape}")
        assert self._vectors is not None
        if vectors.shape[1] != self._vectors.shape[1]:
            raise ValueError(
                f"extension vectors have dimension {vectors.shape[1]}, "
                f"index was built over dimension {self._vectors.shape[1]}"
            )
        keys = list(keys)
        if len(keys) != len(vectors):
            raise ValueError("keys must align with vectors")
        if len(vectors) == 0:
            return self
        start = len(self._vectors)
        self._vectors = np.concatenate([self._vectors, vectors])
        self._keys.extend(keys)
        for table, bucket_map in zip(self._tables, self.hash_rows(start, len(self._vectors))):
            for bucket, rows in bucket_map.items():
                existing = table.get(bucket)
                if existing is None:
                    table[bucket] = rows
                else:
                    existing.extend(rows)
        return self

    def _bucket_ids(self, vectors: np.ndarray) -> np.ndarray:
        assert self._projections is not None and self._offsets is not None
        # shape: (num_tables, n, hash_size)
        projected = np.einsum("thd,nd->tnh", self._projections, vectors)
        return np.floor((projected + self._offsets[:, None, :]) / self.bucket_width).astype(np.int64)

    def _require_built(self, operation: str) -> None:
        if self._vectors is None or not self._tables:
            raise NotFittedError(f"EuclideanLSHIndex.{operation} called before build")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, vector: np.ndarray, k: int = 10, exclude: Optional[object] = None) -> List[Tuple[object, float]]:
        """Return up to ``k`` (key, distance) pairs nearest to ``vector``.

        Candidates are gathered from colliding buckets across all tables and
        re-ranked by exact Euclidean distance.  If the buckets yield fewer
        than ``k`` candidates, the index transparently falls back to a linear
        scan so recall never collapses on small datasets.  An empty index
        yields an empty result; ``k`` larger than the index size simply
        returns every (non-excluded) vector.
        """
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        return self.query_batch(vector, k=k, exclude=[exclude])[0]

    def query_batch(
        self,
        vectors: np.ndarray,
        k: int = 10,
        exclude: Optional[Sequence[object]] = None,
    ) -> List[List[Tuple[object, float]]]:
        """Top-``k`` results for a whole block of query vectors.

        Bucket hashing is array-at-a-time: one projection pass computes the
        bucket ids of every query row, so only candidate gathering and exact
        re-ranking remain per row.  ``exclude`` optionally supplies one key
        per query row to drop from that row's results (the per-row
        counterpart of :meth:`query`'s ``exclude``).
        """
        self._require_built("query_batch")
        if k <= 0:
            raise ValueError("k must be positive")
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        if vectors.ndim != 2:
            raise ValueError(f"expected a 2-d array of query vectors, got shape {vectors.shape}")
        n = len(vectors)
        if exclude is not None and len(exclude) != n:
            raise ValueError("exclude must align with query vectors")
        if n == 0:
            return []
        assert self._vectors is not None
        buckets = self._bucket_ids(vectors)
        results: List[List[Tuple[object, float]]] = []
        for row in range(n):
            candidates: set = set()
            for table_index in range(self.num_tables):
                bucket = tuple(buckets[table_index, row])
                candidates.update(self._tables[table_index].get(bucket, ()))
            excluded = exclude[row] if exclude is not None else None
            results.append(self._rank(vectors[row : row + 1], candidates, k, excluded))
        return results

    def _rank(
        self, vector: np.ndarray, candidates: set, k: int, exclude: Optional[object]
    ) -> List[Tuple[object, float]]:
        """Exact-distance re-ranking of one query row's candidate set."""
        assert self._vectors is not None
        if len(candidates) < k:
            candidates = set(range(len(self._vectors)))
        candidate_list = sorted(candidates)
        if not candidate_list:
            return []
        diffs = self._vectors[candidate_list] - vector
        distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        order = np.argsort(distances)
        results: List[Tuple[object, float]] = []
        for position in order:
            key = self._keys[candidate_list[position]]
            if exclude is not None and key == exclude:
                continue
            results.append((key, float(distances[position])))
            if len(results) >= k:
                break
        return results

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return 0 if self._vectors is None else len(self._vectors)

    @property
    def keys(self) -> Tuple[object, ...]:
        """The registered row keys, in row order (empty before prepare)."""
        return tuple(self._keys)

    def bucket_statistics(self) -> Dict[str, float]:
        """Mean and max bucket occupancy across tables (diagnostics)."""
        self._require_built("bucket_statistics")
        sizes = [len(bucket) for table in self._tables for bucket in table.values()]
        if not sizes:  # built over an empty table: no buckets at all
            return {"mean_bucket_size": 0.0, "max_bucket_size": 0.0, "num_buckets": 0.0}
        return {
            "mean_bucket_size": float(np.mean(sizes)),
            "max_bucket_size": float(np.max(sizes)),
            "num_buckets": float(len(sizes)),
        }
