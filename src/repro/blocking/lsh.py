"""Locality Sensitive Hashing for Euclidean distance (p-stable scheme).

Algorithm 1 of the paper generates the unlabeled candidate pool by LSH
nearest-neighbour search over entity representations, exploiting the fact
that the 2-Wasserstein distance between diagonal Gaussians is positively
correlated with the Euclidean distance between their means.  This module
implements the classic p-stable LSH of Datar et al. (2004): each hash table
projects vectors onto random Gaussian directions, shifts and quantises them
into buckets of width ``w``; near vectors collide in at least one table with
high probability.

The index build is decomposed for parallel construction: :meth:`prepare`
fixes the random projections and registers the vectors, :meth:`hash_rows`
hashes any row range into per-table partial bucket maps (safe to run in a
worker over a shard of the rows), and :meth:`install_tables` merges partial
maps back in row order.  :meth:`build` composes the three for the serial
case, so a sharded build produces hash tables with the identical bucket
membership.  Queries hash array-at-a-time: :meth:`query_batch` computes the
bucket ids of a whole block of query vectors in one projection pass and only
the candidate re-ranking remains per row.  Quantized tables additionally
declare a query-time policy through their codec params (rank-cut expansion
and low-margin multiprobe — see :meth:`_query_policy`) so approximate codes
trade a wider exact-scored shortlist for recall instead of losing it.

The index is additionally *mutable in place* — the incremental-blocking
layer of delta resolution: :meth:`extend` appends rows into the existing
buckets, :meth:`remove` tombstones rows by key (a mask consulted during
candidate gathering; bucket lists are untouched until compaction),
:meth:`patch` swaps a row's vector and rebuckets just that row.  Once the
tombstoned fraction passes ``compaction_load`` the index :meth:`compact`\\ s:
dead rows are dropped and the survivors renumbered, leaving hash tables
*bucket-identical* to a from-scratch build over the live vectors.  Query
answers are identical to a rebuild at every point before and after
compaction.
"""

from __future__ import annotations

from bisect import insort
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import NotFittedError

#: One hash table: bucket key -> row indices of the vectors hashed into it.
BucketMap = Dict[Tuple[int, ...], List[int]]

#: Tombstoned fraction above which :meth:`EuclideanLSHIndex.remove` compacts.
DEFAULT_COMPACTION_LOAD = 0.3

#: Rows hashed per decode block when the stored vectors are int8 codes —
#: bounds the transient float materialisation of a build/extend hash pass.
_HASH_BLOCK_ROWS = 4096


def _quant():
    """:mod:`repro.engine.quant`, imported lazily.

    A module-scope import would initialise the :mod:`repro.engine` package,
    whose hub imports the planner, which imports this module — a cycle when
    ``repro.blocking.lsh`` is imported first.  The function-level import is
    a ``sys.modules`` hit after the first call.
    """
    from repro.engine import quant

    return quant


def _is_code_array(vectors) -> bool:
    if isinstance(vectors, np.ndarray):
        return False
    return isinstance(vectors, _quant().CodecArray)


def _coerce_vectors(vectors):
    """Vectors as stored/queried: zero-copy for fp32/fp64 and code arrays.

    Historically every entry point forced ``np.asarray(..., dtype=np.float64)``
    — a silent full-table upcast *copy* for float32 inputs and a full decode
    for code arrays.  Float inputs now pass through unchanged (only exotic
    dtypes are upcast) and :class:`repro.engine.quant.CodecArray` inputs stay
    compressed.
    """
    if _is_code_array(vectors):
        return vectors
    vectors = np.asarray(vectors)
    if vectors.dtype not in (np.float32, np.float64):
        vectors = vectors.astype(np.float64)
    return vectors


class EuclideanLSHIndex:
    """Multi-table p-stable LSH index over dense vectors.

    Parameters
    ----------
    num_tables:
        Number of independent hash tables; more tables raise recall.
    hash_size:
        Number of random projections concatenated into one bucket key.
    bucket_width:
        Quantisation width ``w``; larger widths make collisions more likely.
    seed:
        Seed of the random projections.
    compaction_load:
        Tombstoned-row fraction above which :meth:`remove` triggers
        :meth:`compact`.
    """

    def __init__(
        self,
        num_tables: int = 8,
        hash_size: int = 12,
        bucket_width: float = 4.0,
        seed: int = 41,
        compaction_load: float = DEFAULT_COMPACTION_LOAD,
    ) -> None:
        if num_tables <= 0 or hash_size <= 0:
            raise ValueError("num_tables and hash_size must be positive")
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        if not 0.0 < compaction_load <= 1.0:
            raise ValueError("compaction_load must be in (0, 1]")
        self.num_tables = num_tables
        self.hash_size = hash_size
        self.bucket_width = bucket_width
        self.seed = seed
        self.compaction_load = compaction_load
        self._projections: Optional[np.ndarray] = None
        self._projections32: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None
        self._tables: List[BucketMap] = []
        self._vectors: Optional[np.ndarray] = None
        self._keys: List[object] = []
        self._dead: Set[int] = set()
        self._key_rows: Optional[Dict[object, int]] = None
        self._mutations: int = 0
        # Linear-scan fallback working set, keyed by the mutation counter:
        # (mutations, live row indices, gathered live vectors).
        self._live_cache: Optional[Tuple[int, np.ndarray, np.ndarray]] = None
        # Asymmetric-ranking working set over code vectors, keyed likewise:
        # (mutations, per-row ||c*s||^2 norms).
        self._norms_cache: Optional[Tuple[int, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Build: prepare -> hash_rows (parallelisable) -> install_tables
    # ------------------------------------------------------------------
    def prepare(self, vectors: np.ndarray, keys: Optional[Sequence[object]] = None) -> "EuclideanLSHIndex":
        """Fix the projections and register ``vectors`` without hashing them.

        After ``prepare`` the index is *not* queryable yet: the hash tables
        are built by feeding :meth:`hash_rows` output (possibly computed in
        parallel over row ranges) to :meth:`install_tables`.

        ``vectors`` may be float64, float32 (hashed through the fp32
        projection fast path, no upcast copy) or a
        :class:`repro.engine.quant.CodecArray` — the index then keeps the
        int8 codes resident, hashes in bounded decode blocks and ranks
        candidates through the asymmetric distance kernel.
        """
        vectors = _coerce_vectors(vectors)
        if vectors.ndim != 2:
            raise ValueError(f"expected a 2-d array of vectors, got shape {vectors.shape}")
        n, dim = vectors.shape
        rng = np.random.default_rng(self.seed)
        self._projections = rng.standard_normal((self.num_tables, self.hash_size, dim))
        self._projections32 = None
        self._offsets = rng.uniform(0.0, self.bucket_width, size=(self.num_tables, self.hash_size))
        self._norms_cache = None
        self._vectors = vectors
        self._keys = list(keys) if keys is not None else list(range(n))
        if len(self._keys) != n:
            raise ValueError("keys must align with vectors")
        self._tables = []
        self._dead = set()
        self._key_rows = None
        self._mutations += 1
        return self

    def hash_rows(self, start: int, stop: int) -> List[BucketMap]:
        """Per-table bucket maps of rows ``[start, stop)`` (global indices).

        Pure function of the prepared projections and vectors — row ranges
        can be hashed concurrently (each worker hashes its shard) and merged
        with :meth:`install_tables`.  Bucket ids for the whole range are
        computed in one array-at-a-time projection pass.
        """
        if self._vectors is None:
            raise NotFittedError("EuclideanLSHIndex.hash_rows called before prepare")
        start = max(0, start)
        stop = min(len(self._vectors), stop)
        partial: List[BucketMap] = [defaultdict(list) for _ in range(self.num_tables)]
        if start >= stop:
            return [dict(table) for table in partial]
        # Code vectors decode block by block, so hashing a cold table never
        # materialises more than one block of floats at a time.
        block = _HASH_BLOCK_ROWS if _is_code_array(self._vectors) else stop - start
        for block_start in range(start, stop, block):
            block_stop = min(stop, block_start + block)
            bucket_ids = self._bucket_ids(self._vectors[block_start:block_stop])
            for table_index in range(self.num_tables):
                table = partial[table_index]
                for local, bucket in enumerate(map(tuple, bucket_ids[table_index])):
                    table[bucket].append(block_start + local)
        return [dict(table) for table in partial]

    def install_tables(self, partials: Iterable[List[BucketMap]]) -> "EuclideanLSHIndex":
        """Merge partial bucket maps (in ascending row-range order) into the index.

        Feeding the ranges in row order keeps each bucket's row list sorted
        exactly as a serial :meth:`build` would produce it, so a sharded
        build is indistinguishable from a serial one.
        """
        if self._vectors is None:
            raise NotFittedError("EuclideanLSHIndex.install_tables called before prepare")
        tables: List[BucketMap] = [defaultdict(list) for _ in range(self.num_tables)]
        for partial in partials:
            if len(partial) != self.num_tables:
                raise ValueError("partial bucket maps must cover every hash table")
            for table_index, bucket_map in enumerate(partial):
                table = tables[table_index]
                for bucket, rows in bucket_map.items():
                    table[bucket].extend(rows)
        self._tables = tables
        return self

    def build(self, vectors: np.ndarray, keys: Optional[Sequence[object]] = None) -> "EuclideanLSHIndex":
        """Index ``vectors``; ``keys`` are the identifiers returned by queries."""
        self.prepare(vectors, keys)
        assert self._vectors is not None
        return self.install_tables([self.hash_rows(0, len(self._vectors))])

    def extend(self, vectors: np.ndarray, keys: Sequence[object]) -> "EuclideanLSHIndex":
        """Install additional rows into a built index without a rebuild.

        The incremental-blocking primitive: appended rows are hashed with
        the *existing* projections through :meth:`hash_rows` (the same
        partial-map machinery a sharded build uses) and appended into the
        existing bucket lists in place — O(delta) bucket work, not O(table).
        New rows receive the next global indices, so every bucket's row list
        stays exactly what a from-scratch :meth:`build` over the
        concatenated vectors produces; query answers are therefore
        identical to a full rebuild.
        """
        self._require_built("extend")
        vectors = _coerce_vectors(vectors)
        if vectors.ndim != 2:
            raise ValueError(f"expected a 2-d array of vectors, got shape {vectors.shape}")
        assert self._vectors is not None
        if vectors.shape[1] != self._vectors.shape[1]:
            raise ValueError(
                f"extension vectors have dimension {vectors.shape[1]}, "
                f"index was built over dimension {self._vectors.shape[1]}"
            )
        keys = list(keys)
        if len(keys) != len(vectors):
            raise ValueError("keys must align with vectors")
        if len(vectors) == 0:
            return self
        start = len(self._vectors)
        if _is_code_array(self._vectors):
            # Code-space append: quantized tails drop their codes straight
            # in, float tails are encoded with the index's fixed params.
            self._vectors = self._vectors.concat_rows(vectors)
        else:
            self._vectors = np.concatenate([self._vectors, np.asarray(vectors)])
        self._keys.extend(keys)
        self._key_rows = None
        self._mutations += 1
        for table, bucket_map in zip(self._tables, self.hash_rows(start, len(self._vectors))):
            for bucket, rows in bucket_map.items():
                existing = table.get(bucket)
                if existing is None:
                    table[bucket] = rows
                else:
                    existing.extend(rows)
        return self

    # ------------------------------------------------------------------
    # In-place mutation: remove (tombstones), patch, compaction
    # ------------------------------------------------------------------
    def _rows_of(self, keys: Sequence[object]) -> List[int]:
        """Live row indices of ``keys`` (raises ``KeyError`` on unknown keys)."""
        if self._key_rows is None:
            self._key_rows = {
                key: row for row, key in enumerate(self._keys) if row not in self._dead
            }
        mapping = self._key_rows
        rows = []
        for key in keys:
            try:
                rows.append(mapping[key])
            except KeyError as exc:
                raise KeyError(f"key {key!r} not present (or tombstoned) in index") from exc
        return rows

    def remove(self, keys: Sequence[object]) -> "EuclideanLSHIndex":
        """Tombstone rows by key, without touching any bucket list.

        Deleted rows are masked out during candidate gathering, so query
        answers immediately equal a from-scratch build over the surviving
        vectors — O(1) per removal.  Once the tombstoned fraction exceeds
        ``compaction_load`` the index compacts (see :meth:`compact`), after
        which the hash tables themselves are bucket-identical to a rebuild.
        """
        self._require_built("remove")
        rows = self._rows_of(keys)
        self._mutations += 1
        self._dead.update(rows)
        if self._key_rows is not None:
            for key in keys:
                self._key_rows.pop(key, None)
        assert self._vectors is not None
        if self._dead and len(self._dead) > self.compaction_load * len(self._vectors):
            self.compact()
        return self

    def patch(self, vectors: np.ndarray, keys: Sequence[object]) -> "EuclideanLSHIndex":
        """Swap the vectors of existing rows in place and rebucket them.

        The edited row keeps its row index, is pulled out of the buckets its
        old vector hashed to and inserted — in row order, via ``insort`` —
        into the buckets of the new vector, so the resulting tables are
        bucket-identical to a from-scratch build over the edited vectors.
        """
        self._require_built("patch")
        if _is_code_array(vectors):
            # Patches touch few rows: decode them once, re-encoding happens
            # row-wise against the stored representation below.
            vectors = vectors.decode()
        vectors = np.asarray(vectors)
        if vectors.dtype not in (np.float32, np.float64):
            vectors = vectors.astype(np.float64)
        if vectors.ndim != 2:
            raise ValueError(f"expected a 2-d array of vectors, got shape {vectors.shape}")
        assert self._vectors is not None
        if vectors.shape[1] != self._vectors.shape[1]:
            raise ValueError(
                f"patch vectors have dimension {vectors.shape[1]}, "
                f"index was built over dimension {self._vectors.shape[1]}"
            )
        keys = list(keys)
        if len(keys) != len(vectors):
            raise ValueError("keys must align with vectors")
        if not keys:
            return self
        rows = self._rows_of(keys)
        self._mutations += 1
        old_buckets = self._bucket_ids(self._vectors[rows])
        new_buckets = self._bucket_ids(vectors)
        for position, row in enumerate(rows):
            self._vectors[row] = vectors[position]
            for table_index in range(self.num_tables):
                table = self._tables[table_index]
                old_bucket = tuple(old_buckets[table_index, position])
                new_bucket = tuple(new_buckets[table_index, position])
                if old_bucket == new_bucket:
                    continue
                members = table.get(old_bucket)
                if members is not None:
                    try:
                        members.remove(row)
                    except ValueError:  # pragma: no cover - inconsistent table
                        pass
                    if not members:
                        del table[old_bucket]
                insort(table.setdefault(new_bucket, []), row)
        return self

    def compact(self) -> "EuclideanLSHIndex":
        """Drop tombstoned rows and renumber the survivors.

        Surviving rows keep their relative order, so every bucket's row list
        — renumbered through the same old-to-new map — stays sorted exactly
        as a serial :meth:`build` over the live vectors would produce it;
        buckets left empty are deleted like a rebuild would never have
        created them.  A no-op when nothing is tombstoned.
        """
        self._require_built("compact")
        if not self._dead:
            return self
        assert self._vectors is not None
        self._mutations += 1
        alive = [row for row in range(len(self._vectors)) if row not in self._dead]
        renumber = {old: new for new, old in enumerate(alive)}
        if _is_code_array(self._vectors):
            # A plain fancy-index would decode; keep the survivors as codes.
            self._vectors = self._vectors.take_rows(alive)
        else:
            self._vectors = self._vectors[alive]
        self._keys = [self._keys[row] for row in alive]
        tables: List[BucketMap] = []
        for table in self._tables:
            compacted: BucketMap = {}
            for bucket, rows in table.items():
                survivors = [renumber[row] for row in rows if row in renumber]
                if survivors:
                    compacted[bucket] = survivors
            tables.append(compacted)
        self._tables = tables
        self._dead = set()
        self._key_rows = None
        return self

    def _scaled_projections(self, vectors) -> np.ndarray:
        """Projections shifted and scaled to bucket units (floor = bucket id).

        The fractional part is each coordinate's position inside its
        bucket — the margin signal query-time multiprobe perturbs.
        """
        assert self._projections is not None and self._offsets is not None
        if _is_code_array(vectors):
            vectors = vectors.decode()  # callers pass bounded row blocks
        vectors = np.asarray(vectors)
        if vectors.dtype == np.float32:
            # fp32 fast path: project with a (lazily cached) fp32 copy of
            # the projections instead of upcasting the whole vector block.
            projections = self._projections32
            if projections is None:
                projections = self._projections.astype(np.float32)
                self._projections32 = projections
        else:
            if vectors.dtype != np.float64:
                vectors = vectors.astype(np.float64)
            projections = self._projections
        # shape: (num_tables, n, hash_size)
        projected = np.einsum("thd,nd->tnh", projections, vectors)
        return (projected + self._offsets[:, None, :]) / self.bucket_width

    def _bucket_ids(self, vectors) -> np.ndarray:
        return np.floor(self._scaled_projections(vectors)).astype(np.int64)

    def _query_policy(self) -> Tuple[int, int]:
        """Per-query (rank-cut multiplier, extra probed buckets per table).

        Declared by the stored table's codec params: a quantized table
        ranks an expanded approximate shortlist and probes neighbouring
        low-margin buckets so decode error cannot silently shrink recall.
        Raw float tables (and codecs that rank exactly enough, like int8)
        use ``(1, 0)`` — behaviour identical to an unexpanded query.
        """
        if _is_code_array(self._vectors):
            params = self._vectors.params
            return (
                max(1, int(getattr(params, "rank_expansion", 1))),
                max(0, int(getattr(params, "extra_probes", 0))),
            )
        return 1, 0

    @staticmethod
    def _probe_ids(scaled: np.ndarray, base: np.ndarray, probes: int) -> List[np.ndarray]:
        """Multiprobe bucket ids: perturb the lowest-margin coordinates.

        For each (table, query) the hash coordinates closest to a bucket
        boundary are the likeliest to have flipped under quantization
        noise; probe ``probes`` of them, each stepped one bucket toward
        its nearest boundary.  Deterministic (stable argsort on margins).
        """
        frac = scaled - base
        margins = np.minimum(frac, 1.0 - frac)
        direction = np.where(frac < 0.5, -1, 1)
        order = np.argsort(margins, axis=-1, kind="stable")
        tables_index = np.arange(scaled.shape[0])[:, None]
        rows_index = np.arange(scaled.shape[1])[None, :]
        out: List[np.ndarray] = []
        for position in range(min(probes, scaled.shape[2])):
            coordinate = order[:, :, position]
            perturbed = base.copy()
            perturbed[tables_index, rows_index, coordinate] += direction[
                tables_index, rows_index, coordinate
            ]
            out.append(perturbed)
        return out

    def _require_built(self, operation: str) -> None:
        if self._vectors is None or not self._tables:
            raise NotFittedError(f"EuclideanLSHIndex.{operation} called before build")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, vector: np.ndarray, k: int = 10, exclude: Optional[object] = None) -> List[Tuple[object, float]]:
        """Return up to ``k`` (key, distance) pairs nearest to ``vector``.

        Candidates are gathered from colliding buckets across all tables and
        re-ranked by exact Euclidean distance.  If the buckets yield fewer
        than ``k`` candidates, the index transparently falls back to a linear
        scan so recall never collapses on small datasets.  An empty index
        yields an empty result; ``k`` larger than the index size simply
        returns every (non-excluded) vector.
        """
        vector = _coerce_vectors(np.atleast_1d(vector)).reshape(1, -1)
        return self.query_batch(vector, k=k, exclude=[exclude])[0]

    def query_batch(
        self,
        vectors: np.ndarray,
        k: int = 10,
        exclude: Optional[Sequence[object]] = None,
    ) -> List[List[Tuple[object, float]]]:
        """Top-``k`` results for a whole block of query vectors.

        Bucket hashing is array-at-a-time: one projection pass computes the
        bucket ids of every query row, so only candidate gathering and exact
        re-ranking remain per row.  ``exclude`` optionally supplies one key
        per query row to drop from that row's results (the per-row
        counterpart of :meth:`query`'s ``exclude``).

        Over quantized tables the stored codec's query policy applies
        (see :meth:`_query_policy`): results may carry up to
        ``rank_expansion * k`` entries per query — the approximate-distance
        shortlist downstream exact scoring prunes — and each hash table is
        probed at its ``extra_probes`` lowest-margin neighbour buckets.
        """
        self._require_built("query_batch")
        if k <= 0:
            raise ValueError("k must be positive")
        if _is_code_array(vectors):
            vectors = vectors.decode()  # queries are per-row floats anyway
        vectors = np.asarray(vectors)
        if vectors.dtype not in (np.float32, np.float64):
            vectors = vectors.astype(np.float64)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        if vectors.ndim != 2:
            raise ValueError(f"expected a 2-d array of query vectors, got shape {vectors.shape}")
        n = len(vectors)
        if exclude is not None and len(exclude) != n:
            raise ValueError("exclude must align with query vectors")
        if n == 0:
            return []
        assert self._vectors is not None
        expansion, probes = self._query_policy()
        k_effective = k * expansion
        scaled = self._scaled_projections(vectors)
        id_blocks = [np.floor(scaled).astype(np.int64)]
        if probes:
            id_blocks.extend(self._probe_ids(scaled, id_blocks[0], probes))
        # Bucket keys as native-int tuples: one tolist() converts the whole
        # id block, and hashing int tuples is measurably cheaper than
        # hashing np.int64 tuples in this per-row loop.
        bucket_blocks = [ids.tolist() for ids in id_blocks]
        results: List[Optional[List[Tuple[object, float]]]] = [None] * n
        fallback_rows: List[int] = []
        for row in range(n):
            candidates: set = set()
            for table_index in range(self.num_tables):
                table = self._tables[table_index]
                for buckets in bucket_blocks:
                    bucket = tuple(buckets[table_index][row])
                    candidates.update(table.get(bucket, ()))
            if self._dead:
                # Tombstone mask: deleted rows never surface as candidates,
                # so answers equal a rebuild over the live vectors alone.
                candidates -= self._dead
            if len(candidates) < k_effective:
                # Linear-scan fallback; batched below so one blocked
                # distance computation serves every starved row.
                fallback_rows.append(row)
                continue
            excluded = exclude[row] if exclude is not None else None
            results[row] = self._rank(
                vectors[row : row + 1], candidates, k_effective, excluded
            )
        if fallback_rows:
            self._rank_fallback(vectors, fallback_rows, results, k_effective, exclude)
        return results  # type: ignore[return-value]

    def _rank(
        self, vector: np.ndarray, candidates: set, k: int, exclude: Optional[object]
    ) -> List[Tuple[object, float]]:
        """Exact-distance re-ranking of one query row's candidate set.

        Over code vectors the distances come from the asymmetric kernel —
        exact w.r.t. the *decoded* table (up to fp32 matmul rounding), so
        ranking error against the raw index is bounded by the codec's
        per-dimension quantization epsilon.
        """
        assert self._vectors is not None
        if len(candidates) < k:
            candidates = set(range(len(self._vectors))) - self._dead
        candidate_list = sorted(candidates)
        if not candidate_list:
            return []
        if _is_code_array(self._vectors):
            sub = self._vectors.take_rows(candidate_list)
            distances = np.sqrt(
                _quant().asymmetric_sq_distances(
                    vector[0], sub, table_sq_norms=self._code_norms()[candidate_list]
                )
            )
        else:
            diffs = self._vectors[candidate_list] - vector
            distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        order = np.argsort(distances)
        results: List[Tuple[object, float]] = []
        for position in order:
            key = self._keys[candidate_list[position]]
            if exclude is not None and key == exclude:
                continue
            results.append((key, float(distances[position])))
            if len(results) >= k:
                break
        return results

    def _live_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted live row indices and their vectors, cached per mutation.

        The linear-scan fallback's working set: rebuilding the live-row
        gather for every starved query row used to dominate small-index
        queries.  With no tombstones the vectors are served zero-copy; the
        cache is keyed by :attr:`mutations`, so any structural change
        (extend/remove/patch/compact) invalidates it on next use.
        """
        assert self._vectors is not None
        cache = self._live_cache
        if cache is not None and cache[0] == self._mutations:
            return cache[1], cache[2]
        if self._dead:
            rows = np.asarray(
                sorted(set(range(len(self._vectors))) - self._dead), dtype=np.intp
            )
            base = (
                self._vectors.take_rows(rows)
                if _is_code_array(self._vectors)
                else self._vectors[rows]
            )
        else:
            rows = np.arange(len(self._vectors), dtype=np.intp)
            base = self._vectors
        self._live_cache = (self._mutations, rows, base)
        return rows, base

    def _code_norms(self) -> np.ndarray:
        """Per-row ``||c*s||^2`` of the stored code vectors, cached per mutation.

        The constant term of the asymmetric distance kernel; amortised
        across every ranked candidate set of a mutation epoch.
        """
        cache = self._norms_cache
        if cache is not None and cache[0] == self._mutations:
            return cache[1]
        norms = _quant().table_sq_norms_of(self._vectors)
        self._norms_cache = (self._mutations, norms)
        return norms

    def _rank_fallback(
        self,
        vectors: np.ndarray,
        fallback_rows: List[int],
        results: List[Optional[List[Tuple[object, float]]]],
        k: int,
        exclude: Optional[Sequence[object]],
    ) -> None:
        """Linear-scan ranking for query rows whose buckets yielded < ``k``.

        All starved rows of one batch share a blocked broadcast distance
        computation against the cached live vectors instead of re-gathering
        and re-reducing per row.  The arithmetic — subtract, self-``einsum``,
        ``sqrt``, full ``argsort`` — is element-for-element the one
        :meth:`_rank` runs, so results are bitwise identical to the per-row
        path it replaces.
        """
        live_rows, base = self._live_rows()
        if len(live_rows) == 0:
            for row in fallback_rows:
                results[row] = []
            return
        keys = self._keys
        base_is_codes = _is_code_array(base)
        # Norms of a gathered code sub-table are a gather of the full-table
        # norms, so the per-mutation cache serves both live-row layouts.
        code_norms = self._code_norms()[live_rows] if base_is_codes else None
        # Bound the broadcast temp to ~32 MB of float64 diffs per block.
        block = max(1, (1 << 22) // max(1, base.shape[0] * base.shape[1]))
        for start in range(0, len(fallback_rows), block):
            chunk = fallback_rows[start : start + block]
            queries = vectors[chunk]
            if base_is_codes:
                distances_block = np.sqrt(
                    _quant().asymmetric_sq_distances(
                        queries, base, table_sq_norms=code_norms
                    )
                )
            else:
                diffs = base[None, :, :] - queries[:, None, :]
                distances_block = np.sqrt(np.einsum("bnd,bnd->bn", diffs, diffs))
            for position, row in enumerate(chunk):
                distances = distances_block[position]
                order = np.argsort(distances)
                excluded = exclude[row] if exclude is not None else None
                ranked: List[Tuple[object, float]] = []
                for candidate in order:
                    key = keys[live_rows[candidate]]
                    if excluded is not None and key == excluded:
                        continue
                    ranked.append((key, float(distances[candidate])))
                    if len(ranked) >= k:
                        break
                results[row] = ranked

    # ------------------------------------------------------------------
    # Pickling (worker-pool state transport)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pack bucket tables into numpy triples for efficient transport.

        A built index travels to pool workers through the shared-memory
        publisher, which hoists large ndarrays into zero-copy segments —
        but dicts of tuple-keyed Python lists would still be pickled
        element by element.  Packing each table as ``(bucket keys array,
        per-bucket counts, concatenated row lists)`` turns the dominant
        payload into three hoistable arrays; insertion order (and hence
        query behaviour) round-trips exactly.  Derived caches are dropped
        and rebuilt lazily on the other side.
        """
        state = self.__dict__.copy()
        state["_key_rows"] = None
        state["_live_cache"] = None
        state["_norms_cache"] = None
        state["_projections32"] = None
        tables = state.pop("_tables")
        packed = []
        for table in tables:
            keys = np.asarray(list(table.keys()), dtype=np.int64).reshape(-1, self.hash_size)
            counts = np.asarray([len(rows) for rows in table.values()], dtype=np.int64)
            rows = np.asarray(
                [row for rows in table.values() for row in rows], dtype=np.int64
            )
            packed.append((keys, counts, rows))
        state["_packed_tables"] = packed
        return state

    def __setstate__(self, state):
        packed = state.pop("_packed_tables")
        self.__dict__.update(state)
        # States packed by older builds predate the derived caches.
        self.__dict__.setdefault("_projections32", None)
        self.__dict__.setdefault("_norms_cache", None)
        tables: List[BucketMap] = []
        for keys, counts, rows in packed:
            table: BucketMap = {}
            rows_list = rows.tolist()
            offset = 0
            for bucket, count in zip(keys.tolist(), counts.tolist()):
                table[tuple(bucket)] = rows_list[offset : offset + count]
                offset += count
            tables.append(table)
        self._tables = tables

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Stored rows, tombstoned ones included (the append frontier)."""
        return 0 if self._vectors is None else len(self._vectors)

    @property
    def live_size(self) -> int:
        """Rows actually searchable (stored minus tombstoned)."""
        return self.size - len(self._dead)

    @property
    def tombstoned(self) -> int:
        """Rows tombstoned but not yet compacted away."""
        return len(self._dead)

    @property
    def mutations(self) -> int:
        """Monotonic count of structural changes (build/extend/remove/patch/compact).

        Lets a holder of a reference detect that someone else mutated the
        index since a snapshot was taken — the delta executor records it in
        its baseline so an abandoned half-mutated run can never be mistaken
        for the published state.
        """
        return self._mutations

    @property
    def keys(self) -> Tuple[object, ...]:
        """The registered row keys, in row order (empty before prepare)."""
        return tuple(self._keys)

    @property
    def live_keys(self) -> Tuple[object, ...]:
        """Keys of the searchable rows, in row order."""
        if not self._dead:
            return tuple(self._keys)
        return tuple(
            key for row, key in enumerate(self._keys) if row not in self._dead
        )

    def bucket_statistics(self) -> Dict[str, float]:
        """Mean and max bucket occupancy across tables (diagnostics)."""
        self._require_built("bucket_statistics")
        sizes = [len(bucket) for table in self._tables for bucket in table.values()]
        if not sizes:  # built over an empty table: no buckets at all
            return {"mean_bucket_size": 0.0, "max_bucket_size": 0.0, "num_buckets": 0.0}
        return {
            "mean_bucket_size": float(np.mean(sizes)),
            "max_bucket_size": float(np.max(sizes)),
            "num_buckets": float(len(sizes)),
        }
