"""Locality Sensitive Hashing for Euclidean distance (p-stable scheme).

Algorithm 1 of the paper generates the unlabeled candidate pool by LSH
nearest-neighbour search over entity representations, exploiting the fact
that the 2-Wasserstein distance between diagonal Gaussians is positively
correlated with the Euclidean distance between their means.  This module
implements the classic p-stable LSH of Datar et al. (2004): each hash table
projects vectors onto random Gaussian directions, shifts and quantises them
into buckets of width ``w``; near vectors collide in at least one table with
high probability.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import NotFittedError


class EuclideanLSHIndex:
    """Multi-table p-stable LSH index over dense vectors.

    Parameters
    ----------
    num_tables:
        Number of independent hash tables; more tables raise recall.
    hash_size:
        Number of random projections concatenated into one bucket key.
    bucket_width:
        Quantisation width ``w``; larger widths make collisions more likely.
    seed:
        Seed of the random projections.
    """

    def __init__(
        self,
        num_tables: int = 8,
        hash_size: int = 12,
        bucket_width: float = 4.0,
        seed: int = 41,
    ) -> None:
        if num_tables <= 0 or hash_size <= 0:
            raise ValueError("num_tables and hash_size must be positive")
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.num_tables = num_tables
        self.hash_size = hash_size
        self.bucket_width = bucket_width
        self.seed = seed
        self._projections: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None
        self._tables: List[Dict[Tuple[int, ...], List[int]]] = []
        self._vectors: Optional[np.ndarray] = None
        self._keys: List[object] = []

    # ------------------------------------------------------------------
    def build(self, vectors: np.ndarray, keys: Optional[Sequence[object]] = None) -> "EuclideanLSHIndex":
        """Index ``vectors``; ``keys`` are the identifiers returned by queries."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError(f"expected a 2-d array of vectors, got shape {vectors.shape}")
        n, dim = vectors.shape
        rng = np.random.default_rng(self.seed)
        self._projections = rng.standard_normal((self.num_tables, self.hash_size, dim))
        self._offsets = rng.uniform(0.0, self.bucket_width, size=(self.num_tables, self.hash_size))
        self._vectors = vectors
        self._keys = list(keys) if keys is not None else list(range(n))
        if len(self._keys) != n:
            raise ValueError("keys must align with vectors")

        self._tables = [defaultdict(list) for _ in range(self.num_tables)]
        bucket_ids = self._bucket_ids(vectors)
        for table_index in range(self.num_tables):
            table = self._tables[table_index]
            for row, bucket in enumerate(map(tuple, bucket_ids[table_index])):
                table[bucket].append(row)
        return self

    def _bucket_ids(self, vectors: np.ndarray) -> np.ndarray:
        assert self._projections is not None and self._offsets is not None
        # shape: (num_tables, n, hash_size)
        projected = np.einsum("thd,nd->tnh", self._projections, vectors)
        return np.floor((projected + self._offsets[:, None, :]) / self.bucket_width).astype(np.int64)

    # ------------------------------------------------------------------
    def query(self, vector: np.ndarray, k: int = 10, exclude: Optional[object] = None) -> List[Tuple[object, float]]:
        """Return up to ``k`` (key, distance) pairs nearest to ``vector``.

        Candidates are gathered from colliding buckets across all tables and
        re-ranked by exact Euclidean distance.  If the buckets yield fewer
        than ``k`` candidates, the index transparently falls back to a linear
        scan so recall never collapses on small datasets.
        """
        if self._vectors is None:
            raise NotFittedError("EuclideanLSHIndex.query called before build")
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        buckets = self._bucket_ids(vector)
        candidates: set = set()
        for table_index in range(self.num_tables):
            bucket = tuple(buckets[table_index, 0])
            candidates.update(self._tables[table_index].get(bucket, ()))
        if len(candidates) < k:
            candidates = set(range(len(self._vectors)))
        candidate_list = sorted(candidates)
        diffs = self._vectors[candidate_list] - vector
        distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        order = np.argsort(distances)
        results: List[Tuple[object, float]] = []
        for position in order:
            key = self._keys[candidate_list[position]]
            if exclude is not None and key == exclude:
                continue
            results.append((key, float(distances[position])))
            if len(results) >= k:
                break
        return results

    def query_batch(self, vectors: np.ndarray, k: int = 10) -> List[List[Tuple[object, float]]]:
        """Vectorised convenience wrapper over :meth:`query`."""
        return [self.query(vector, k=k) for vector in np.asarray(vectors, dtype=np.float64)]

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return 0 if self._vectors is None else len(self._vectors)

    def bucket_statistics(self) -> Dict[str, float]:
        """Mean and max bucket occupancy across tables (diagnostics)."""
        if not self._tables:
            raise NotFittedError("EuclideanLSHIndex.bucket_statistics called before build")
        sizes = [len(bucket) for table in self._tables for bucket in table.values()]
        return {
            "mean_bucket_size": float(np.mean(sizes)),
            "max_bucket_size": float(np.max(sizes)),
            "num_buckets": float(len(sizes)),
        }
