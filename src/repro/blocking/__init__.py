"""Blocking / candidate-generation substrate built on Euclidean LSH."""

from repro.blocking.lsh import EuclideanLSHIndex
from repro.blocking.neighbours import NearestNeighbourSearch, NeighbourResult

__all__ = ["EuclideanLSHIndex", "NearestNeighbourSearch", "NeighbourResult"]
