"""Blocking / candidate-generation substrate built on Euclidean LSH."""

from repro.blocking.lsh import EuclideanLSHIndex
from repro.blocking.neighbours import (
    NearestNeighbourSearch,
    NeighbourResult,
    assemble_candidate_pairs,
    assemble_neighbour_map,
)

__all__ = [
    "EuclideanLSHIndex",
    "NearestNeighbourSearch",
    "NeighbourResult",
    "assemble_candidate_pairs",
    "assemble_neighbour_map",
]
