"""Latent Semantic Analysis IRs (the paper's best-performing IR type).

LSA builds a TF-IDF document-term matrix over the corpus of attribute-value
sentences and projects it onto its leading singular directions.  The paper
reports LSA as the most robust IR choice (Section VI-B), which is why the
matching and transfer experiments default to VAER-LSA.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np
from scipy import linalg

from repro.exceptions import NotFittedError
from repro.text.tfidf import TfidfVectorizer


class LSAModel:
    """Truncated-SVD topic model over TF-IDF sentence vectors."""

    def __init__(
        self,
        dim: int = 64,
        min_count: int = 1,
        max_features: Optional[int] = 1500,
        include_char_ngrams: bool = True,
    ) -> None:
        if dim <= 0:
            raise ValueError("LSA dimensionality must be positive")
        self.dim = dim
        self.vectorizer = TfidfVectorizer(
            min_count=min_count,
            max_features=max_features,
            include_char_ngrams=include_char_ngrams,
        )
        self._components: Optional[np.ndarray] = None
        self._singular_values: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, sentences: Iterable[str]) -> "LSAModel":
        matrix = self.vectorizer.fit_transform(sentences)
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit LSA on an empty corpus")
        effective_dim = min(self.dim, min(matrix.shape) - 1) if min(matrix.shape) > 1 else 1
        # Economy SVD of the document-term matrix; right singular vectors give
        # the term -> topic projection used at transform time.
        _, singular_values, vt = linalg.svd(matrix, full_matrices=False)
        self._components = vt[:effective_dim]
        self._singular_values = singular_values[:effective_dim]
        return self

    def transform(self, sentences: Iterable[str]) -> np.ndarray:
        if self._components is None:
            raise NotFittedError("LSAModel.transform called before fit")
        matrix = self.vectorizer.transform(sentences)
        projected = matrix @ self._components.T
        if projected.shape[1] < self.dim:
            padding = np.zeros((projected.shape[0], self.dim - projected.shape[1]))
            projected = np.hstack([projected, padding])
        return projected

    def fit_transform(self, sentences: Iterable[str]) -> np.ndarray:
        sentences = list(sentences)
        self.fit(sentences)
        return self.transform(sentences)

    @property
    def explained_dim(self) -> int:
        if self._components is None:
            raise NotFittedError("LSAModel has not been fitted")
        return self._components.shape[0]
