"""Tokenisation and string normalisation shared by all IR generators."""

from __future__ import annotations

import re
from typing import List

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")
_WHITESPACE = re.compile(r"\s+")


def normalize(text: str) -> str:
    """Lowercase and collapse whitespace; keeps alphanumerics and spaces."""
    text = text.lower()
    text = re.sub(r"[^a-z0-9\s]", " ", text)
    return _WHITESPACE.sub(" ", text).strip()


def tokenize(text: str) -> List[str]:
    """Split ``text`` into lowercase alphanumeric tokens."""
    return _TOKEN_PATTERN.findall(text.lower())


def character_ngrams(token: str, n_min: int = 3, n_max: int = 4, pad: bool = True) -> List[str]:
    """Character n-grams of a token, optionally padded with boundary markers.

    These power the hashing embeddings that stand in for pre-trained word
    vectors: small typos change only a few n-grams, so corrupted duplicates
    stay close in the embedded space.
    """
    if pad:
        token = f"<{token}>"
    grams: List[str] = []
    for n in range(n_min, n_max + 1):
        if len(token) < n:
            continue
        grams.extend(token[i:i + n] for i in range(len(token) - n + 1))
    return grams


def sentence_of(values: List[str], separator: str = " ") -> str:
    """Join attribute values into the "sentence" form used for IR generation."""
    return separator.join(v for v in values if v)
