"""Intermediate Representation (IR) generation facade (Section III-B).

The paper converts each attribute value into an IR vector using one of four
methods — LSA, word2vec (W2V), BERT, or EmbDI — before any VAE training.
:class:`IRGenerator` exposes those four methods behind a single interface so
the representation model, the matcher and the experiments can switch IR types
with a string argument, exactly as Table IV of the paper varies them.

Substitutions relative to the paper (documented in DESIGN.md):

* ``"w2v"`` uses character n-gram hashing embeddings instead of downloadable
  pre-trained word vectors;
* ``"bert"`` uses a deterministic contextual composition of hashing
  embeddings instead of a pre-trained transformer;
* ``"lsa"`` and ``"embdi"`` are full implementations of the respective
  methods (corpus topic model / relational random-walk embeddings).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.data.schema import ERTask, Record, Table
from repro.exceptions import ConfigurationError, NotFittedError
from repro.text.embdi import EmbDIModel
from repro.text.hash_embedding import ContextualHashEmbedding, HashEmbedding
from repro.text.lsa import LSAModel

IR_METHODS = ("lsa", "w2v", "bert", "embdi")


def _corpus_of(tables: Sequence[Table]) -> List[str]:
    """Every attribute value of every record, construed as a sentence."""
    corpus: List[str] = []
    for table in tables:
        for record in table:
            corpus.extend(record.values)
    return corpus


class IRGenerator:
    """Maps attribute values to dense IR vectors with a chosen method.

    Parameters
    ----------
    method:
        One of ``"lsa"``, ``"w2v"``, ``"bert"``, ``"embdi"``.
    dim:
        Dimensionality of the produced IRs.
    seed:
        Seed for the trainable methods (EmbDI).
    """

    def __init__(self, method: str = "lsa", dim: int = 64, seed: int = 23) -> None:
        method = method.lower()
        if method not in IR_METHODS:
            raise ConfigurationError(
                f"unknown IR method {method!r}; expected one of {IR_METHODS}"
            )
        if dim <= 0:
            raise ConfigurationError("IR dimensionality must be positive")
        self.method = method
        self.dim = dim
        self.seed = seed
        self._lsa: Optional[LSAModel] = None
        self._hash: Optional[HashEmbedding] = None
        self._contextual: Optional[ContextualHashEmbedding] = None
        self._embdi: Optional[EmbDIModel] = None
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, task_or_tables) -> "IRGenerator":
        """Fit the IR model on the corpus of an ER task (or list of tables).

        The hashing-based methods (``w2v``, ``bert``) need no fitting but the
        call is still required so every method shares the same lifecycle.
        """
        tables = self._tables_of(task_or_tables)
        if self.method == "lsa":
            self._lsa = LSAModel(dim=self.dim).fit(_corpus_of(tables))
        elif self.method == "w2v":
            self._hash = HashEmbedding(dim=self.dim)
        elif self.method == "bert":
            self._contextual = ContextualHashEmbedding(dim=self.dim)
        elif self.method == "embdi":
            self._embdi = EmbDIModel(dim=self.dim, seed=self.seed).fit(tables)
        self._fitted = True
        return self

    @staticmethod
    def _tables_of(task_or_tables) -> List[Table]:
        if isinstance(task_or_tables, ERTask):
            return [task_or_tables.left, task_or_tables.right]
        if isinstance(task_or_tables, Table):
            return [task_or_tables]
        return list(task_or_tables)

    # ------------------------------------------------------------------
    def transform_values(self, values: Iterable[str]) -> np.ndarray:
        """IR vectors for a list of attribute-value sentences, shape (n, dim)."""
        if not self._fitted:
            raise NotFittedError("IRGenerator.transform_values called before fit")
        values = list(values)
        if not values:
            return np.zeros((0, self.dim))
        if self.method == "lsa":
            assert self._lsa is not None
            return self._lsa.transform(values)
        if self.method == "w2v":
            assert self._hash is not None
            return self._hash.embed_sentences(values)
        if self.method == "bert":
            assert self._contextual is not None
            return self._contextual.embed_sentences(values)
        assert self._embdi is not None
        return self._embdi.embed_sentences(values)

    def transform_record(self, record: Record) -> np.ndarray:
        """Per-attribute IRs of one record, shape (arity, dim)."""
        return self.transform_values(list(record.values))

    def transform_table(self, table: Table) -> np.ndarray:
        """Per-attribute IRs of every record of a table, shape (n, arity, dim).

        Values are transformed in one flat batch (important for LSA, whose
        projection is a matrix product) and reshaped back to records.
        """
        records = table.records()
        if not records:
            return np.zeros((0, table.arity, self.dim))
        flat_values: List[str] = []
        for record in records:
            flat_values.extend(record.values)
        flat = self.transform_values(flat_values)
        return flat.reshape(len(records), table.arity, self.dim)

    def transform_task(self, task: ERTask) -> Dict[str, np.ndarray]:
        """IR tensors for both sides of a task, keyed ``"left"``/``"right"``."""
        return {
            "left": self.transform_table(task.left),
            "right": self.transform_table(task.right),
        }
