"""EmbDI-style relational embeddings (Cappuzzo et al., SIGMOD 2020).

EmbDI builds a heterogeneous graph connecting tokens, cells (record/attribute
values) and structural nodes (rows and columns), generates random walks over
that graph, and trains a skip-gram model on the walks so tokens appearing in
related structural contexts obtain similar embeddings.  This module is a
compact but faithful implementation of that recipe over the repo's
:class:`~repro.data.schema.Table` objects, using networkx for the graph and
:class:`~repro.text.word2vec.Word2Vec` for the embedding training.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.data.schema import MISSING, Table
from repro.exceptions import NotFittedError
from repro.text.tokenize import tokenize
from repro.text.word2vec import Word2Vec


class EmbDIModel:
    """Tripartite-graph random-walk embeddings for relational data.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    walks_per_node:
        Number of random walks started from every token node.
    walk_length:
        Length (in nodes) of each random walk.
    window, negative, epochs:
        Passed to the underlying skip-gram trainer.
    seed:
        Random seed controlling walk generation and training.
    """

    def __init__(
        self,
        dim: int = 64,
        walks_per_node: int = 3,
        walk_length: int = 8,
        window: int = 3,
        negative: int = 4,
        epochs: int = 2,
        seed: int = 17,
    ) -> None:
        self.dim = dim
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.seed = seed
        self._word2vec = Word2Vec(
            dim=dim, window=window, negative=negative, epochs=epochs, seed=seed
        )
        self._graph: Optional[nx.Graph] = None
        self._fitted = False

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _token_node(token: str) -> str:
        return f"tok::{token}"

    @staticmethod
    def _row_node(table: str, record_id: str) -> str:
        return f"row::{table}::{record_id}"

    @staticmethod
    def _column_node(attribute: str) -> str:
        return f"col::{attribute}"

    def build_graph(self, tables: Sequence[Table]) -> nx.Graph:
        """Construct the token–row–column graph over the given tables."""
        graph = nx.Graph()
        for table in tables:
            for record in table:
                row = self._row_node(table.name, record.record_id)
                graph.add_node(row, kind="row")
                for attribute, value in zip(table.attributes, record.values):
                    if value == MISSING:
                        continue
                    column = self._column_node(attribute)
                    graph.add_node(column, kind="column")
                    for token in tokenize(value):
                        token_node = self._token_node(token)
                        graph.add_node(token_node, kind="token")
                        graph.add_edge(token_node, row)
                        graph.add_edge(token_node, column)
        return graph

    # ------------------------------------------------------------------
    # Walks + training
    # ------------------------------------------------------------------
    def _random_walks(self, graph: nx.Graph, rng: np.random.Generator) -> List[List[str]]:
        walks: List[List[str]] = []
        token_nodes = [n for n, data in graph.nodes(data=True) if data.get("kind") == "token"]
        for start in token_nodes:
            for _ in range(self.walks_per_node):
                walk = [start]
                current = start
                for _ in range(self.walk_length - 1):
                    neighbours = list(graph.neighbors(current))
                    if not neighbours:
                        break
                    current = neighbours[int(rng.integers(0, len(neighbours)))]
                    walk.append(current)
                # Only token nodes carry embeddings we use downstream, but
                # keeping structural nodes in the walk lets them act as
                # context bridges, exactly as in EmbDI.
                walks.append(walk)
        return walks

    def fit(self, tables: Sequence[Table]) -> "EmbDIModel":
        """Build the graph, generate walks and train the skip-gram model."""
        rng = np.random.default_rng(self.seed)
        self._graph = self.build_graph(tables)
        walks = self._random_walks(self._graph, rng)
        self._word2vec.fit(walks)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # Embedding lookup
    # ------------------------------------------------------------------
    def embed_sentence(self, sentence: str) -> np.ndarray:
        """Mean embedding of the tokens of an attribute-value sentence."""
        if not self._fitted:
            raise NotFittedError("EmbDIModel.embed_sentence called before fit")
        tokens = [self._token_node(t) for t in tokenize(sentence)]
        return self._word2vec.embed_tokens(tokens)

    def embed_sentences(self, sentences: Iterable[str]) -> np.ndarray:
        return np.vstack([self.embed_sentence(s) for s in sentences])

    def token_embeddings(self) -> Dict[str, np.ndarray]:
        """Token → vector mapping restricted to token nodes."""
        if not self._fitted:
            raise NotFittedError("EmbDIModel.token_embeddings called before fit")
        prefix = "tok::"
        return {
            name[len(prefix):]: vector
            for name, vector in self._word2vec.embeddings().items()
            if name.startswith(prefix)
        }

    @property
    def graph(self) -> nx.Graph:
        if self._graph is None:
            raise NotFittedError("EmbDIModel.graph accessed before fit")
        return self._graph
