"""TF-IDF vectorisation over attribute-value "sentences"."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.exceptions import NotFittedError
from repro.text.tokenize import character_ngrams, tokenize
from repro.text.vocab import Vocabulary


class TfidfVectorizer:
    """Sparse-free TF-IDF vectoriser (dense output, suitable for small corpora).

    The corpus in every ER task here is the set of attribute-value sentences
    of both tables — a few thousand short strings at most — so dense
    document-term matrices are affordable and keep downstream SVD (LSA)
    simple.

    With ``include_char_ngrams`` the feature space contains word tokens *and*
    their character n-grams, so typo'd duplicates still share most features.
    This is the "morphological factors" requirement the paper places on IRs
    (Section III-B) and is what makes LSA IRs robust on dirty data.
    """

    def __init__(
        self,
        min_count: int = 1,
        max_features: Optional[int] = None,
        sublinear_tf: bool = True,
        include_char_ngrams: bool = False,
        char_ngram_range: tuple = (3, 4),
    ) -> None:
        self.min_count = min_count
        self.max_features = max_features
        self.sublinear_tf = sublinear_tf
        self.include_char_ngrams = include_char_ngrams
        self.char_ngram_range = char_ngram_range
        self.vocabulary: Optional[Vocabulary] = None
        self._idf: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _analyze(self, sentence: str) -> list:
        tokens = tokenize(sentence)
        if not self.include_char_ngrams:
            return tokens
        features = list(tokens)
        low, high = self.char_ngram_range
        for token in tokens:
            features.extend(character_ngrams(token, low, high))
        return features

    def fit(self, sentences: Iterable[str]) -> "TfidfVectorizer":
        documents = [self._analyze(sentence) for sentence in sentences]
        self.vocabulary = Vocabulary(min_count=self.min_count, max_size=self.max_features).fit(documents)
        self._idf = self.vocabulary.idf()
        return self

    def transform(self, sentences: Iterable[str]) -> np.ndarray:
        if self.vocabulary is None or self._idf is None:
            raise NotFittedError("TfidfVectorizer.transform called before fit")
        sentences = list(sentences)
        matrix = np.zeros((len(sentences), len(self.vocabulary)), dtype=np.float64)
        for row, sentence in enumerate(sentences):
            ids = self.vocabulary.encode(self._analyze(sentence))
            if not ids:
                continue
            counts = np.bincount(ids, minlength=len(self.vocabulary)).astype(np.float64)
            if self.sublinear_tf:
                nonzero = counts > 0
                counts[nonzero] = 1.0 + np.log(counts[nonzero])
            matrix[row] = counts * self._idf
        # L2-normalise non-empty rows so cosine similarity is meaningful.
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        np.divide(matrix, norms, out=matrix, where=norms > 0)
        return matrix

    def fit_transform(self, sentences: Iterable[str]) -> np.ndarray:
        sentences = list(sentences)
        self.fit(sentences)
        return self.transform(sentences)

    @property
    def num_features(self) -> int:
        if self.vocabulary is None:
            raise NotFittedError("TfidfVectorizer has not been fitted")
        return len(self.vocabulary)
