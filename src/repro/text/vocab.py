"""Vocabulary with frequency counts, used by TF-IDF, LSA and word2vec."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional

import numpy as np


class Vocabulary:
    """Maps tokens to contiguous integer ids, with document/term frequencies."""

    def __init__(self, min_count: int = 1, max_size: Optional[int] = None) -> None:
        if min_count < 1:
            raise ValueError("min_count must be at least 1")
        self.min_count = min_count
        self.max_size = max_size
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        self.term_frequency: Counter = Counter()
        self.document_frequency: Counter = Counter()
        self.num_documents = 0

    # ------------------------------------------------------------------
    def fit(self, documents: Iterable[List[str]]) -> "Vocabulary":
        """Build the vocabulary from tokenised documents."""
        for tokens in documents:
            self.num_documents += 1
            self.term_frequency.update(tokens)
            self.document_frequency.update(set(tokens))
        candidates = [
            (token, count)
            for token, count in self.term_frequency.items()
            if count >= self.min_count
        ]
        candidates.sort(key=lambda item: (-item[1], item[0]))
        if self.max_size is not None:
            candidates = candidates[: self.max_size]
        self._token_to_id = {token: i for i, (token, _) in enumerate(candidates)}
        self._id_to_token = [token for token, _ in candidates]
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def id_of(self, token: str) -> Optional[int]:
        return self._token_to_id.get(token)

    def token_of(self, index: int) -> str:
        return self._id_to_token[index]

    def tokens(self) -> List[str]:
        return list(self._id_to_token)

    def encode(self, tokens: List[str]) -> List[int]:
        """Map tokens to ids, silently dropping out-of-vocabulary tokens."""
        out = []
        for token in tokens:
            index = self._token_to_id.get(token)
            if index is not None:
                out.append(index)
        return out

    def idf(self, smooth: bool = True) -> np.ndarray:
        """Inverse document frequency vector aligned with token ids."""
        df = np.array(
            [self.document_frequency[token] for token in self._id_to_token],
            dtype=np.float64,
        )
        n = self.num_documents
        if smooth:
            return np.log((1.0 + n) / (1.0 + df)) + 1.0
        return np.log(np.maximum(n / np.maximum(df, 1.0), 1.0))

    def unigram_distribution(self, power: float = 0.75) -> np.ndarray:
        """Smoothed unigram distribution used for negative sampling."""
        counts = np.array(
            [self.term_frequency[token] for token in self._id_to_token],
            dtype=np.float64,
        )
        if counts.sum() == 0:
            return np.full(len(counts), 1.0 / max(len(counts), 1))
        probabilities = counts ** power
        return probabilities / probabilities.sum()
