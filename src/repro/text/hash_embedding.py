"""Character n-gram hashing embeddings.

The paper's W2V IRs average *pre-trained* word embeddings over the tokens of
an attribute value.  Pre-trained vectors cannot be downloaded in this offline
environment, so this module provides the corpus-independent stand-in: each
token is embedded as the mean of deterministic pseudo-random vectors assigned
to its character n-grams (fastText-style).  The property downstream code
relies on is preserved — morphologically similar tokens (including typo'd
duplicates) share most n-grams and therefore land close together — while the
vectors require no training data at all, matching the "pre-trained" usage.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.text.tokenize import character_ngrams, tokenize


def _seed_from_string(text: str) -> int:
    """Stable 64-bit seed derived from a string (process-independent)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashEmbedding:
    """Deterministic n-gram hashing embedder for tokens and sentences."""

    def __init__(self, dim: int = 64, n_min: int = 3, n_max: int = 4, cache_size: int = 100_000) -> None:
        if dim <= 0:
            raise ValueError("embedding dimension must be positive")
        self.dim = dim
        self.n_min = n_min
        self.n_max = n_max
        self._cache: Dict[str, np.ndarray] = {}
        self._cache_size = cache_size

    # ------------------------------------------------------------------
    def ngram_vector(self, ngram: str) -> np.ndarray:
        """Pseudo-random unit-variance vector assigned to one n-gram."""
        cached = self._cache.get(ngram)
        if cached is not None:
            return cached
        rng = np.random.default_rng(_seed_from_string(ngram))
        vector = rng.standard_normal(self.dim) / np.sqrt(self.dim)
        if len(self._cache) < self._cache_size:
            self._cache[ngram] = vector
        return vector

    def embed_token(self, token: str) -> np.ndarray:
        """Mean n-gram vector of a token (zero vector for empty tokens)."""
        grams = character_ngrams(token, self.n_min, self.n_max)
        if not grams:
            grams = [token] if token else []
        if not grams:
            return np.zeros(self.dim)
        return np.mean([self.ngram_vector(g) for g in grams], axis=0)

    def embed_sentence(self, sentence: str) -> np.ndarray:
        """Average token embedding of a sentence (the W2V IR recipe)."""
        tokens = tokenize(sentence)
        if not tokens:
            return np.zeros(self.dim)
        return np.mean([self.embed_token(token) for token in tokens], axis=0)

    def embed_sentences(self, sentences: Iterable[str]) -> np.ndarray:
        """Stack of sentence embeddings."""
        return np.vstack([self.embed_sentence(s) for s in sentences]) if sentences else np.zeros((0, self.dim))


class ContextualHashEmbedding(HashEmbedding):
    """BERT-substitute: order- and context-sensitive sentence embeddings.

    The paper only uses BERT as a black box mapping an attribute-value
    sentence to a dense vector.  This substitute keeps two BERT-like
    behaviours that plain averaging lacks: (i) token order matters through a
    position-dependent weighting, and (ii) each token's contribution is
    modulated by a local context window (a bag of its neighbours), so the same
    word in different contexts yields different contributions.
    """

    def __init__(self, dim: int = 64, window: int = 2, position_decay: float = 0.85, **kwargs) -> None:
        super().__init__(dim=dim, **kwargs)
        if window < 0:
            raise ValueError("context window must be non-negative")
        self.window = window
        self.position_decay = position_decay

    def embed_sentence(self, sentence: str) -> np.ndarray:
        tokens = tokenize(sentence)
        if not tokens:
            return np.zeros(self.dim)
        token_vectors = [self.embed_token(token) for token in tokens]
        output = np.zeros(self.dim)
        total_weight = 0.0
        for position, vector in enumerate(token_vectors):
            lo = max(0, position - self.window)
            hi = min(len(tokens), position + self.window + 1)
            context = np.mean(token_vectors[lo:hi], axis=0)
            # Mix the token with its context; modulate by a positional weight
            # so reordering tokens changes the sentence vector.
            weight = self.position_decay ** position
            mixed = 0.7 * vector + 0.3 * context
            gate = np.tanh(mixed * (1.0 + 0.1 * position))
            output += weight * gate
            total_weight += weight
        return output / max(total_weight, 1e-12)
