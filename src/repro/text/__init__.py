"""Text processing and Intermediate Representation (IR) substrate."""

from repro.text.tokenize import normalize, tokenize, character_ngrams, sentence_of
from repro.text.vocab import Vocabulary
from repro.text.tfidf import TfidfVectorizer
from repro.text.lsa import LSAModel
from repro.text.word2vec import Word2Vec
from repro.text.hash_embedding import HashEmbedding, ContextualHashEmbedding
from repro.text.embdi import EmbDIModel
from repro.text.ir import IRGenerator, IR_METHODS

__all__ = [
    "normalize",
    "tokenize",
    "character_ngrams",
    "sentence_of",
    "Vocabulary",
    "TfidfVectorizer",
    "LSAModel",
    "Word2Vec",
    "HashEmbedding",
    "ContextualHashEmbedding",
    "EmbDIModel",
    "IRGenerator",
    "IR_METHODS",
]
