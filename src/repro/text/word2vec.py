"""Skip-gram word2vec with negative sampling, trained with numpy.

The EmbDI IR type requires training embeddings over random-walk "sentences"
derived from the relational data (Cappuzzo et al., SIGMOD 2020), and the
corpus-trained flavour of W2V IRs uses the same machinery over attribute-value
sentences.  The implementation is a standard SGNS trainer: for each (centre,
context) pair drawn from a sliding window, the dot product of the two
embeddings is pushed up, and down for ``negative`` sampled noise words.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import NotFittedError
from repro.text.vocab import Vocabulary


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class Word2Vec:
    """Skip-gram with negative sampling (SGNS).

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    window:
        Maximum distance between centre and context token.
    negative:
        Number of negative samples per positive pair.
    epochs:
        Passes over the corpus.
    learning_rate:
        Initial SGD learning rate (linearly decayed to 10 % of the start).
    min_count:
        Minimum token frequency for inclusion in the vocabulary.
    seed:
        Random seed for initialisation and sampling.
    """

    def __init__(
        self,
        dim: int = 64,
        window: int = 3,
        negative: int = 5,
        epochs: int = 3,
        learning_rate: float = 0.05,
        min_count: int = 1,
        seed: int = 11,
    ) -> None:
        if dim <= 0:
            raise ValueError("embedding dimension must be positive")
        self.dim = dim
        self.window = window
        self.negative = negative
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.min_count = min_count
        self.seed = seed
        self.vocabulary: Optional[Vocabulary] = None
        self._input_vectors: Optional[np.ndarray] = None
        self._output_vectors: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, sentences: Iterable[Sequence[str]]) -> "Word2Vec":
        """Train on an iterable of token lists."""
        sentences = [list(s) for s in sentences]
        self.vocabulary = Vocabulary(min_count=self.min_count).fit(sentences)
        vocab_size = len(self.vocabulary)
        rng = np.random.default_rng(self.seed)
        if vocab_size == 0:
            self._input_vectors = np.zeros((0, self.dim))
            self._output_vectors = np.zeros((0, self.dim))
            return self

        self._input_vectors = (rng.random((vocab_size, self.dim)) - 0.5) / self.dim
        self._output_vectors = np.zeros((vocab_size, self.dim))
        noise = self.vocabulary.unigram_distribution()

        encoded = [self.vocabulary.encode(list(s)) for s in sentences]
        encoded = [s for s in encoded if len(s) >= 2]
        if not encoded:
            return self

        pairs = self._training_pairs(encoded, rng)
        total_steps = max(1, self.epochs * len(pairs))
        step = 0
        for _ in range(self.epochs):
            rng.shuffle(pairs)
            for centre, context in pairs:
                lr = self.learning_rate * max(0.1, 1.0 - step / total_steps)
                self._sgns_update(centre, context, noise, lr, rng)
                step += 1
        return self

    def _training_pairs(self, encoded: List[List[int]], rng: np.random.Generator) -> List[List[int]]:
        pairs: List[List[int]] = []
        for sentence in encoded:
            for i, centre in enumerate(sentence):
                span = int(rng.integers(1, self.window + 1))
                lo = max(0, i - span)
                hi = min(len(sentence), i + span + 1)
                for j in range(lo, hi):
                    if j != i:
                        pairs.append([centre, sentence[j]])
        return pairs

    def _sgns_update(
        self,
        centre: int,
        context: int,
        noise: np.ndarray,
        lr: float,
        rng: np.random.Generator,
    ) -> None:
        assert self._input_vectors is not None and self._output_vectors is not None
        centre_vec = self._input_vectors[centre]
        grad_centre = np.zeros(self.dim)

        targets = [context] + list(rng.choice(len(noise), size=self.negative, p=noise))
        labels = [1.0] + [0.0] * self.negative
        for target, label in zip(targets, labels):
            output_vec = self._output_vectors[target]
            score = _sigmoid(np.dot(centre_vec, output_vec))
            gradient = (score - label) * lr
            grad_centre += gradient * output_vec
            self._output_vectors[target] = output_vec - gradient * centre_vec
        self._input_vectors[centre] = centre_vec - grad_centre

    # ------------------------------------------------------------------
    def vector(self, token: str) -> Optional[np.ndarray]:
        """Embedding of a token, or ``None`` when out of vocabulary."""
        if self.vocabulary is None or self._input_vectors is None:
            raise NotFittedError("Word2Vec.vector called before fit")
        index = self.vocabulary.id_of(token)
        if index is None:
            return None
        return self._input_vectors[index]

    def embed_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        """Mean embedding of in-vocabulary tokens (zero vector if none)."""
        vectors = [v for v in (self.vector(t) for t in tokens) if v is not None]
        if not vectors:
            return np.zeros(self.dim)
        return np.mean(vectors, axis=0)

    def embeddings(self) -> Dict[str, np.ndarray]:
        """Full token → vector mapping."""
        if self.vocabulary is None or self._input_vectors is None:
            raise NotFittedError("Word2Vec.embeddings called before fit")
        return {
            self.vocabulary.token_of(i): self._input_vectors[i]
            for i in range(len(self.vocabulary))
        }

    def most_similar(self, token: str, top_k: int = 5) -> List[str]:
        """Tokens with highest cosine similarity to ``token`` (diagnostics)."""
        if self.vocabulary is None or self._input_vectors is None:
            raise NotFittedError("Word2Vec.most_similar called before fit")
        query = self.vector(token)
        if query is None:
            return []
        matrix = self._input_vectors
        norms = np.linalg.norm(matrix, axis=1) * (np.linalg.norm(query) + 1e-12)
        scores = matrix @ query / np.maximum(norms, 1e-12)
        order = np.argsort(-scores)
        results = []
        for index in order:
            candidate = self.vocabulary.token_of(int(index))
            if candidate != token:
                results.append(candidate)
            if len(results) >= top_k:
                break
        return results
