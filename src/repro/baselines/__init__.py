"""Baseline matchers the paper compares VAER against (plus a sanity floor)."""

from repro.baselines.base import BaselineMatcher, records_of
from repro.baselines.threshold import ThresholdMatcher, jaccard, record_similarity
from repro.baselines.deeper import DeepERMatcher
from repro.baselines.deepmatcher import DeepMatcherMatcher
from repro.baselines.ditto import DittoMatcher, serialize_record, serialize_pair

BASELINES = {
    "deeper": DeepERMatcher,
    "deepmatcher": DeepMatcherMatcher,
    "ditto": DittoMatcher,
    "threshold": ThresholdMatcher,
}

__all__ = [
    "BaselineMatcher",
    "records_of",
    "ThresholdMatcher",
    "jaccard",
    "record_similarity",
    "DeepERMatcher",
    "DeepMatcherMatcher",
    "DittoMatcher",
    "serialize_record",
    "serialize_pair",
    "BASELINES",
]
