"""DeepER-style baseline (Ebraheem et al., PVLDB 2018).

DeepER represents each tuple by composing word embeddings of its attribute
values (the paper's simpler averaging composition) and learns a similarity
classifier over the pair representation.  This miniature follows that recipe
on the numpy substrate: per-attribute averaged token embeddings, pair
features built from attribute-wise absolute differences and element-wise
products, and a dense classifier trained end to end on labeled pairs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.autograd import Tensor
from repro.baselines.base import BaselineMatcher, records_of
from repro.data.pairs import LabeledPair, PairSet
from repro.data.schema import ERTask, Record
from repro.nn import Adam, MLP, Trainer, binary_cross_entropy_with_logits
from repro.text.hash_embedding import HashEmbedding


class DeepERMatcher(BaselineMatcher):
    """Averaged-embedding composition + similarity MLP, trained per task."""

    name = "deeper"

    def __init__(
        self,
        embedding_dim: int = 64,
        hidden_sizes: tuple = (128, 64),
        epochs: int = 60,
        batch_size: int = 32,
        learning_rate: float = 0.001,
        seed: int = 71,
    ) -> None:
        super().__init__()
        self.embedding_dim = embedding_dim
        self.hidden_sizes = hidden_sizes
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self._embedder = HashEmbedding(dim=embedding_dim)
        self._classifier: Optional[MLP] = None
        self._arity: Optional[int] = None

    # ------------------------------------------------------------------
    def _record_embedding(self, record: Record) -> np.ndarray:
        """Per-attribute averaged token embeddings, shape (arity, dim)."""
        return np.vstack([self._embedder.embed_sentence(value) for value in record.values])

    def _pair_features(self, left: List[Record], right: List[Record]) -> np.ndarray:
        """Per-pair feature vector: [|a-b|, a*b] per attribute, concatenated."""
        features = []
        for l, r in zip(left, right):
            a = self._record_embedding(l)
            b = self._record_embedding(r)
            features.append(np.concatenate([np.abs(a - b).ravel(), (a * b).ravel()]))
        return np.vstack(features) if features else np.zeros((0, 1))

    # ------------------------------------------------------------------
    def fit(self, task: ERTask, training_pairs: PairSet, validation_pairs: Optional[PairSet] = None) -> "DeepERMatcher":
        left, right, labels = records_of(task, training_pairs.pairs())
        features = self._pair_features(left, right)
        self._arity = task.arity
        rng = np.random.default_rng(self.seed)
        self._classifier = MLP(
            in_features=features.shape[1],
            hidden_sizes=self.hidden_sizes,
            out_features=1,
            rng=rng,
        )
        optimizer = Adam(self._classifier.parameters(), lr=self.learning_rate)

        def loss_fn(batch_x: np.ndarray, batch_y: np.ndarray):
            logits = self._classifier(Tensor(batch_x)).reshape(batch_x.shape[0])
            return binary_cross_entropy_with_logits(logits, Tensor(batch_y))

        trainer = Trainer(
            module=self._classifier,
            optimizer=optimizer,
            loss_fn=loss_fn,
            batch_size=self.batch_size,
            max_epochs=self.epochs,
            rng=rng,
        )
        self.training_history = trainer.fit(features, labels)
        self._fitted = True
        self.tune_threshold(task, validation_pairs)
        return self

    def predict_proba(self, task: ERTask, pairs: Iterable[LabeledPair]) -> np.ndarray:
        self._require_fitted()
        assert self._classifier is not None
        left, right, _ = records_of(task, pairs)
        if not left:
            return np.zeros(0)
        features = self._pair_features(left, right)
        logits = self._classifier(Tensor(features)).reshape(features.shape[0])
        return 1.0 / (1.0 + np.exp(-np.clip(logits.data, -60, 60)))
