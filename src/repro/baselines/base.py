"""Shared machinery for the deep-learning baseline matchers.

The paper compares VAER against DeepER, DeepMatcher and DITTO.  Those systems
cannot be installed offline (and require GPUs plus pre-trained language
models), so :mod:`repro.baselines` re-implements architecturally faithful
miniatures on the same numpy substrate.  What they share — and what this
module provides — is the end-to-end supervised formulation the paper
contrasts VAER against: feature extraction and similarity learning are
trained *jointly* per task from labeled pairs, which is why their training
cost scales with model size and training-set size and why nothing is
transferable across tasks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.data.pairs import LabeledPair, PairSet
from repro.data.schema import ERTask, Record
from repro.eval.metrics import PRF, best_threshold, precision_recall_f1
from repro.exceptions import NotFittedError
from repro.nn import TrainingHistory


class BaselineMatcher(ABC):
    """Common interface of every baseline ER matcher."""

    name: str = "baseline"

    def __init__(self) -> None:
        self._fitted = False
        self.threshold = 0.5
        self.training_history: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------
    @abstractmethod
    def fit(self, task: ERTask, training_pairs: PairSet, validation_pairs: Optional[PairSet] = None) -> "BaselineMatcher":
        """Train the matcher end to end on labeled pairs."""

    @abstractmethod
    def predict_proba(self, task: ERTask, pairs: Iterable[LabeledPair]) -> np.ndarray:
        """Match probability of each pair."""

    # ------------------------------------------------------------------
    def predict(self, task: ERTask, pairs: Iterable[LabeledPair]) -> np.ndarray:
        """Binary decisions using the (possibly validation-tuned) threshold."""
        return (self.predict_proba(task, list(pairs)) > self.threshold).astype(np.int64)

    def evaluate(self, task: ERTask, test_pairs: PairSet) -> PRF:
        """Precision/recall/F1 on a labeled pair set."""
        predictions = self.predict(task, test_pairs.pairs())
        return precision_recall_f1(test_pairs.labels(), predictions)

    def tune_threshold(self, task: ERTask, validation_pairs: Optional[PairSet]) -> None:
        """Pick the F1-maximising threshold on validation pairs, if provided."""
        if validation_pairs is None or len(validation_pairs) == 0:
            return
        probabilities = self.predict_proba(task, validation_pairs.pairs())
        self.threshold = best_threshold(validation_pairs.labels(), probabilities)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{self.name} used before fit()")


def records_of(task: ERTask, pairs: Iterable[LabeledPair]) -> Tuple[List[Record], List[Record], np.ndarray]:
    """Resolve pairs into (left records, right records, labels)."""
    pairs = list(pairs)
    left = [task.left[p.left_id] for p in pairs]
    right = [task.right[p.right_id] for p in pairs]
    labels = np.array([p.label for p in pairs], dtype=np.float64)
    return left, right, labels
